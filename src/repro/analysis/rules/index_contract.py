"""CSP003 — the ``SpatialIndex`` contract, checked at the AST level.

The privacy-aware processor is written against the abstract
``SpatialIndex`` surface ("it can be employed using R-tree or any other
methods", Section 5), and PR 1's batch engine additionally relies on
every implementation breaking distance ties by *insertion order* so
that accelerated indexes answer byte-identically to the brute-force
oracle.  ``abc`` enforces the abstract hooks only at instantiation
time — a subclass that is never constructed in the test run, or that
overrides a hook with an incompatible signature, slips through.  This
rule checks, for every direct subclass of the contract class found in
the project:

* every ``@abstractmethod`` of the base is implemented;
* every override of a base method keeps a compatible signature (the
  base's positional parameters, same names and order; extra trailing
  parameters must carry defaults);
* overrides of the tie-sensitive query hooks (``k_nearest*``,
  ``*_impl`` search methods) document the insertion-order tie-break —
  a docstring or comment inside the method mentioning "tie" or
  "insertion order" — because that contract clause lives only in prose
  and is exactly what a fast rewrite silently drops.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule

__all__ = ["IndexContractRule"]


@dataclass(frozen=True, slots=True)
class _MethodSig:
    name: str
    params: tuple[str, ...]  # positional parameter names, excluding self
    is_abstract: bool


def _positional_params(fn: ast.FunctionDef) -> tuple[str, ...]:
    args = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    return tuple(args[1:])  # drop self


def _defaults_count(fn: ast.FunctionDef) -> int:
    return len(fn.args.defaults)


def _is_abstract(fn: ast.FunctionDef) -> bool:
    for deco in fn.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
        if name == "abstractmethod":
            return True
    return False


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef)
    }


def _find_contract(
    project: Project, base_name: str
) -> dict[str, _MethodSig] | None:
    """The method contract of the (unique) class named ``base_name``."""
    for info in project.iter_modules():
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef) and node.name == base_name:
                return {
                    name: _MethodSig(
                        name=name,
                        params=_positional_params(fn),
                        is_abstract=_is_abstract(fn),
                    )
                    for name, fn in _methods(node).items()
                    if name != "__init__"
                }
    return None


def _method_documentation(module: ModuleInfo, fn: ast.FunctionDef) -> str:
    """Docstring plus comment text inside a method's source span.

    Only prose counts — an identifier that happens to contain "tie"
    must not satisfy the documentation requirement.
    """
    parts = [ast.get_docstring(fn) or ""]
    end = fn.end_lineno if fn.end_lineno is not None else fn.lineno
    for line in module.lines[fn.lineno - 1 : end]:
        _, hash_mark, comment = line.partition("#")
        if hash_mark:
            parts.append(comment)
    return "\n".join(parts)


@register_rule
class IndexContractRule(Rule):
    code = "CSP003"
    name = "index-contract"
    description = (
        "every SpatialIndex subclass must implement the full abstract "
        "surface with signature-compatible overrides and documented "
        "insertion-order tie-breaking in its search methods"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        contract = _find_contract(project, config.index_base)
        if contract is None:
            return
        abstract = {s.name for s in contract.values() if s.is_abstract}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if config.index_base not in _base_names(node):
                continue
            if node.name == config.index_base:
                continue
            methods = _methods(node)
            missing = sorted(abstract - set(methods))
            if missing:
                yield RawFinding.at(
                    node,
                    f"'{node.name}' does not implement required "
                    f"{config.index_base} hooks: {missing}",
                )
            for name, fn in methods.items():
                sig = contract.get(name)
                if sig is None:
                    continue
                yield from self._check_signature(node, fn, sig)
                if name in config.tie_break_methods:
                    doc = _method_documentation(module, fn).lower()
                    if "tie" not in doc and "insertion order" not in doc:
                        yield RawFinding(
                            line=fn.lineno,
                            message=(
                                f"'{node.name}.{name}' overrides a "
                                "tie-sensitive search method without "
                                "documenting the insertion-order tie-break "
                                "(add a docstring/comment containing 'tie' "
                                "or 'insertion order')"
                            ),
                            end_line=fn.lineno,
                        )

    def _check_signature(
        self, cls: ast.ClassDef, fn: ast.FunctionDef, base: _MethodSig
    ) -> Iterable[RawFinding]:
        params = _positional_params(fn)
        expected = base.params
        if params[: len(expected)] != expected:
            yield RawFinding(
                line=fn.lineno,
                message=(
                    f"'{cls.name}.{fn.name}' override is signature-"
                    f"incompatible with {base.name}{tuple(expected)}: "
                    f"found parameters {tuple(params)}"
                ),
                end_line=fn.lineno,
            )
            return
        extra = len(params) - len(expected)
        if extra > _defaults_count(fn):
            yield RawFinding(
                line=fn.lineno,
                message=(
                    f"'{cls.name}.{fn.name}' adds {extra} positional "
                    "parameter(s) without defaults; callers using the "
                    f"abstract {base.name} surface would break"
                ),
                end_line=fn.lineno,
            )
