"""CSP008 — no location-shaped values in telemetry labels/attributes.

The observability layer is the one data stream that routinely leaves a
production deployment, so it gets the same treatment as the query path:
metric label values and span attributes may never carry a ``Point``, a
raw coordinate, or anything obviously derived from an exact location.
The runtime enforces this dynamically
(:func:`repro.observability.metrics.ensure_safe_label_value` raises
``TelemetryLeakError``); this rule enforces it statically at every
telemetry call site, so a leak is a lint error before it is a runtime
error.

Flagged inside arguments of telemetry calls (``counter`` / ``gauge`` /
``histogram`` registrations, ``span(...)`` openings,
``set_attribute(...)``):

* constructing a ``Point`` (or calling ``location_of``) — the exact
  location itself;
* reading ``.x`` / ``.y`` — a single coordinate is half a location;
* interpolating or passing identifiers whose name says they hold a
  location (``point``, ``location``, ``coord``);
* string literals that already look like a coordinate pair (the same
  regex the runtime screen uses).

The rule is not zone-gated: telemetry label hygiene applies on both
sides of the privacy boundary (a trusted-side metric still gets
scraped by an untrusted collector).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.observability.metrics import looks_like_coordinates

__all__ = ["TelemetryLeakRule"]

#: Methods whose arguments become metric labels or span attributes.
_TELEMETRY_METHODS = frozenset(
    {"counter", "gauge", "histogram", "span", "set_attribute"}
)

#: Identifier fragments that name exact-location data.
_LOCATION_NAME_FRAGMENTS = ("point", "location", "coord")

#: Callables that *produce* exact-location data.
_LOCATION_PRODUCERS = frozenset({"Point", "location_of"})


def _terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_a_location(identifier: str | None) -> bool:
    if identifier is None:
        return False
    lowered = identifier.lower()
    return any(frag in lowered for frag in _LOCATION_NAME_FRAGMENTS)


def _is_telemetry_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _TELEMETRY_METHODS
    )


def _leak_reason(node: ast.AST) -> str | None:
    """Why ``node`` is location-shaped, or None if it is fine."""
    if isinstance(node, ast.Call):
        callee = _terminal_name(node.func)
        if callee in _LOCATION_PRODUCERS:
            return f"calls {callee}() — an exact location"
    if isinstance(node, ast.Attribute) and node.attr in ("x", "y"):
        return f"reads .{node.attr} — a raw coordinate"
    if isinstance(node, (ast.Name, ast.Attribute)):
        identifier = _terminal_name(node)
        if _names_a_location(identifier):
            return f"passes {identifier!r} — named like exact-location data"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if looks_like_coordinates(node.value):
            return "string literal looks like a coordinate pair"
    return None


@register_rule
class TelemetryLeakRule(Rule):
    code = "CSP008"
    name = "telemetry-leak"
    description = (
        "metric label values and span attributes must not carry Point "
        "objects, raw coordinates, or location-named values"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        # The screening helpers themselves mention coordinates in
        # docstrings/regexes, not in telemetry values.
        if module.name.startswith("repro.observability"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_telemetry_call(node):
                yield from self._check_call(node)

    def _check_call(self, call: ast.Call) -> Iterator[RawFinding]:
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        arguments = [*call.args, *(kw.value for kw in call.keywords)]
        for argument in arguments:
            for sub, reason in _iter_leaks(argument):
                yield RawFinding.at(
                    sub,
                    f"telemetry call '{method}(...)' {reason}; label "
                    "values and span attributes must be privacy-safe "
                    "str/int/bool (see docs/observability.md)",
                )


def _iter_leaks(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Outermost location-shaped sub-expressions of ``node``.

    A flagged expression is reported once and not descended into, so
    ``Point(x, y)`` is one finding, not one per mention of a
    coordinate inside it.
    """
    reason = _leak_reason(node)
    if reason is not None:
        yield node, reason
        return
    for child in ast.iter_child_nodes(node):
        yield from _iter_leaks(child)
