"""Baseline file support: grandfathering findings without losing them.

A baseline is a committed JSON file listing finding *fingerprints*
(rule + path + message; deliberately line-insensitive).  Findings whose
fingerprint appears in the baseline are reported as ``baselined`` and
do not fail the run; baseline entries that no longer match any current
finding are **stale** and fail the run so the file can never rot.

The intended workflow is an *empty* baseline — fix what the linter
finds.  Grandfather a finding only when it is provably intentional,
and pair the entry with an inline justification comment at the site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineMatch"]

_VERSION = 1


@dataclass(slots=True)
class BaselineMatch:
    """Partition of a lint run's findings against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[dict[str, object]] = field(default_factory=list)


@dataclass(slots=True)
class Baseline:
    """The committed set of grandfathered findings."""

    entries: list[dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline format in {path}; expected "
                f'{{"version": {_VERSION}, "findings": [...]}}'
            )
        entries = data.get("findings", [])
        if not isinstance(entries, list):
            raise ValueError(f"baseline 'findings' must be a list in {path}")
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries=[
                {
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                    "fingerprint": f.fingerprint,
                }
                for f in findings
            ]
        )

    def write(self, path: Path) -> None:
        payload = {"version": _VERSION, "findings": self.entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def fingerprints(self) -> set[str]:
        return {str(e.get("fingerprint", "")) for e in self.entries}

    def match(self, findings: list[Finding]) -> BaselineMatch:
        """Split ``findings`` into new vs baselined, and find stale entries."""
        known = self.fingerprints()
        result = BaselineMatch()
        seen: set[str] = set()
        for finding in findings:
            if finding.fingerprint in known:
                result.baselined.append(finding)
                seen.add(finding.fingerprint)
            else:
                result.new.append(finding)
        for entry in self.entries:
            if str(entry.get("fingerprint", "")) not in seen:
                result.stale.append(entry)
        return result
