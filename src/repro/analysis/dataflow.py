"""Value-level taint engine and cross-function call summaries.

This is the dataflow layer under the casperlint v2 rules (CSP009 and
CSP010).  It answers two questions the import-graph rules cannot:

* **taint** — does an *exact-location value* (a ``Point``, a raw
  ``.x``/``.y`` coordinate, anything derived from one through string
  formatting or arithmetic) reach a sink (logging, an exception
  message, a telemetry attribute, frame payload construction)?
* **blocking** — does a function, directly or through calls, execute a
  blocking primitive (``time.sleep``, a synchronous pipe/socket read,
  ``Popen.wait``) that would stall an asyncio event loop?

The analysis is intraprocedural per function — a flow-insensitive
fixpoint over the function's assignments — with *call summaries* for
cross-function propagation:

``returns_taint``
    calling the function yields a tainted value (it builds a ``Point``
    or derives from one internally);
``param_to_return``
    parameter indices whose taint flows into the return value;
``param_to_sink``
    parameter indices that flow into a sink inside the function (the
    caller is reported when it passes a tainted argument);
``blocking``
    the function transitively executes a blocking primitive.

Call resolution is deliberately name-based: plain names resolve
through the module's own ``def``s and its ``from x import y`` edges
(reusing :mod:`repro.analysis.imports`); attribute calls resolve
against every same-named method in the project (union semantics:
tainted/blocking if *any* candidate is).  That over-approximates
dynamic dispatch, which is the right polarity for a privacy linter.

Taint declassification: constructing a non-``Point`` object from
coordinates (``Rect(p.x - r, ...)``) sanitizes — an unknown
constructor/call does **not** propagate argument taint to its result.
The cloaked region is the sanctioned product of coordinates; only
string-shaped derivations (f-strings, ``str``/``repr``/``format``,
concatenation, tuples) and summarized project functions carry taint
through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project
from repro.analysis.imports import iter_import_edges

__all__ = [
    "FunctionRecord",
    "ProjectDataflow",
    "SinkHit",
    "analyze_project",
    "resolve_method_call",
    "TAINT_SOURCE_PRODUCERS",
    "BLOCKING_DOTTED_CALLS",
    "BLOCKING_METHODS",
]

#: Callables whose result *is* an exact location.
TAINT_SOURCE_PRODUCERS = frozenset({"Point", "location_of"})

#: Identifier fragments that name exact-location data (parameter seeds).
_LOCATION_NAME_FRAGMENTS = ("point", "location", "coord")

#: Fully-dotted calls that block the calling thread.
BLOCKING_DOTTED_CALLS = frozenset(
    {
        "time.sleep",
        "select.select",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Method names that block regardless of receiver (pipe/socket reads,
#: ``Popen.wait``, lock acquisition).  ``.join`` is deliberately absent:
#: ``sep.join(parts)`` on strings would swamp the signal.
BLOCKING_METHODS = frozenset(
    {
        "recv",
        "recv_bytes",
        "send_bytes",
        "poll",
        "accept",
        "communicate",
        "wait",
        "acquire",
        "join_thread",
    }
)

#: Builtins that pass taint from arguments straight through.  The numpy
#: array constructors are here because an array *is* its elements — a
#: coordinate array reaching a persistence sink leaks the coordinates —
#: unlike project constructors (``Rect``), whose products are the
#: sanctioned declassified output.
_PASSTHROUGH_CALLS = frozenset(
    {
        "str", "repr", "format", "abs", "round", "float", "min", "max",
        "sorted",
        "array", "asarray", "ascontiguousarray", "fromiter", "frombuffer",
        "concatenate", "stack", "column_stack", "vstack", "hstack",
    }
)

#: Maximum global summary-propagation rounds (call-chain depth).
_SUMMARY_ROUNDS = 4

_INTRINSIC = "src"  # the tag meaning "derived from an exact location"

#: Weak taint: extracted *from* a tainted container (``op[1]``,
#: ``record.uid``, tuple unpacking, loop iteration).  The element may or
#: may not be the coordinate itself — ``decode_op`` returns
#: ``("move", point, uid)`` and ``op[2]`` is a user id, not a location.
#: Weak taint still fires sinks in the function that extracts it (the
#: leak is visible right there), but it does not cross call boundaries
#: into ``param_to_sink`` matching: flagging ``update(op[2])`` because
#: *some* element of ``op`` was a Point drowns the signal in id-shaped
#: false positives.
_WEAK = "srcw"


def _demote(tags: set[str]) -> set[str]:
    """Strong intrinsic taint becomes weak; everything else survives."""
    if _INTRINSIC not in tags:
        return set(tags)
    return (tags - {_INTRINSIC}) | {_WEAK}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_a_location(identifier: str | None) -> bool:
    if identifier is None:
        return False
    lowered = identifier.lower()
    return any(frag in lowered for frag in _LOCATION_NAME_FRAGMENTS)


@dataclass
class SinkHit:
    """One tainted value reaching a sink inside one function."""

    node: ast.AST  # where to report
    kind: str  # "logging" | "exception" | "telemetry" | "wire" | "persistence"
    tags: frozenset[str]  # which taint tags arrived (``src`` / ``p<N>``)
    detail: str  # human fragment for the message


@dataclass
class FunctionRecord:
    """One analyzed function plus its call summary."""

    key: str  # "<module>:<qualname>"
    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    is_method: bool
    #: simple class name of the return annotation, when one is written
    #: (``-> ShardWorker``); drives typed receiver resolution
    return_class: str | None = None
    # summary bits (fixpointed across the project)
    returns_taint: bool = False
    returns_weak: bool = False
    param_to_return: set[int] = field(default_factory=set)
    param_to_sink: dict[int, str] = field(default_factory=dict)
    blocking: bool = False
    blocking_reason: str = ""
    # per-function analysis products
    sink_hits: list[SinkHit] = field(default_factory=list)
    direct_blocking: list[tuple[ast.Call, str]] = field(default_factory=list)

    @property
    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names:
            pass  # self/cls keeps its index; callers skip it naturally
        return names


class ProjectDataflow:
    """All function records of one project, with resolution indexes."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionRecord] = {}
        # module -> top-level def name -> key
        self.module_defs: dict[str, dict[str, str]] = {}
        # method name -> keys of every same-named method/function
        self.by_name: dict[str, list[str]] = {}
        # simple class name -> method name -> keys (project classes)
        self.classes: dict[str, dict[str, list[str]]] = {}
        # module -> imported value name -> source module
        self.imported_from: dict[str, dict[str, str]] = {}
        # module -> local alias -> imported module (``import x as y``)
        self.module_aliases: dict[str, dict[str, str]] = {}

    # -- call resolution ------------------------------------------------
    def resolve_call(self, module: str, call: ast.Call) -> list[str]:
        """Candidate function keys a call site may land on."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self.module_defs.get(module, {}).get(func.id)
            if local is not None:
                return [local]
            source = self.imported_from.get(module, {}).get(func.id)
            if source is not None:
                target = self.module_defs.get(source, {}).get(func.id)
                if target is not None:
                    return [target]
            return []
        if isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if base is not None:
                # ``modalias.fn(...)`` — a module-qualified call
                target_mod = self.module_aliases.get(module, {}).get(base)
                if target_mod is not None:
                    target = self.module_defs.get(target_mod, {}).get(
                        func.attr
                    )
                    return [target] if target is not None else []
            # method call: every same-named def in the project
            return self.by_name.get(func.attr, [])
        return []


def _annotation_class(node: ast.AST | None) -> str | None:
    """Simple class name out of a return/parameter annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        text = text.split("[")[0].split("|")[0].strip()
        return text.split(".")[-1] or None
    if isinstance(node, ast.Subscript):
        base = terminal_name(node.value)
        if base == "Optional":
            return _annotation_class(node.slice)
        return base
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class(node.left)
        if left not in (None, "None"):
            return left
        return _annotation_class(node.right)
    name = terminal_name(node)
    return None if name == "None" else name


def _collect_functions(project: Project, flow: ProjectDataflow) -> None:
    for module in project.iter_modules():
        defs: dict[str, str] = {}

        def visit(
            node: ast.AST, prefix: str, class_name: str | None
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{prefix}{child.name}"
                    key = f"{module.name}:{qualname}"
                    record = FunctionRecord(
                        key=key,
                        module=module.name,
                        qualname=qualname,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                        is_method=class_name is not None,
                        return_class=_annotation_class(child.returns),
                    )
                    flow.functions[key] = record
                    if class_name is None and prefix == "":
                        defs[child.name] = key
                    if class_name is not None:
                        flow.classes.setdefault(class_name, {}).setdefault(
                            child.name, []
                        ).append(key)
                    flow.by_name.setdefault(child.name, []).append(key)
                    visit(child, f"{qualname}.", None)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.", child.name)

        visit(module.tree, "", None)
        flow.module_defs[module.name] = defs
        imported: dict[str, str] = {}
        aliases: dict[str, str] = {}
        for edge in iter_import_edges(module, project):
            if edge.names:
                for name in edge.names:
                    if name != "*":
                        imported[name] = edge.target
            else:
                aliases[edge.target.rsplit(".", 1)[-1]] = edge.target
                aliases[edge.target] = edge.target
        flow.imported_from[module.name] = imported
        flow.module_aliases[module.name] = aliases


# ----------------------------------------------------------------------
# Typed receiver resolution (blocking checks only)
# ----------------------------------------------------------------------
# Taint uses union-by-name resolution for attribute calls: tainted if
# *any* same-named method taints, which is the safe polarity for a
# privacy linter.  Blocking cannot afford that — one project class with
# a blocking ``close()`` would make every ``x.close()`` in every async
# def a finding, including ``asyncio.Server.close()`` which is how you
# *stop* blocking.  So the blocking walk resolves attribute calls only
# when the receiver's class is actually determinable: ``self``, an
# annotated parameter, or a local assigned from a project constructor /
# a call with a return annotation.  Undeterminable receivers resolve to
# nothing (the direct-primitive scan still catches the leaf call).


def _last_local_assignment(
    func: ast.AST, name: str
) -> ast.expr | None:
    assigned: ast.expr | None = None
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    assigned = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                assigned = node.value
    return assigned


def _receiver_class(
    flow: "ProjectDataflow",
    record: FunctionRecord,
    expr: ast.AST,
    depth: int = 0,
) -> str | None:
    """The project class an attribute-call receiver is an instance of."""
    if depth > 4:
        return None
    if isinstance(expr, ast.Name):
        if expr.id in ("self", "cls"):
            if record.is_method and "." in record.qualname:
                return record.qualname.rsplit(".", 2)[-2]
            return None
        args = record.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == expr.id and arg.annotation is not None:
                return _annotation_class(arg.annotation)
        assigned = _last_local_assignment(record.node, expr.id)
        if assigned is not None and not (
            isinstance(assigned, ast.Name) and assigned.id == expr.id
        ):
            return _receiver_class(flow, record, assigned, depth + 1)
        return None
    if isinstance(expr, ast.Call):
        name = terminal_name(expr.func)
        if name in flow.classes:
            return name  # direct constructor call
        for key in resolve_method_call(flow, record, expr, depth + 1):
            return_class = flow.functions[key].return_class
            if return_class is not None:
                return return_class
        return None
    return None


def resolve_method_call(
    flow: "ProjectDataflow",
    record: FunctionRecord,
    call: ast.Call,
    depth: int = 0,
) -> list[str]:
    """Candidate keys for a call, typed-receiver flavor (see above)."""
    if depth > 4:
        return []
    func = call.func
    if isinstance(func, ast.Name):
        return flow.resolve_call(record.module, call)
    if not isinstance(func, ast.Attribute):
        return []
    base = dotted_name(func.value)
    if base is not None:
        target_mod = flow.module_aliases.get(record.module, {}).get(base)
        if target_mod is not None:
            target = flow.module_defs.get(target_mod, {}).get(func.attr)
            return [target] if target is not None else []
    receiver = _receiver_class(flow, record, func.value, depth)
    if receiver is None:
        return []
    return list(flow.classes.get(receiver, {}).get(func.attr, []))


# ----------------------------------------------------------------------
# Per-function taint analysis
# ----------------------------------------------------------------------
class _TaintPass:
    """Flow-insensitive taint fixpoint over one function body."""

    def __init__(
        self,
        record: FunctionRecord,
        module: ModuleInfo,
        flow: ProjectDataflow,
        config: LintConfig,
    ) -> None:
        self.record = record
        self.module = module
        self.flow = flow
        self.config = config
        self.tags: dict[str, set[str]] = {}
        self._seed_params()

    def _seed_params(self) -> None:
        for index, arg in enumerate(self._positional_args()):
            seeds = {f"p{index}"}
            annotation = terminal_name(arg.annotation) if arg.annotation else None
            if annotation == "Point" or _names_a_location(arg.arg):
                seeds.add(_INTRINSIC)
            self.tags[arg.arg] = seeds

    def _positional_args(self) -> list[ast.arg]:
        args = self.record.node.args
        return list(args.posonlyargs) + list(args.args)

    # -- expression tagging --------------------------------------------
    def expr_tags(self, node: ast.AST, depth: int = 0) -> set[str]:
        if depth > 24:
            return set()
        if isinstance(node, ast.Name):
            return set(self.tags.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if node.attr in ("x", "y"):
                return {_INTRINSIC}
            return _demote(self.expr_tags(node.value, depth + 1))
        if isinstance(node, ast.Call):
            return self._call_tags(node, depth)
        if isinstance(node, ast.JoinedStr):
            out: set[str] = set()
            for value in node.values:
                out |= self.expr_tags(value, depth + 1)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.expr_tags(node.value, depth + 1)
        if isinstance(node, ast.BinOp):
            return self.expr_tags(node.left, depth + 1) | self.expr_tags(
                node.right, depth + 1
            )
        if isinstance(node, (ast.UnaryOp,)):
            return self.expr_tags(node.operand, depth + 1)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self.expr_tags(value, depth + 1)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.expr_tags(element, depth + 1)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                if value is not None:
                    out |= self.expr_tags(value, depth + 1)
            return out
        if isinstance(node, ast.Subscript):
            return _demote(
                self.expr_tags(node.value, depth + 1)
            ) | self.expr_tags(node.slice, depth + 1)
        if isinstance(node, ast.IfExp):
            return self.expr_tags(node.body, depth + 1) | self.expr_tags(
                node.orelse, depth + 1
            )
        if isinstance(node, ast.Starred):
            return self.expr_tags(node.value, depth + 1)
        if isinstance(node, ast.Await):
            return self.expr_tags(node.value, depth + 1)
        if isinstance(node, ast.NamedExpr):
            return self.expr_tags(node.value, depth + 1)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_tags(node.elt, depth + 1)
        return set()

    def _call_tags(self, call: ast.Call, depth: int) -> set[str]:
        callee = terminal_name(call.func)
        if callee in TAINT_SOURCE_PRODUCERS:
            return {_INTRINSIC}
        arg_union: set[str] = set()
        for arg in call.args:
            arg_union |= self.expr_tags(arg, depth + 1)
        for keyword in call.keywords:
            arg_union |= self.expr_tags(keyword.value, depth + 1)
        if callee in _PASSTHROUGH_CALLS:
            return arg_union
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "format",
            "join",
        ):
            return arg_union | self.expr_tags(call.func.value, depth + 1)
        out: set[str] = set()
        for key in self.flow.resolve_call(self.module.name, call):
            summary = self.flow.functions[key]
            if summary.returns_taint:
                out.add(_INTRINSIC)
            elif summary.returns_weak:
                out.add(_WEAK)
            if summary.param_to_return:
                for index, arg_node in self._align_args(summary, call):
                    if index in summary.param_to_return:
                        out |= self.expr_tags(arg_node, depth + 1)
        return out

    def _align_args(
        self, summary: FunctionRecord, call: ast.Call
    ) -> list[tuple[int, ast.AST]]:
        """(parameter index, argument expr) pairs for a call site.

        Method calls through an attribute receiver skip the ``self``
        slot; keyword arguments match by parameter name.
        """
        offset = (
            1
            if summary.is_method and isinstance(call.func, ast.Attribute)
            else 0
        )
        pairs: list[tuple[int, ast.AST]] = []
        for position, arg in enumerate(call.args):
            pairs.append((position + offset, arg))
        names = summary.param_names
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                pairs.append((names.index(keyword.arg), keyword.value))
        return pairs

    # -- the fixpoint ---------------------------------------------------
    def run(self) -> None:
        assignments = [
            node
            for node in ast.walk(self.record.node)
            if isinstance(
                node,
                (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For,
                 ast.AsyncFor, ast.NamedExpr, ast.withitem),
            )
        ]
        for _ in range(len(assignments) + 2):
            changed = False
            for node in assignments:
                changed |= self._apply_assignment(node)
            if not changed:
                break

    def _apply_assignment(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Assign):
            tags = self.expr_tags(node.value)
            return self._bind_targets(node.targets, tags)
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return False
            return self._bind_targets([node.target], self.expr_tags(node.value))
        if isinstance(node, ast.AugAssign):
            return self._bind_targets(
                [node.target],
                self.expr_tags(node.value) | self.expr_tags(node.target),
            )
        if isinstance(node, ast.NamedExpr):
            return self._bind_targets([node.target], self.expr_tags(node.value))
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # iterating extracts elements: strong container taint demotes
            return self._bind_targets(
                [node.target], _demote(self.expr_tags(node.iter))
            )
        if isinstance(node, ast.withitem):
            if node.optional_vars is None:
                return False
            return self._bind_targets(
                [node.optional_vars], self.expr_tags(node.context_expr)
            )
        return False

    def _bind_targets(self, targets: list[ast.AST], tags: set[str]) -> bool:
        if not tags:
            return False
        changed = False
        for target in targets:
            # ``a, b = tainted_call()`` is element extraction, same as
            # subscripting: the unpacked names get weak taint only
            effective = (
                tags if isinstance(target, ast.Name) else _demote(tags)
            )
            for name_node in self._target_names(target):
                current = self.tags.setdefault(name_node, set())
                if not effective <= current:
                    current |= effective
                    changed = True
        return changed

    @staticmethod
    def _target_names(target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in target.elts:
                names += _TaintPass._target_names(element)
            return names
        if isinstance(target, ast.Starred):
            return _TaintPass._target_names(target.value)
        return []  # attribute/subscript targets escape local tracking


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "critical", "exception", "log"}
)
_TELEMETRY_METHODS = frozenset(
    {"counter", "gauge", "histogram", "span", "set_attribute"}
)
_WIRE_BUILDERS = frozenset(
    {"pack", "encode_frame", "encode_envelope", "encode_update"}
)
#: numpy array-persistence entry points: ``np.save``-family functions
#: (matched only under a numpy-ish receiver so ``snapshot.save(...)``
#: does not fire) plus the ``ndarray.tofile`` method, whose *receiver*
#: is the value that hits disk.
_PERSISTENCE_FUNCS = frozenset(
    {"save", "savetxt", "savez", "savez_compressed"}
)
_NUMPY_RECEIVERS = frozenset({"np", "numpy"})


def _sink_of(call: ast.Call, module: ModuleInfo, config: LintConfig) -> str | None:
    """Which sink kind a call site is, if any, for this module."""
    func = call.func
    dotted = dotted_name(func)
    if dotted is not None and (
        dotted.startswith("logging.") or dotted.startswith("logger.")
    ):
        return "logging"
    if isinstance(func, ast.Attribute):
        if func.attr in _LOG_METHODS and terminal_name(func.value) in (
            "logger",
            "log",
            "logging",
        ):
            return "logging"
        if func.attr in _TELEMETRY_METHODS and not module.name.startswith(
            "repro.observability"
        ):
            return "telemetry"
        if func.attr == "tofile":
            return "persistence"
        if (
            func.attr in _PERSISTENCE_FUNCS
            and terminal_name(func.value) in _NUMPY_RECEIVERS
        ):
            return "persistence"
    name = terminal_name(func)
    if name in _WIRE_BUILDERS or name == "ShardEnvelope":
        if not module.in_package(config.codec_modules):
            return "wire"
    return None


def _scan_sinks(
    record: FunctionRecord,
    module: ModuleInfo,
    taint: _TaintPass,
    config: LintConfig,
) -> None:
    record.sink_hits = []
    record.param_to_sink = {}
    for node in ast.walk(record.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            if isinstance(node.exc, ast.Call):
                for arg in [
                    *node.exc.args,
                    *(kw.value for kw in node.exc.keywords),
                ]:
                    tags = taint.expr_tags(arg)
                    if tags:
                        _record_hit(
                            record, node, "exception", tags,
                            "interpolates an exact location into the "
                            "exception message",
                        )
        elif isinstance(node, ast.Call):
            kind = _sink_of(node, module, config)
            if kind is None:
                continue
            candidates = [*node.args, *(kw.value for kw in node.keywords)]
            if kind == "persistence" and isinstance(node.func, ast.Attribute):
                # ndarray.tofile: the value that hits disk is the
                # *receiver*, not an argument.
                candidates.append(node.func.value)
            for arg in candidates:
                tags = taint.expr_tags(arg)
                if tags:
                    detail = {
                        "logging": "passes an exact location to a log call",
                        "telemetry": "passes an exact location into a "
                        "telemetry label/attribute",
                        "wire": "packs an exact location into a frame "
                        "payload outside the sanctioned codec",
                        "persistence": "writes an exact-location array "
                        "to disk via a numpy persistence call",
                    }[kind]
                    _record_hit(record, arg, kind, tags, detail)


def _record_hit(
    record: FunctionRecord,
    node: ast.AST,
    kind: str,
    tags: set[str],
    detail: str,
) -> None:
    record.sink_hits.append(
        SinkHit(node=node, kind=kind, tags=frozenset(tags), detail=detail)
    )
    if _INTRINSIC in tags or _WEAK in tags:
        # reported inside this function; flagging callers too would
        # double-report the same leak
        return
    for tag in tags:
        if tag.startswith("p"):
            try:
                index = int(tag[1:])
            except ValueError:  # pragma: no cover - tags are p<int>
                continue
            record.param_to_sink.setdefault(index, kind)


# ----------------------------------------------------------------------
# Blocking detection
# ----------------------------------------------------------------------
def _scan_blocking(record: FunctionRecord) -> None:
    awaited: set[int] = set()
    for node in ast.walk(record.node):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
    hits: list[tuple[ast.Call, str]] = []
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Call) or id(node) in awaited:
            continue
        dotted = dotted_name(node.func)
        if dotted in BLOCKING_DOTTED_CALLS:
            hits.append((node, f"calls {dotted}()"))
            continue
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in BLOCKING_METHODS and not isinstance(
                node.func.value, ast.Constant
            ):
                hits.append((node, f"calls .{node.func.attr}()"))
    record.direct_blocking = hits
    if hits:
        record.blocking = True
        record.blocking_reason = hits[0][1]


# ----------------------------------------------------------------------
# Project driver
# ----------------------------------------------------------------------
def analyze_project(project: Project, config: LintConfig) -> ProjectDataflow:
    """Full dataflow pass over a project, cached on the project object."""
    cached = getattr(project, "_casperlint_dataflow", None)
    if cached is not None:
        return cached
    flow = ProjectDataflow()
    _collect_functions(project, flow)

    # direct blocking facts never change across rounds
    for record in flow.functions.values():
        _scan_blocking(record)

    # global fixpoint: taint summaries + transitive blocking
    for _ in range(_SUMMARY_ROUNDS):
        changed = False
        for record in flow.functions.values():
            module = project.get(record.module)
            if module is None:  # pragma: no cover - records come from modules
                continue
            previous = (
                record.returns_taint,
                record.returns_weak,
                frozenset(record.param_to_return),
                tuple(sorted(record.param_to_sink.items())),
            )
            taint = _TaintPass(record, module, flow, config)
            taint.run()
            returns_taint = False
            returns_weak = False
            param_to_return: set[int] = set()
            for node in ast.walk(record.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    tags = taint.expr_tags(node.value)
                    if _INTRINSIC in tags:
                        returns_taint = True
                    if _WEAK in tags:
                        returns_weak = True
                    for tag in tags:
                        if tag.startswith("p"):
                            param_to_return.add(int(tag[1:]))
            record.returns_taint = returns_taint
            record.returns_weak = returns_weak
            record.param_to_return = param_to_return
            _scan_sinks(record, module, taint, config)
            # transitive: passing our parameter into a callee's sink
            # parameter makes it a sink parameter of ours too
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                for key in flow.resolve_call(record.module, node):
                    callee = flow.functions[key]
                    if not callee.param_to_sink:
                        continue
                    for index, arg_node in taint._align_args(callee, node):
                        if index not in callee.param_to_sink:
                            continue
                        tags = taint.expr_tags(arg_node)
                        if _INTRINSIC in tags:
                            continue  # reported at the call site instead
                        for tag in tags:
                            if tag.startswith("p"):
                                record.param_to_sink.setdefault(
                                    int(tag[1:]),
                                    callee.param_to_sink[index],
                                )
            current = (
                record.returns_taint,
                record.returns_weak,
                frozenset(record.param_to_return),
                tuple(sorted(record.param_to_sink.items())),
            )
            if current != previous:
                changed = True
        # transitive blocking over the call graph (typed resolution:
        # union-by-name would mark every ``x.close()`` blocking)
        for record in flow.functions.values():
            if record.blocking:
                continue
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                for key in resolve_method_call(flow, record, node):
                    callee = flow.functions[key]
                    if callee.blocking:
                        record.blocking = True
                        record.blocking_reason = (
                            f"calls {callee.qualname}() which "
                            f"{callee.blocking_reason or 'blocks'}"
                        )
                        changed = True
                        break
                if record.blocking:
                    break
        if not changed:
            break

    project._casperlint_dataflow = flow  # type: ignore[attr-defined]
    return flow
