"""casperlint configuration.

Defaults encode this repository's architecture; everything is
overridable from ``[tool.casperlint]`` in ``pyproject.toml`` and (for
severities and rule selection) from the command line.  The zone model:

``untrusted_packages``
    Modules on the *server side* of the paper's Figure 1 boundary.
    They receive only cloaked regions, so CSP001 forbids them any
    import path that reaches exact user locations.

``tainted_packages``
    Packages whose modules hold or generate exact user locations
    (trusted-side code and workload/mobility generators).

``safe_imports``
    Name-level exceptions: values that are safe to move across the
    boundary (the cloaked-region record itself, the public privacy
    profile).  ``from repro.anonymizer import CloakedRegion`` is the
    sanctioned channel of the whole architecture.

``deterministic_packages``
    Modules whose output must be byte-identical across runs; CSP002
    forbids wall-clock and unseeded/global randomness there.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

__all__ = ["LintConfig", "DEFAULT_SCAN_PATHS"]

DEFAULT_SCAN_PATHS: tuple[str, ...] = ("src/repro", "tools")


def _default_safe_imports() -> dict[str, frozenset[str]]:
    return {
        "repro.anonymizer": frozenset(
            {"CloakedRegion", "PrivacyProfile", "AnonymizerStats", "TelemetryExport"}
        ),
    }


def _default_severities() -> dict[str, str]:
    return {}


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    # rule selection / severity -----------------------------------------
    select: frozenset[str] | None = None  # None = every registered rule
    severities: dict[str, str] = field(default_factory=_default_severities)

    # CSP001 privacy boundary -------------------------------------------
    untrusted_packages: tuple[str, ...] = ("repro.processor", "repro.server")
    tainted_packages: tuple[str, ...] = (
        "repro.anonymizer",
        "repro.workloads",
        "repro.mobility",
        "repro.simulation",
    )
    safe_imports: dict[str, frozenset[str]] = field(
        default_factory=_default_safe_imports
    )

    # CSP002 determinism ------------------------------------------------
    deterministic_packages: tuple[str, ...] = (
        "repro.evaluation",
        "repro.mobility",
        "repro.simulation",
        "repro.workloads",
        "tools",
    )
    rng_module: str = "repro.utils.rng"

    # CSP003 index contract ---------------------------------------------
    index_base: str = "SpatialIndex"
    tie_break_methods: tuple[str, ...] = (
        "k_nearest_by_max_distance",
        "_k_nearest_by_max_distance_impl",
        "_k_nearest_impl",
    )

    # I/O ---------------------------------------------------------------
    scan_paths: tuple[str, ...] = DEFAULT_SCAN_PATHS
    baseline_path: str = "casperlint-baseline.json"

    def severity_of(self, code: str, default: str = "error") -> str:
        return self.severities.get(code, default)

    # -- pyproject loading ----------------------------------------------
    @classmethod
    def from_pyproject(cls, root: Path) -> "LintConfig":
        """Defaults merged with ``[tool.casperlint]`` if present."""
        config = cls()
        pyproject = Path(root) / "pyproject.toml"
        if not pyproject.is_file():
            return config
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
            return config
        try:
            data = tomllib.loads(pyproject.read_text())
        except (OSError, tomllib.TOMLDecodeError):  # pragma: no cover
            return config
        table = data.get("tool", {}).get("casperlint", {})
        if not isinstance(table, dict):
            return config
        return config.merged(table)

    def merged(self, table: dict[str, Any]) -> "LintConfig":
        """A copy overridden by a ``[tool.casperlint]``-shaped mapping."""
        updates: dict[str, Any] = {}
        if "select" in table:
            updates["select"] = frozenset(str(c) for c in table["select"])
        if "severity" in table and isinstance(table["severity"], dict):
            merged = dict(self.severities)
            merged.update(
                {str(k): str(v) for k, v in table["severity"].items()}
            )
            updates["severities"] = merged
        for key in (
            "untrusted_packages",
            "tainted_packages",
            "deterministic_packages",
            "scan_paths",
            "tie_break_methods",
        ):
            if key in table:
                updates[key] = tuple(str(v) for v in table[key])
        if "safe_imports" in table and isinstance(table["safe_imports"], dict):
            updates["safe_imports"] = {
                str(pkg): frozenset(str(n) for n in names)
                for pkg, names in table["safe_imports"].items()
            }
        for key in ("rng_module", "index_base", "baseline_path"):
            if key in table:
                updates[key] = str(table[key])
        return replace(self, **updates)
