"""casperlint configuration.

Defaults encode this repository's architecture; everything is
overridable from ``[tool.casperlint]`` in ``pyproject.toml`` and (for
severities and rule selection) from the command line.  The zone model:

``untrusted_packages``
    Modules on the *server side* of the paper's Figure 1 boundary.
    They receive only cloaked regions, so CSP001 forbids them any
    import path that reaches exact user locations.

``tainted_packages``
    Packages whose modules hold or generate exact user locations
    (trusted-side code and workload/mobility generators).

``safe_imports``
    Name-level exceptions: values that are safe to move across the
    boundary (the cloaked-region record itself, the public privacy
    profile).  ``from repro.anonymizer import CloakedRegion`` is the
    sanctioned channel of the whole architecture.

``deterministic_packages``
    Modules whose output must be byte-identical across runs; CSP002
    forbids wall-clock and unseeded/global randomness there.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

__all__ = ["LintConfig", "DEFAULT_SCAN_PATHS"]

DEFAULT_SCAN_PATHS: tuple[str, ...] = ("src/repro", "tools")


def _default_safe_imports() -> dict[str, frozenset[str]]:
    return {
        "repro.anonymizer": frozenset(
            {"CloakedRegion", "PrivacyProfile", "AnonymizerStats", "TelemetryExport"}
        ),
    }


def _default_severities() -> dict[str, str]:
    return {}


def _default_never_baseline() -> frozenset[str]:
    return frozenset({"CSP009", "CSP010", "CSP011", "CSP012", "CSP013"})


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    # rule selection / severity -----------------------------------------
    select: frozenset[str] | None = None  # None = every registered rule
    severities: dict[str, str] = field(default_factory=_default_severities)

    # CSP001 privacy boundary -------------------------------------------
    untrusted_packages: tuple[str, ...] = ("repro.processor", "repro.server")
    tainted_packages: tuple[str, ...] = (
        "repro.anonymizer",
        "repro.workloads",
        "repro.mobility",
        "repro.simulation",
    )
    safe_imports: dict[str, frozenset[str]] = field(
        default_factory=_default_safe_imports
    )

    # CSP002 determinism ------------------------------------------------
    deterministic_packages: tuple[str, ...] = (
        "repro.evaluation",
        "repro.mobility",
        "repro.simulation",
        "repro.workloads",
        "tools",
    )
    rng_module: str = "repro.utils.rng"

    # CSP003 index contract ---------------------------------------------
    index_base: str = "SpatialIndex"
    tie_break_methods: tuple[str, ...] = (
        "k_nearest_by_max_distance",
        "_k_nearest_by_max_distance_impl",
        "_k_nearest_impl",
    )

    # CSP009 coordinate taint -------------------------------------------
    # Modules allowed to build frame payloads from exact coordinates:
    # the wire codec itself and the message/record codecs it rides on.
    codec_modules: tuple[str, ...] = (
        "repro.sharding.wire",
        "repro.messages",
        "repro.server.codec",
    )

    # CSP011 process boundary -------------------------------------------
    # Modules allowed to touch raw pickle at all; inside them, every
    # dumps must flow into a wire-blob carrier and every loads must
    # derive from a CRC-verified source.
    pickle_boundary_modules: tuple[str, ...] = ("repro.sharding.workers",)

    # CSP013 protocol exhaustiveness ------------------------------------
    # Where frame/op kinds are declared (and decoded) ...
    protocol_modules: tuple[str, ...] = (
        "repro.sharding.wire",
        "repro.messages",
    )
    # ... and where decoded operations must be dispatched.
    dispatch_modules: tuple[str, ...] = (
        "repro.sharding.workers",
        "repro.sharding.frontdoor",
    )
    protocol_decoders: tuple[str, ...] = ("decode_op", "decode_response")
    protocol_constant_prefixes: tuple[str, ...] = ("OP_", "RE_", "KIND_")

    # CSP014 policy encapsulation ---------------------------------------
    # Packages holding CloakingPolicy implementations; inside them, the
    # only sanctioned route to pyramid state is the PyramidEngine /
    # maintenance-mixin API — never another object's underscore
    # attributes.
    policy_modules: tuple[str, ...] = ("repro.anonymizer.policies",)

    # Baseline policy ---------------------------------------------------
    # Rules whose findings may never be grandfathered: privacy/runtime
    # invariants must be fixed (or carry a justified inline pragma).
    # (a default_factory keeps the dataclass signature — and the
    # generated API docs — free of unordered frozenset reprs)
    never_baseline: frozenset[str] = field(
        default_factory=_default_never_baseline
    )

    # I/O ---------------------------------------------------------------
    scan_paths: tuple[str, ...] = DEFAULT_SCAN_PATHS
    baseline_path: str = "casperlint-baseline.json"

    def severity_of(self, code: str, default: str = "error") -> str:
        return self.severities.get(code, default)

    # -- pyproject loading ----------------------------------------------
    @classmethod
    def from_pyproject(cls, root: Path) -> "LintConfig":
        """Defaults merged with ``[tool.casperlint]`` if present."""
        config = cls()
        pyproject = Path(root) / "pyproject.toml"
        if not pyproject.is_file():
            return config
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
            return config
        try:
            data = tomllib.loads(pyproject.read_text())
        except (OSError, tomllib.TOMLDecodeError):  # pragma: no cover
            return config
        table = data.get("tool", {}).get("casperlint", {})
        if not isinstance(table, dict):
            return config
        return config.merged(table)

    def merged(self, table: dict[str, Any]) -> "LintConfig":
        """A copy overridden by a ``[tool.casperlint]``-shaped mapping."""
        updates: dict[str, Any] = {}
        if "select" in table:
            updates["select"] = frozenset(str(c) for c in table["select"])
        if "severity" in table and isinstance(table["severity"], dict):
            merged = dict(self.severities)
            merged.update(
                {str(k): str(v) for k, v in table["severity"].items()}
            )
            updates["severities"] = merged
        for key in (
            "untrusted_packages",
            "tainted_packages",
            "deterministic_packages",
            "scan_paths",
            "tie_break_methods",
            "codec_modules",
            "pickle_boundary_modules",
            "protocol_modules",
            "dispatch_modules",
            "protocol_decoders",
            "protocol_constant_prefixes",
            "policy_modules",
        ):
            if key in table:
                updates[key] = tuple(str(v) for v in table[key])
        if "never_baseline" in table:
            updates["never_baseline"] = frozenset(
                str(c) for c in table["never_baseline"]
            )
        if "safe_imports" in table and isinstance(table["safe_imports"], dict):
            updates["safe_imports"] = {
                str(pkg): frozenset(str(n) for n in names)
                for pkg, names in table["safe_imports"].items()
            }
        for key in ("rng_module", "index_base", "baseline_path"):
            if key in table:
                updates[key] = str(table[key])
        return replace(self, **updates)
