"""The ``python -m repro lint`` command (also ``tools/lint.py``).

Exit codes:

* ``0`` — no non-baselined error findings and no stale baseline entries
  (warnings never fail the run unless ``--strict``);
* ``1`` — at least one new error finding or stale baseline entry;
* ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.core import RULE_REGISTRY, Project, run_lint
from repro.analysis.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def default_root() -> Path:
    """The repository root, inferred from the installed package location.

    ``src/repro/analysis/cli.py`` -> parents[3] is the directory holding
    ``src/`` — the project root when running from a checkout.  Falls
    back to the current directory when the layout does not match (e.g.
    an installed wheel).
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="paths to scan, relative to --root "
        "(default: src/repro and tools)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: auto-detected from the checkout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file relative to --root "
        "(default: casperlint-baseline.json; 'none' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. --severity CSP004=warning",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures too",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )


def _list_rules() -> int:
    from repro.analysis.rules import load_builtin_rules

    load_builtin_rules()
    for code in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[code]
        print(f"{code}  {rule.name:<22} [{rule.default_severity}]  "
              f"{rule.description}")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve() if args.root else default_root()
    config = LintConfig.from_pyproject(root)

    if args.select:
        codes = frozenset(c.strip() for c in args.select.split(",") if c.strip())
        config = config.merged({"select": codes})
    overrides = {}
    for spec in args.severity:
        code, sep, level = spec.partition("=")
        if not sep or level not in ("error", "warning"):
            print(
                f"bad --severity {spec!r}; expected CODE=error|warning",
                file=sys.stderr,
            )
            return 2
        overrides[code.strip()] = level
    if overrides:
        config = config.merged({"severity": overrides})

    scan_paths = tuple(args.paths) or config.scan_paths
    try:
        project = Project.load(root, scan_paths)
    except OSError as exc:
        print(f"cannot scan {scan_paths}: {exc}", file=sys.stderr)
        return 2
    result = run_lint(project, config)

    baseline_arg = args.baseline or config.baseline_path
    baseline_path = root / baseline_arg
    if args.write_baseline:
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0
    if baseline_arg == "none":
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    match = baseline.match(result.findings)

    render = render_json if args.format == "json" else render_text
    print(render(result, match))

    failing = [f for f in match.new if f.severity == "error"]
    if args.strict:
        failing = list(match.new)
    return 1 if failing or match.stale else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="casperlint: privacy- and determinism-invariant "
        "static analysis for the Casper reproduction",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
