"""The ``python -m repro lint`` command (also ``tools/lint.py``).

Exit codes:

* ``0`` — no non-baselined error findings and no stale baseline entries
  (warnings never fail the run unless ``--strict``);
* ``1`` — at least one new error finding or stale baseline entry;
* ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.core import RULE_REGISTRY, Project, run_lint
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def default_root() -> Path:
    """The repository root, inferred from the installed package location.

    ``src/repro/analysis/cli.py`` -> parents[3] is the directory holding
    ``src/`` — the project root when running from a checkout.  Falls
    back to the current directory when the layout does not match (e.g.
    an installed wheel).
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="paths to scan, relative to --root "
        "(default: src/repro and tools)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: auto-detected from the checkout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH "
        "(for code-scanning upload), independent of --format",
    )
    parser.add_argument(
        "--diff",
        nargs="?",
        const="origin/main",
        default=None,
        metavar="BASE",
        help="report only findings in files changed since BASE "
        "(default base: origin/main); the whole project is still "
        "analyzed so cross-module rules see the full graph",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file relative to --root "
        "(default: casperlint-baseline.json; 'none' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file; refuses "
        "(exit 1) findings of never-baseline rules",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. --severity CSP004=warning",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures too",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )


def _changed_files(root: Path, base: str) -> set[str] | None:
    """Project-relative posix paths changed since ``base`` (git diff).

    Includes uncommitted changes (working tree vs. the base commit).
    Returns None when git cannot answer (not a repo, unknown ref) —
    the caller degrades to a full report rather than a silent pass.
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def _list_rules() -> int:
    from repro.analysis.rules import load_builtin_rules

    load_builtin_rules()
    for code in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[code]
        print(f"{code}  {rule.name:<22} [{rule.default_severity}]  "
              f"{rule.description}")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve() if args.root else default_root()
    config = LintConfig.from_pyproject(root)

    if args.select:
        codes = frozenset(c.strip() for c in args.select.split(",") if c.strip())
        config = config.merged({"select": codes})
    overrides = {}
    for spec in args.severity:
        code, sep, level = spec.partition("=")
        if not sep or level not in ("error", "warning"):
            print(
                f"bad --severity {spec!r}; expected CODE=error|warning",
                file=sys.stderr,
            )
            return 2
        overrides[code.strip()] = level
    if overrides:
        config = config.merged({"severity": overrides})

    scan_paths = tuple(args.paths) or config.scan_paths
    try:
        project = Project.load(root, scan_paths)
    except OSError as exc:
        print(f"cannot scan {scan_paths}: {exc}", file=sys.stderr)
        return 2
    result = run_lint(project, config)

    baseline_arg = args.baseline or config.baseline_path
    baseline_path = root / baseline_arg
    if args.write_baseline:
        allowed = [
            f for f in result.findings if f.rule not in config.never_baseline
        ]
        refused = [
            f for f in result.findings if f.rule in config.never_baseline
        ]
        Baseline.from_findings(allowed).write(baseline_path)
        print(
            f"wrote {len(allowed)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        if refused:
            for finding in refused:
                print(
                    f"refused to baseline {finding.path}:{finding.line} "
                    f"{finding.rule}: {finding.message}",
                    file=sys.stderr,
                )
            print(
                f"{len(refused)} finding(s) belong to never-baseline "
                "rules — fix them or add a justified inline pragma",
                file=sys.stderr,
            )
            return 1
        return 0
    if baseline_arg == "none":
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    # match against the FULL finding set first: staleness of baseline
    # entries is only meaningful against an unfiltered run
    match = baseline.match(result.findings)

    stale = match.stale
    if args.diff is not None:
        changed = _changed_files(root, args.diff)
        if changed is None:
            print(
                f"--diff: cannot diff against {args.diff!r}; "
                "reporting every finding",
                file=sys.stderr,
            )
        else:
            match.new = [f for f in match.new if f.path in changed]
            match.baselined = [
                f for f in match.baselined if f.path in changed
            ]

    renderers = {
        "text": render_text,
        "json": render_json,
        "sarif": render_sarif,
    }
    print(renderers[args.format](result, match))
    if args.sarif:
        sarif_path = Path(args.sarif)
        if not sarif_path.is_absolute():
            sarif_path = root / sarif_path
        sarif_path.write_text(render_sarif(result, match) + "\n")
        print(f"wrote SARIF report to {sarif_path}", file=sys.stderr)

    failing = [f for f in match.new if f.severity == "error"]
    if args.strict:
        failing = list(match.new)
    return 1 if failing or stale else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="casperlint: privacy- and determinism-invariant "
        "static analysis for the Casper reproduction",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
