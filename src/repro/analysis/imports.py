"""Import extraction and resolution shared by the module-graph rules.

Turns the ``import``/``from ... import`` statements of a parsed module
into :class:`ImportEdge` records with *absolute dotted targets*, which
is what CSP001's taint tracking consumes.  Relative imports are
resolved against the importing module's package so ``from . import
cells`` inside ``repro.anonymizer.basic`` yields the target
``repro.anonymizer.cells``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import ModuleInfo, Project

__all__ = ["ImportEdge", "iter_import_edges"]


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One imported target from one statement.

    ``target`` is the absolute dotted module/package the edge points at.
    ``names`` is non-empty only for ``from target import a, b`` forms
    where the names are *values* (functions/classes) rather than
    submodules; a name that resolves to a project submodule is emitted
    as its own edge with the submodule as ``target`` instead.
    """

    node: ast.stmt
    target: str
    names: tuple[str, ...] = ()

    @property
    def is_star(self) -> bool:
        return self.names == ("*",)


def _resolve_relative(module: ModuleInfo, level: int, base: str | None) -> str | None:
    """Absolute dotted base for a level-N relative import, or None.

    For module ``repro.anonymizer.basic`` level 1 is ``repro.anonymizer``;
    for the *package* ``repro.anonymizer`` (its ``__init__``) level 1 is
    the package itself, so packages keep one extra trailing component.
    """
    parts = module.name.split(".")
    is_package = module.path.endswith("__init__.py")
    drop = level - 1 if is_package else level
    if drop > len(parts):
        return None
    base_parts = parts[: len(parts) - drop] if drop else parts
    if base:
        base_parts = base_parts + base.split(".")
    return ".".join(base_parts) if base_parts else None


def iter_import_edges(module: ModuleInfo, project: Project) -> list[ImportEdge]:
    """Every import edge of ``module``, absolute and submodule-resolved."""
    edges: list[ImportEdge] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(ImportEdge(node=node, target=alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level, node.module)
            else:
                base = node.module
            if base is None:
                continue
            value_names: list[str] = []
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                if alias.name != "*" and candidate in project.modules:
                    # ``from pkg import submodule`` — a module edge.
                    edges.append(ImportEdge(node=node, target=candidate))
                else:
                    value_names.append(alias.name)
            if value_names:
                edges.append(
                    ImportEdge(
                        node=node, target=base, names=tuple(value_names)
                    )
                )
    return edges
