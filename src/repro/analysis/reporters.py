"""Text, JSON and SARIF reporters for casperlint runs."""

from __future__ import annotations

import json

from repro.analysis.baseline import BaselineMatch
from repro.analysis.core import RULE_REGISTRY, Finding, LintResult

__all__ = ["render_text", "render_json", "render_sarif"]


def _format_finding(finding: Finding, note: str = "") -> str:
    suffix = f" [{note}]" if note else ""
    return (
        f"{finding.path}:{finding.line}: {finding.rule} "
        f"{finding.severity}: {finding.message}{suffix}"
    )


def render_text(result: LintResult, match: BaselineMatch) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in match.new:
        lines.append(_format_finding(finding))
    for finding in match.baselined:
        lines.append(_format_finding(finding, note="baselined"))
    for entry in match.stale:
        lines.append(
            f"{entry.get('path', '?')}: stale baseline entry "
            f"{entry.get('fingerprint', '?')} ({entry.get('rule', '?')}: "
            f"{entry.get('message', '?')}) — remove it from the baseline"
        )
    new_errors = sum(1 for f in match.new if f.severity == "error")
    new_warnings = len(match.new) - new_errors
    lines.append(
        f"casperlint: {result.checked_modules} modules, "
        f"{len(result.rules_run)} rules -> {new_errors} error(s), "
        f"{new_warnings} warning(s), {len(match.baselined)} baselined, "
        f"{len(match.stale)} stale baseline entr"
        f"{'y' if len(match.stale) == 1 else 'ies'}, "
        f"{result.suppressed} inline-suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult, match: BaselineMatch) -> str:
    """Machine-oriented report (the CI gate consumes this)."""
    payload = {
        "version": 1,
        "modules_checked": result.checked_modules,
        "rules_run": list(result.rules_run),
        "suppressed": result.suppressed,
        "findings": [f.as_dict() for f in match.new],
        "baselined": [f.as_dict() for f in match.baselined],
        "stale_baseline_entries": match.stale,
        "summary": {
            "errors": sum(1 for f in match.new if f.severity == "error"),
            "warnings": sum(1 for f in match.new if f.severity == "warning"),
            "baselined": len(match.baselined),
            "stale": len(match.stale),
        },
    }
    return json.dumps(payload, indent=2)


_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def _sarif_result(finding: Finding, suppressed: bool) -> dict[str, object]:
    entry: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVEL.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": finding.line},
                }
            }
        ],
        # line-independent identity so GitHub code scanning tracks the
        # finding across unrelated edits, same as the baseline file
        "partialFingerprints": {"casperlint/v1": finding.fingerprint},
    }
    if suppressed:
        entry["suppressions"] = [
            {
                "kind": "external",
                "justification": "casperlint baseline entry",
            }
        ]
    return entry


def render_sarif(result: LintResult, match: BaselineMatch) -> str:
    """SARIF 2.1.0 report (GitHub code scanning upload format).

    New findings become plain results; baselined findings are emitted
    too, marked with an ``external`` suppression, so the dashboard sees
    the full picture without re-alerting on grandfathered debt.
    """
    rules = [
        {
            "id": code,
            "name": RULE_REGISTRY[code].name or code,
            "shortDescription": {
                "text": RULE_REGISTRY[code].description or code
            },
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(
                    RULE_REGISTRY[code].default_severity, "warning"
                )
            },
        }
        for code in result.rules_run
        if code in RULE_REGISTRY
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "casperlint",
                        "rules": rules,
                    }
                },
                "results": [
                    *(_sarif_result(f, False) for f in match.new),
                    *(_sarif_result(f, True) for f in match.baselined),
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(payload, indent=2)
