"""Text and JSON reporters for casperlint runs."""

from __future__ import annotations

import json

from repro.analysis.baseline import BaselineMatch
from repro.analysis.core import Finding, LintResult

__all__ = ["render_text", "render_json"]


def _format_finding(finding: Finding, note: str = "") -> str:
    suffix = f" [{note}]" if note else ""
    return (
        f"{finding.path}:{finding.line}: {finding.rule} "
        f"{finding.severity}: {finding.message}{suffix}"
    )


def render_text(result: LintResult, match: BaselineMatch) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in match.new:
        lines.append(_format_finding(finding))
    for finding in match.baselined:
        lines.append(_format_finding(finding, note="baselined"))
    for entry in match.stale:
        lines.append(
            f"{entry.get('path', '?')}: stale baseline entry "
            f"{entry.get('fingerprint', '?')} ({entry.get('rule', '?')}: "
            f"{entry.get('message', '?')}) — remove it from the baseline"
        )
    new_errors = sum(1 for f in match.new if f.severity == "error")
    new_warnings = len(match.new) - new_errors
    lines.append(
        f"casperlint: {result.checked_modules} modules, "
        f"{len(result.rules_run)} rules -> {new_errors} error(s), "
        f"{new_warnings} warning(s), {len(match.baselined)} baselined, "
        f"{len(match.stale)} stale baseline entr"
        f"{'y' if len(match.stale) == 1 else 'ies'}, "
        f"{result.suppressed} inline-suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult, match: BaselineMatch) -> str:
    """Machine-oriented report (the CI gate consumes this)."""
    payload = {
        "version": 1,
        "modules_checked": result.checked_modules,
        "rules_run": list(result.rules_run),
        "suppressed": result.suppressed,
        "findings": [f.as_dict() for f in match.new],
        "baselined": [f.as_dict() for f in match.baselined],
        "stale_baseline_entries": match.stale,
        "summary": {
            "errors": sum(1 for f in match.new if f.severity == "error"),
            "warnings": sum(1 for f in match.new if f.severity == "warning"),
            "baselined": len(match.baselined),
            "stale": len(match.stale),
        },
    }
    return json.dumps(payload, indent=2)
