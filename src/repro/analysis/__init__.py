"""casperlint — static enforcement of the reproduction's invariants.

Public surface:

* :func:`run_lint` / :class:`Project` / :class:`LintConfig` — embed the
  engine (this is what the tests do);
* :class:`Rule` + :func:`register_rule` — add a rule;
* :class:`Baseline` — grandfathered-finding bookkeeping;
* :mod:`repro.analysis.cli` — the ``python -m repro lint`` entry point.

See ``docs/static-analysis.md`` for the rule catalogue and the privacy
boundary model the CSP001 taint check enforces.
"""

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.config import LintConfig
from repro.analysis.core import (
    RULE_REGISTRY,
    Finding,
    LintResult,
    ModuleInfo,
    Project,
    RawFinding,
    Rule,
    register_rule,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineMatch",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "Project",
    "RawFinding",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "run_lint",
]
