"""casperlint core: findings, the project model, and the rule engine.

casperlint is an AST-based static analysis pass that enforces the two
repo-wide invariants nothing else checks mechanically:

* the **privacy boundary** of the paper's architecture (exact user
  locations never cross from the trusted anonymizer side into the
  query-processor/server side), and
* **determinism** of every module that feeds figure or benchmark
  output (all randomness routed through ``repro.utils.rng``).

plus a handful of generic correctness lints (float equality, mutable
default arguments, swallowed exceptions) that have historically caused
silent reproduction drift.

The engine is deliberately dependency-free: it parses every project
module once into a :class:`ModuleInfo`, hands the whole
:class:`Project` to each registered :class:`Rule` (rules may do
cross-module reasoning, e.g. import-graph taint tracking), and folds
the raw findings through inline-pragma suppression into a
:class:`LintResult`.

Suppression pragma syntax (anywhere in the physical line span of the
offending statement)::

    something_dubious()  # casperlint: ignore[CSP004] justification text
    another_thing()      # casperlint: ignore -- suppresses every rule

A pragma without a justification still suppresses, but the provided
reason is what code review is expected to look for.
"""

from __future__ import annotations

import abc
import ast
import hashlib
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig

__all__ = [
    "Finding",
    "RawFinding",
    "ModuleInfo",
    "Project",
    "Rule",
    "LintResult",
    "RULE_REGISTRY",
    "register_rule",
    "run_lint",
]

SEVERITIES = ("error", "warning")

#: ``# casperlint: ignore[CSP001,CSP002] optional justification``
#: ``# casperlint: ignore`` (all rules)
_PRAGMA_RE = re.compile(
    r"#\s*casperlint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One reportable violation, located in a project file."""

    rule: str
    path: str  # posix path relative to the project root
    line: int
    message: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Deliberately excludes the line number so baselined findings
        survive unrelated edits above them in the same file.
        """
        raw = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True, slots=True)
class RawFinding:
    """What a rule yields: a location span plus a message.

    ``end_line`` lets the engine honour suppression pragmas written on
    any physical line of a multi-line statement (e.g. the closing paren
    of a parenthesised import).
    """

    line: int
    message: str
    end_line: int | None = None

    @classmethod
    def at(cls, node: ast.AST, message: str) -> "RawFinding":
        return cls(
            line=getattr(node, "lineno", 1),
            message=message,
            end_line=getattr(node, "end_lineno", None),
        )


@dataclass(slots=True)
class ModuleInfo:
    """One parsed project module."""

    name: str  # dotted module name, e.g. ``repro.processor.knn``
    path: str  # posix path relative to the project root
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _pragmas: dict[int, frozenset[str] | None] | None = None
    _stmt_spans: list[tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def package(self) -> str:
        """The dotted package this module lives in."""
        if self.name.endswith(".__init__"):
            return self.name.rsplit(".", 1)[0]
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def in_package(self, prefixes: Sequence[str]) -> bool:
        """True when the module name falls under any dotted prefix."""
        return any(
            self.name == p or self.name.startswith(p + ".") for p in prefixes
        )

    # -- pragma handling ------------------------------------------------
    def pragmas(self) -> dict[int, frozenset[str] | None]:
        """Map of line number -> suppressed rule codes (None = all)."""
        if self._pragmas is None:
            found: dict[int, frozenset[str] | None] = {}
            for i, text in enumerate(self.lines, start=1):
                if "casperlint" not in text:
                    continue
                m = _PRAGMA_RE.search(text)
                if not m:
                    continue
                codes = m.group("codes")
                if codes is None:
                    found[i] = None
                else:
                    found[i] = frozenset(
                        c.strip() for c in codes.split(",") if c.strip()
                    )
            self._pragmas = found
        return self._pragmas

    def statement_span(self, line: int, end_line: int | None) -> tuple[int, int]:
        """[line, end] expanded to the innermost enclosing *simple* statement.

        Rules often anchor a finding at a sub-expression (one argument
        of a multi-line call), whose own span covers a single physical
        line.  A ``# casperlint: ignore[...]`` written on any other
        line of the same logical statement must still suppress it, so
        the suppression check widens the span to the smallest
        multi-line simple statement containing it.  Compound statements
        (``def``/``if``/``for``/...) are excluded: their span covers a
        whole suite, and a pragma deep inside a function body must not
        silence a finding on its ``def`` line.
        """
        last = end_line if end_line is not None else line
        if self._stmt_spans is None:
            simple = (
                ast.Expr,
                ast.Assign,
                ast.AnnAssign,
                ast.AugAssign,
                ast.Return,
                ast.Raise,
                ast.Assert,
                ast.Delete,
                ast.Import,
                ast.ImportFrom,
            )
            spans: list[tuple[int, int]] = []
            for node in ast.walk(self.tree):
                if (
                    isinstance(node, simple)
                    and node.end_lineno is not None
                    and node.end_lineno > node.lineno
                ):
                    spans.append((node.lineno, node.end_lineno))
            self._stmt_spans = sorted(spans)
        best = (line, last)
        best_size: int | None = None
        for start, end in self._stmt_spans:
            if start <= line and end >= last:
                size = end - start
                if best_size is None or size < best_size:
                    best, best_size = (start, end), size
        return best

    def is_suppressed(self, rule: str, line: int, end_line: int | None) -> bool:
        """True when a pragma on any line of the enclosing statement
        span covers ``rule`` (multi-line statements count in full)."""
        pragmas = self.pragmas()
        if not pragmas:
            return False
        line, last = self.statement_span(line, end_line)
        for lineno in range(line, last + 1):
            codes = pragmas.get(lineno, False)
            if codes is False:
                continue
            if codes is None or rule in codes:
                return True
        return False


class Project:
    """Every analysed module, addressable by dotted name.

    Built either from the on-disk tree (:meth:`load`) or incrementally
    via :meth:`add_module` / :meth:`add_virtual_module` — the latter is
    how tests inject a hypothetical module (e.g. a forbidden import
    inside ``repro.processor``) without touching the working tree.
    """

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else Path(".")
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_errors: list[Finding] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def load(
        cls, root: Path, scan_paths: Sequence[str] = ("src/repro", "tools")
    ) -> "Project":
        """Parse every ``.py`` file under ``root / scan_path``.

        Module naming: files under a ``src/`` segment are named relative
        to ``src`` (``src/repro/geometry/rect.py`` ->
        ``repro.geometry.rect``); anything else is named relative to the
        project root (``tools/bench.py`` -> ``tools.bench``).
        """
        project = cls(root)
        for scan in scan_paths:
            base = (project.root / scan).resolve()
            if base.is_file() and base.suffix == ".py":
                project.add_file(base)
                continue
            for path in sorted(base.rglob("*.py")):
                project.add_file(path)
        return project

    def add_file(self, path: Path) -> None:
        path = Path(path).resolve()
        rel = path.relative_to(self.root.resolve()).as_posix()
        self.add_source(self.module_name_for(rel), rel, path.read_text())

    def module_name_for(self, rel_posix: str) -> str:
        """Dotted module name for a project-relative posix path."""
        parts = rel_posix.split("/")
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        name = "/".join(parts)[: -len(".py")].replace("/", ".")
        if name.endswith(".__init__"):
            name = name[: -len(".__init__")]
        return name

    def add_source(self, name: str, rel_path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            self.parse_errors.append(
                Finding(
                    rule="CSP000",
                    path=rel_path,
                    line=exc.lineno or 1,
                    message=f"syntax error prevents analysis: {exc.msg}",
                )
            )
            return
        self.modules[name] = ModuleInfo(
            name=name, path=rel_path, source=source, tree=tree
        )

    def add_virtual_module(
        self, name: str, source: str, rel_path: str | None = None
    ) -> None:
        """Register an in-memory module as if it lived in the tree."""
        if rel_path is None:
            rel_path = "src/" + name.replace(".", "/") + ".py"
        self.add_source(name, rel_path, source)

    # -- lookups --------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def get(self, name: str) -> ModuleInfo | None:
        return self.modules.get(name)

    def resolve(self, name: str) -> str | None:
        """Best project module for a dotted name (module or package)."""
        if name in self.modules:
            return name
        return None

    def iter_modules(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())


class Rule(abc.ABC):
    """Base class every lint rule implements.

    Subclasses set the class attributes and yield :class:`RawFinding`
    objects from :meth:`check`.  The engine owns suppression, severity
    assignment and baseline handling — rules never worry about those.
    """

    code: str = "CSP000"
    name: str = ""
    description: str = ""
    default_severity: str = "error"

    @abc.abstractmethod
    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        """Yield raw findings for one module."""


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


@dataclass(slots=True)
class LintResult:
    """Everything a reporter or the CLI needs about one lint run."""

    findings: list[Finding]
    suppressed: int = 0
    checked_modules: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def run_lint(project: Project, config: LintConfig) -> LintResult:
    """Run every selected rule over every project module."""
    from repro.analysis.rules import load_builtin_rules

    load_builtin_rules()
    selected = sorted(
        code
        for code in RULE_REGISTRY
        if config.select is None or code in config.select
    )
    rules = [RULE_REGISTRY[code]() for code in selected]

    findings: list[Finding] = list(project.parse_errors)
    suppressed = 0
    for module in project.iter_modules():
        for rule in rules:
            severity = config.severity_of(rule.code, rule.default_severity)
            for raw in rule.check(module, project, config):
                if module.is_suppressed(rule.code, raw.line, raw.end_line):
                    suppressed += 1
                    continue
                findings.append(
                    Finding(
                        rule=rule.code,
                        path=module.path,
                        line=raw.line,
                        message=raw.message,
                        severity=severity,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        checked_modules=len(project.modules),
        rules_run=tuple(selected),
    )
