"""Per-function control-flow graphs for casperlint's dataflow rules.

:func:`build_cfg` turns one ``def``/``async def`` body into a graph of
:class:`BasicBlock` nodes with two synthetic endpoints:

* a single **entry** block with no predecessors, and
* a single **exit** block with no successors.

Every *simple* statement gets its own block (statement-level precision
is what the resource-lifecycle rule CSP012 needs: a release and a
raise-capable call in the same suite must still be ordered).  Compound
statements contribute a *header* block holding the evaluated
expression (``if``/``while`` test, ``for`` iterator, ``with`` context
expression, ``match`` subject) plus the blocks of their suites.

Exception edges
---------------
Any block whose statement or header can plausibly raise (it contains a
call, attribute access, subscript, binary operation or ``await``) gets
an extra edge to the innermost exception target: the dispatch block of
an enclosing ``try``, or the exit block.  ``try`` statements create a
synthetic *dispatch* block that fans out to each handler (and to the
``finally`` suite, when present); ``return`` inside a ``try`` with a
``finally`` routes through the ``finally`` suite instead of jumping
straight to exit.

The graph is intentionally conservative (extra edges, never missing
ones) so that path-sensitive rules report a resource as leaked only
when some over-approximated path really skips its release.

Invariant (property-tested): for any function body, the entry block is
the unique reachable block without predecessors, the exit block has no
successors, and every block reachable from entry can reach exit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "CFG", "build_cfg"]

#: Node types whose presence makes a statement/expression raise-capable.
_RAISEY = (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp, ast.Await)


def _can_raise(node: ast.AST) -> bool:
    if isinstance(node, (ast.Assert, ast.Raise)):
        return True
    return any(isinstance(sub, _RAISEY) for sub in ast.walk(node))


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """``except:`` or ``except BaseException:`` — nothing propagates,
    so the try needs no dispatch->outer edge for unmatched exceptions."""
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    return isinstance(node, ast.Name) and node.id == "BaseException"


@dataclass
class BasicBlock:
    """One CFG node: a simple statement, a compound header, or synthetic.

    Exactly one of ``stmt``/``header`` is set for ordinary blocks; both
    are ``None`` for the entry, exit and ``try``-dispatch blocks.
    """

    index: int
    stmt: ast.stmt | None = None
    header: ast.expr | None = None
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)

    @property
    def node(self) -> ast.AST | None:
        """The AST evaluated in this block (statement or header expr)."""
        return self.stmt if self.stmt is not None else self.header


class CFG:
    """The finished graph: blocks addressable by index."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.entry: int = 0
        self.exit: int = 1
        self._by_stmt: dict[int, int] = {}

    def block_of(self, stmt: ast.stmt) -> int | None:
        """The block holding a simple statement (by identity)."""
        return self._by_stmt.get(id(stmt))

    def reachable_from(self, start: int) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reaches(self, start: int, goal: int) -> bool:
        return goal in self.reachable_from(start)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._new()  # entry = 0
        self._new()  # exit = 1
        # (break-block list, continue target) per enclosing loop
        self._loops: list[tuple[list[int], int]] = []
        # innermost exception target (try dispatch block or exit)
        self._exc: list[int] = [self.cfg.exit]
        # pending-return routing: return inside try/finally goes through
        # the finally suite, not straight to exit
        self._finally_returns: list[list[int]] = []

    # -- graph primitives ----------------------------------------------
    def _new(
        self, stmt: ast.stmt | None = None, header: ast.expr | None = None
    ) -> int:
        index = len(self.cfg.blocks)
        self.cfg.blocks[index] = BasicBlock(index, stmt=stmt, header=header)
        if stmt is not None:
            self.cfg._by_stmt[id(stmt)] = index
        return index

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].successors.add(dst)
        self.cfg.blocks[dst].predecessors.add(src)

    def _link(self, preds: list[int], dst: int) -> None:
        for pred in preds:
            self._edge(pred, dst)

    # -- construction ---------------------------------------------------
    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        ends = self._suite(func.body, [self.cfg.entry])
        self._link(ends, self.cfg.exit)
        return self.cfg

    def _suite(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        current = preds
        for stmt in stmts:
            if not current:
                break  # unreachable tail (after return/raise on all paths)
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        if isinstance(stmt, ast.Return):
            block = self._new(stmt)
            self._link(preds, block)
            if stmt.value is not None and _can_raise(stmt.value):
                self._edge(block, self._exc[-1])
            if self._finally_returns:
                self._finally_returns[-1].append(block)
            else:
                self._edge(block, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            block = self._new(stmt)
            self._link(preds, block)
            self._edge(block, self._exc[-1])
            return []
        if isinstance(stmt, ast.Break):
            block = self._new(stmt)
            self._link(preds, block)
            if self._loops:
                self._loops[-1][0].append(block)
                return []
            return [block]
        if isinstance(stmt, ast.Continue):
            block = self._new(stmt)
            self._link(preds, block)
            if self._loops:
                self._edge(block, self._loops[-1][1])
                return []
            return [block]
        if isinstance(stmt, ast.If):
            head = self._new(header=stmt.test)
            self._link(preds, head)
            if _can_raise(stmt.test):
                self._edge(head, self._exc[-1])
            body_ends = self._suite(stmt.body, [head])
            else_ends = (
                self._suite(stmt.orelse, [head]) if stmt.orelse else [head]
            )
            return body_ends + else_ends
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            head = self._new(header=header)
            self._link(preds, head)
            if _can_raise(header):
                self._edge(head, self._exc[-1])
            breaks: list[int] = []
            self._loops.append((breaks, head))
            body_ends = self._suite(stmt.body, [head])
            self._loops.pop()
            self._link(body_ends, head)
            else_ends = (
                self._suite(stmt.orelse, [head]) if stmt.orelse else [head]
            )
            return else_ends + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._new(header=stmt.items[0].context_expr)
            self._link(preds, head)
            if any(_can_raise(item.context_expr) for item in stmt.items):
                self._edge(head, self._exc[-1])
            return self._suite(stmt.body, [head])
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            head = self._new(header=stmt.subject)
            self._link(preds, head)
            if _can_raise(stmt.subject):
                self._edge(head, self._exc[-1])
            ends = [head]  # no case may match
            for case in stmt.cases:
                ends += self._suite(case.body, [head])
            return ends
        # Simple statement (assignments, expressions, nested defs, ...)
        block = self._new(stmt)
        self._link(preds, block)
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and _can_raise(stmt):
            self._edge(block, self._exc[-1])
        return [block]

    def _try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        outer = self._exc[-1]
        dispatch = self._new()  # "an exception was raised in the suite"
        self._exc.append(dispatch)
        if stmt.finalbody:
            self._finally_returns.append([])
        body_ends = self._suite(stmt.body, preds)
        if stmt.orelse:
            body_ends = self._suite(stmt.orelse, body_ends)
        handler_ends: list[int] = []
        for handler in stmt.handlers:
            handler_ends += self._suite(handler.body, [dispatch])
        self._exc.pop()
        if stmt.finalbody:
            returned = self._finally_returns.pop()
            fin_preds = body_ends + handler_ends + returned + [dispatch]
            fin_ends = self._suite(stmt.finalbody, fin_preds)
            # the finally suite is also the funnel for propagating
            # exceptions and for returns crossing it
            for end in fin_ends:
                self._edge(end, outer)
            return fin_ends
        if not stmt.handlers:  # bare try (syntactically needs a finally,
            self._edge(dispatch, outer)  # pragma: no cover - defensive
            return body_ends
        if not any(_catches_everything(h) for h in stmt.handlers):
            self._edge(dispatch, outer)  # no handler matched
        return body_ends + handler_ends


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Control-flow graph of one function body (nested defs opaque)."""
    return _Builder().build(func)
