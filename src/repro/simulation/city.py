"""A scripted city simulation over the full Casper stack.

``CitySimulation`` wires every component of the reproduction together —
the synthetic county map, the network-based moving objects, the chosen
anonymizer, the privacy-aware server and the transmission model — and
drives them tick by tick with a configurable query mix, collecting the
per-tick metrics an operator of such a system would watch.  The
``audit`` option cross-checks a sample of answers against a brute-force
oracle every tick, turning the simulation into a long-running
correctness stressor (that is how the integration test suite uses it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.anonymizer import PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.server import Casper, TransmissionModel
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.workloads import uniform_points, uniform_profiles

__all__ = ["SimulationConfig", "TickReport", "SimulationReport", "CitySimulation"]

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of a city simulation run."""

    num_users: int = 1_000
    num_targets: int = 500
    pyramid_height: int = 8
    anonymizer: str = "adaptive"
    k_range: tuple[int, int] = (1, 50)
    a_min_fraction_range: tuple[float, float] = (0.00005, 0.0001)
    queries_per_tick: int = 20
    #: Relative weights of (private NN over public, private NN over
    #: private, private range over public) in the query mix.
    query_mix: tuple[float, float, float] = (0.6, 0.25, 0.15)
    range_radius: float = 0.05
    num_filters: int = 4
    dt: float = 1.0
    seed: SeedLike = 0
    audit_sample: int = 3  # oracle-checked queries per tick (0 disables)
    #: Expected user arrivals and departures per tick (population churn;
    #: 0 keeps the population fixed).
    arrivals_per_tick: float = 0.0
    departures_per_tick: float = 0.0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_targets < 1:
            raise ValueError("num_users and num_targets must be positive")
        if self.queries_per_tick < 0 or self.audit_sample < 0:
            raise ValueError("queries_per_tick and audit_sample must be >= 0")
        if len(self.query_mix) != 3 or sum(self.query_mix) <= 0:
            raise ValueError("query_mix must be three non-negative weights")
        if self.arrivals_per_tick < 0 or self.departures_per_tick < 0:
            raise ValueError("churn rates must be >= 0")


@dataclass
class TickReport:
    """Metrics of one simulation tick."""

    tick: int
    num_updates: int
    update_seconds: float
    arrivals: int = 0
    departures: int = 0
    queries: int = 0
    unsatisfiable: int = 0
    candidate_total: int = 0
    anonymizer_seconds: float = 0.0
    processing_seconds: float = 0.0
    transmission_seconds: float = 0.0
    audits_passed: int = 0
    audits_failed: int = 0

    @property
    def avg_candidates(self) -> float:
        return self.candidate_total / self.queries if self.queries else 0.0

    @property
    def avg_end_to_end_seconds(self) -> float:
        if not self.queries:
            return 0.0
        return (
            self.anonymizer_seconds
            + self.processing_seconds
            + self.transmission_seconds
        ) / self.queries


@dataclass
class SimulationReport:
    """The whole run's tick reports plus convenient aggregates."""

    config: SimulationConfig
    ticks: list[TickReport] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return sum(t.queries for t in self.ticks)

    @property
    def total_audits_failed(self) -> int:
        return sum(t.audits_failed for t in self.ticks)

    @property
    def avg_candidates(self) -> float:
        total = sum(t.candidate_total for t in self.ticks)
        return total / self.total_queries if self.total_queries else 0.0

    def summary(self) -> str:
        lines = [
            f"city simulation: {self.config.num_users} users, "
            f"{self.config.num_targets} targets, "
            f"{len(self.ticks)} ticks, {self.config.anonymizer} anonymizer",
            f"queries answered : {self.total_queries} "
            f"(+{sum(t.unsatisfiable for t in self.ticks)} unsatisfiable)",
            f"avg candidates   : {self.avg_candidates:.1f}",
            f"audits           : "
            f"{sum(t.audits_passed for t in self.ticks)} passed, "
            f"{self.total_audits_failed} failed",
        ]
        return "\n".join(lines)


class CitySimulation:
    """Build and drive a full Casper deployment from a config."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        map_rng, gen_rng, profile_rng, target_rng, self._rng = spawn_rngs(
            config.seed, 5
        )
        network = synthetic_county_map(seed=map_rng, bounds=UNIT)
        self.generator = NetworkGenerator(network, config.num_users, seed=gen_rng)
        self.casper = Casper(
            UNIT,
            pyramid_height=config.pyramid_height,
            anonymizer=config.anonymizer,
            transmission=TransmissionModel(),
        )
        self.targets = uniform_points(config.num_targets, UNIT, seed=target_rng)
        self.casper.add_public_targets(self.targets)
        self.profiles = uniform_profiles(
            config.num_users,
            UNIT,
            k_range=config.k_range,
            a_min_fraction_range=config.a_min_fraction_range,
            seed=profile_rng,
        )
        self._profile_of: dict[int, PrivacyProfile] = dict(enumerate(self.profiles))
        for uid, point in sorted(self.generator.positions().items()):
            self.casper.register_user(uid, point, self._profile_of[uid])
        self._tick = 0

    @property
    def active_users(self) -> list[int]:
        """Currently registered uids (changes under churn)."""
        return sorted(self.generator.objects)

    def _sample_profile(self) -> PrivacyProfile:
        k_lo, k_hi = self.config.k_range
        f_lo, f_hi = self.config.a_min_fraction_range
        return PrivacyProfile(
            k=int(self._rng.integers(k_lo, k_hi + 1)),
            a_min=float(self._rng.uniform(f_lo, f_hi)) * UNIT.area,
        )

    def _apply_churn(self, report: TickReport) -> None:
        config = self.config
        if config.arrivals_per_tick > 0:
            for _ in range(int(self._rng.poisson(config.arrivals_per_tick))):
                uid = self.generator.add_object()
                profile = self._sample_profile()
                self._profile_of[uid] = profile
                self.casper.register_user(
                    uid, self.generator.position_of(uid), profile
                )
                report.arrivals += 1
        if config.departures_per_tick > 0:
            active = self.active_users
            leavers = int(self._rng.poisson(config.departures_per_tick))
            for _ in range(min(leavers, max(len(active) - 10, 0))):
                active = self.active_users
                uid = int(self._rng.choice(active))
                self.generator.remove_object(uid)
                self.casper.remove_user(uid)
                del self._profile_of[uid]
                report.departures += 1

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def step(self) -> TickReport:
        """Advance one tick: move everyone, run the query mix, audit."""
        config = self.config
        start = time.perf_counter()
        updates = self.generator.step(config.dt)
        for update in updates:
            self.casper.update_location(update.uid, update.point)
        report = TickReport(
            tick=self._tick,
            num_updates=len(updates),
            update_seconds=time.perf_counter() - start,
        )
        self._tick += 1
        self._apply_churn(report)

        active = self.active_users
        weights = list(config.query_mix)
        total_weight = sum(weights)
        probabilities = [w / total_weight for w in weights]
        for _ in range(config.queries_per_tick):
            uid = int(self._rng.choice(active))
            kind = self._rng.choice(3, p=probabilities)
            try:
                if kind == 0:
                    result = self.casper.query_nearest_public(
                        uid, config.num_filters
                    )
                elif kind == 1:
                    result = self.casper.query_nearest_private(
                        uid, config.num_filters
                    )
                else:
                    result = self.casper.query_range_public(
                        uid, config.range_radius
                    )
            except ProfileUnsatisfiableError:
                report.unsatisfiable += 1
                continue
            report.queries += 1
            report.candidate_total += result.candidate_count
            report.anonymizer_seconds += result.anonymizer_seconds
            report.processing_seconds += result.processing_seconds
            report.transmission_seconds += result.transmission_seconds

        for _ in range(config.audit_sample):
            if self._audit_one():
                report.audits_passed += 1
            else:
                report.audits_failed += 1
        return report

    def run(self, ticks: int) -> SimulationReport:
        """Run ``ticks`` steps and collect the report."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        report = SimulationReport(config=self.config)
        for _ in range(ticks):
            report.ticks.append(self.step())
        return report

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def _audit_one(self) -> bool:
        """Answer one NN query and verify exactness against the oracle."""
        uid = int(self._rng.choice(self.active_users))
        try:
            result = self.casper.query_nearest_public(uid, self.config.num_filters)
        except ProfileUnsatisfiableError:
            return True  # nothing to audit
        user = self.casper.anonymizer.location_of(uid)
        best_distance = min(
            p.distance_to(user) for p in self.targets.values()
        )
        answered = self.targets[result.answer].distance_to(user)
        return abs(answered - best_distance) <= 1e-9
