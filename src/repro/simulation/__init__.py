"""Scripted full-stack simulations (mobility + anonymizer + server)."""

from repro.simulation.city import (
    CitySimulation,
    SimulationConfig,
    SimulationReport,
    TickReport,
)

__all__ = [
    "CitySimulation",
    "SimulationConfig",
    "SimulationReport",
    "TickReport",
]
