"""The consolidated message module and its compatibility shims.

``repro.messages`` is now the single definition site for every
cross-boundary message type; the old ``repro.server.messages`` and
``repro.resilience.messages`` import paths must keep working and must
re-export the *same* objects (identity, not copies).  The shard
envelope added for the sharded runtime gets its own codec tests: a
corrupted shard id must never route a message to the wrong shard.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import messages
from repro.messages import (
    ENVELOPE_HEADER_SIZE,
    ShardEnvelope,
    decode_envelope,
    encode_envelope,
)


class TestShims:
    def test_server_shim_reexports_identically(self) -> None:
        from repro.server import messages as server_messages

        assert server_messages.PrivateQueryResult is messages.PrivateQueryResult

    def test_resilience_shim_reexports_identically(self) -> None:
        from repro.resilience import messages as resilience_messages

        assert resilience_messages.LocationUpdate is messages.LocationUpdate
        assert resilience_messages.encode_update is messages.encode_update
        assert resilience_messages.decode_update is messages.decode_update
        assert (
            resilience_messages.UPDATE_RECORD_SIZE is messages.UPDATE_RECORD_SIZE
        )

    def test_update_codec_round_trips_through_the_shim(self) -> None:
        from repro.resilience.messages import decode_update, encode_update

        from repro.anonymizer import PrivacyProfile
        from repro.geometry import Point

        update = messages.LocationUpdate(
            "u1", 7, Point(0.25, 0.75), PrivacyProfile(k=3, a_min=0.001)
        )
        assert decode_update(encode_update(update)) == update


class TestShardEnvelope:
    @given(
        shard=st.integers(0, 65535),
        payload=st.binary(max_size=256),
    )
    def test_round_trip(self, shard: int, payload: bytes) -> None:
        envelope = ShardEnvelope(shard, payload)
        wire = encode_envelope(envelope)
        assert len(wire) == ENVELOPE_HEADER_SIZE + len(payload) + 4
        assert decode_envelope(wire) == envelope

    def test_rejects_out_of_range_shard(self) -> None:
        with pytest.raises(ValueError):
            encode_envelope(ShardEnvelope(-1, b"x"))
        with pytest.raises(ValueError):
            encode_envelope(ShardEnvelope(65536, b"x"))

    @given(
        payload=st.binary(max_size=64),
        position=st.integers(0, 1 << 30),
        flip=st.integers(1, 255),
    )
    def test_any_single_byte_corruption_is_detected(
        self, payload: bytes, position: int, flip: int
    ) -> None:
        wire = bytearray(encode_envelope(ShardEnvelope(9, payload)))
        wire[position % len(wire)] ^= flip
        with pytest.raises(ValueError):
            decode_envelope(bytes(wire))

    def test_a_corrupted_shard_id_never_routes(self) -> None:
        # Flipping the low bit of the shard id field specifically — the
        # exact corruption that would mis-route a message — must fail
        # the CRC rather than decode to shard 8.
        wire = bytearray(encode_envelope(ShardEnvelope(9, b"move u1")))
        wire[6] ^= 0x01  # header: 4s magic, H version, H shard at offset 6
        with pytest.raises(ValueError, match="CRC"):
            decode_envelope(bytes(wire))

    def test_truncation_and_garbage_are_rejected(self) -> None:
        wire = encode_envelope(ShardEnvelope(2, b"payload"))
        with pytest.raises(ValueError, match="too short"):
            decode_envelope(wire[:8])
        with pytest.raises(ValueError, match="magic"):
            decode_envelope(b"XXXX" + wire[4:])
        with pytest.raises(ValueError, match="length"):
            decode_envelope(wire + b"\x00")
