"""Tests for segments and the perpendicular-bisector construction.

The bisector intersection is the heart of Algorithm 2's middle-point
step; these tests pin down its exact semantics including degeneracies.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Segment,
    bisector_intersection,
    equidistant_point_on_segment,
    orientation,
    project_point_to_line,
    segments_intersect,
    unit_vector,
)

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestSegmentBasics:
    def test_length_and_midpoint(self):
        s = Segment(Point(0, 0), Point(3, 4))
        assert s.length() == pytest.approx(5.0)
        assert s.midpoint() == Point(1.5, 2.0)

    def test_point_at_endpoints(self):
        s = Segment(Point(1, 1), Point(2, 3))
        assert s.point_at(0.0) == Point(1, 1)
        assert s.point_at(1.0) == Point(2, 3)

    def test_closest_point_projection(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.closest_point_to(Point(3, 5)) == Point(3, 0)

    def test_closest_point_clamped_to_endpoint(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.closest_point_to(Point(-4, 2)) == Point(0, 0)
        assert s.closest_point_to(Point(14, 2)) == Point(10, 0)

    def test_degenerate_segment(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.closest_point_to(Point(5, 5)) == Point(1, 1)
        assert s.distance_to_point(Point(1, 2)) == pytest.approx(1.0)

    def test_contains_point(self):
        s = Segment(Point(0, 0), Point(1, 1))
        assert s.contains_point(Point(0.5, 0.5))
        assert not s.contains_point(Point(0.5, 0.6))


class TestBisectorIntersection:
    def test_symmetric_targets_yield_edge_midpoint_x(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        m = bisector_intersection(edge, Point(0.2, 0.5), Point(0.8, 0.5))
        assert m is not None
        assert m.x == pytest.approx(0.5)
        assert m.y == pytest.approx(0.0)

    def test_m_is_equidistant(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        ti, tj = Point(0.1, 0.3), Point(0.9, 0.8)
        m = bisector_intersection(edge, ti, tj)
        assert m is not None
        assert m.distance_to(ti) == pytest.approx(m.distance_to(tj), abs=1e-9)

    def test_no_intersection_when_bisector_misses_edge(self):
        # Both targets far to the left: every edge point is closer to ti.
        edge = Segment(Point(0, 0), Point(1, 0))
        assert bisector_intersection(edge, Point(-5, 0), Point(-10, 0)) is None

    def test_coincident_targets_whole_edge_equidistant(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        m = bisector_intersection(edge, Point(0.5, 1), Point(0.5, 1))
        # f is constant 0: the helper reports the midpoint as a
        # representative equidistant point.
        assert m == edge.midpoint()

    def test_equidistant_helper_none_for_equal_targets(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        m, dm = equidistant_point_on_segment(edge, Point(0.5, 1), Point(0.5, 1))
        assert m is None
        assert dm == 0.0

    def test_equidistant_helper_distance(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        ti, tj = Point(0.0, 0.4), Point(1.0, 0.4)
        m, dm = equidistant_point_on_segment(edge, ti, tj)
        assert m is not None
        assert dm == pytest.approx(m.distance_to(ti), abs=1e-9)

    @given(points, points)
    def test_equidistance_property_on_unit_edge(self, ti: Point, tj: Point):
        assume(ti.distance_to(tj) > 1e-6)
        edge = Segment(Point(0, 0), Point(1, 0))
        m = bisector_intersection(edge, ti, tj)
        if m is not None:
            assert m.distance_to(ti) == pytest.approx(m.distance_to(tj), abs=1e-5)
            assert -1e-9 <= m.x <= 1 + 1e-9
            assert m.y == pytest.approx(0.0, abs=1e-9)

    @given(
        dx1=st.floats(-0.3, 0.3),
        dy1=st.floats(-0.3, 0.3),
        dx2=st.floats(-0.3, 0.3),
        dy2=st.floats(-0.3, 0.3),
    )
    def test_separating_property(self, dx1, dy1, dx2, dy2):
        """When ti is strictly nearest to edge.a and tj strictly nearest
        to edge.b, the bisector must cross the edge — the configuration
        produced by the filter step of Algorithm 2."""
        edge = Segment(Point(0, 0), Point(1, 0))
        ti = Point(0.0 + dx1, dy1)  # within 0.43 of va, at least 0.55 from vb
        tj = Point(1.0 + dx2, dy2)
        va, vb = edge.a, edge.b
        assume(va.distance_to(ti) < va.distance_to(tj) - 1e-6)
        assume(vb.distance_to(tj) < vb.distance_to(ti) - 1e-6)
        m = bisector_intersection(edge, ti, tj)
        assert m is not None


class TestSegmentPredicates:
    def test_orientation_signs(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) > 0
        assert orientation(Point(0, 0), Point(1, 0), Point(0, -1)) < 0
        assert orientation(Point(0, 0), Point(1, 0), Point(2, 0)) == 0

    def test_segments_intersect_crossing(self):
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(0, 1), Point(1, 0))
        assert segments_intersect(s1, s2)

    def test_segments_intersect_touching_endpoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(1, 0), Point(2, 5))
        assert segments_intersect(s1, s2)

    def test_segments_disjoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0, 1), Point(1, 1))
        assert not segments_intersect(s1, s2)

    def test_project_point_to_line(self):
        p = project_point_to_line(Point(0, 5), Point(-1, 0), Point(1, 0))
        assert p == Point(0, 0)

    def test_project_degenerate_line_raises(self):
        with pytest.raises(ValueError):
            project_point_to_line(Point(0, 0), Point(1, 1), Point(1, 1))

    def test_unit_vector(self):
        ux, uy = unit_vector(Point(0, 0), Point(0, 2))
        assert (ux, uy) == pytest.approx((0.0, 1.0))

    def test_unit_vector_zero_raises(self):
        with pytest.raises(ValueError):
            unit_vector(Point(1, 1), Point(1, 1))
