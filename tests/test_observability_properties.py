"""Property tests for the observability primitives.

The metrics layer promises *algebraic* determinism: snapshots are pure
functions of the multiset of recorded observations, histogram merging
is associative and commutative, counters are monotone, and snapshots
round-trip through JSON exactly (histogram sums are exact rationals,
float fields travel as ``float.hex`` strings).  These tests pin each of
those promises, because the instrumentation-equivalence suite and the
CI coverage gate both build on them.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    SLODefinition,
    SLOMonitor,
    TelemetryExport,
    TelemetryLeakError,
    Tracer,
    ensure_safe_label_value,
    looks_like_coordinates,
)
from repro.observability import runtime as rt

# Magnitudes bounded so exact-rational arithmetic stays fast; the full
# float range is exercised separately via awkward hand-picked values.
finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
float_lists = st.lists(finite_floats, max_size=40)

AWKWARD_VALUES = (
    0.1,
    0.2,
    0.30000000000000004,
    1e-300,
    1e300,
    -0.0,
    2.220446049250313e-16,
    123456789.123456789,
)


def hist_of(values, boundaries=DEFAULT_LATENCY_BUCKETS) -> Histogram:
    h = Histogram("h", boundaries=boundaries)
    for v in values:
        h.observe(v)
    return h


class TestHistogramAlgebra:
    @given(float_lists, float_lists)
    def test_merge_commutative(self, a, b):
        left = hist_of(a)
        left.merge(hist_of(b))
        right = hist_of(b)
        right.merge(hist_of(a))
        assert left.as_dict() == right.as_dict()

    @given(float_lists, float_lists, float_lists)
    def test_merge_associative(self, a, b, c):
        ab = hist_of(a)
        ab.merge(hist_of(b))
        ab.merge(hist_of(c))
        bc = hist_of(b)
        bc.merge(hist_of(c))
        a_bc = hist_of(a)
        a_bc.merge(bc)
        assert ab.as_dict() == a_bc.as_dict()

    @given(st.permutations(list(AWKWARD_VALUES)))
    def test_observation_order_irrelevant(self, shuffled):
        assert hist_of(shuffled).as_dict() == hist_of(AWKWARD_VALUES).as_dict()

    @given(float_lists)
    def test_sum_is_exact(self, values):
        h = hist_of(values)
        exact = sum(
            (Fraction(*float(v).as_integer_ratio()) for v in values),
            Fraction(0),
        )
        assert h.sum == float(exact)
        num, den = h.as_dict()["sum"]
        assert Fraction(num, den) == exact

    def test_lazy_fold_crosses_batch_threshold(self):
        h = hist_of([0.1] * 5000)
        assert h.count == 5000
        assert Fraction(*h.as_dict()["sum"]) == (
            Fraction(*(0.1).as_integer_ratio()) * 5000
        )

    def test_reading_sum_is_idempotent(self):
        h = hist_of([0.25, 0.5])
        assert h.sum == h.sum == 0.75
        assert h.mean == 0.375
        h.observe(0.25)
        assert h.sum == 1.0

    def test_bucketing_boundaries_inclusive(self):
        h = hist_of([1.0, 1.0000001, 0.5], boundaries=(0.5, 1.0))
        # 0.5 and 1.0 land in their named buckets, the epsilon above in +inf.
        assert h.bucket_counts == [1, 1, 1]
        assert h.minimum == 0.5 and h.maximum == 1.0000001

    def test_merge_rejects_different_boundaries(self):
        a = Histogram("h", boundaries=(1.0, 2.0))
        b = Histogram("h", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_invalid_construction_and_observation(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, float("inf")))
        h = Histogram("h", boundaries=(1.0,))
        with pytest.raises(ValueError):
            h.observe(float("nan"))


class TestCounterAndGauge:
    @given(st.lists(st.integers(min_value=0, max_value=1000)))
    def test_counter_monotone(self, increments):
        c = Counter("c")
        seen = 0
        for amount in increments:
            c.inc(amount)
            assert c.value >= seen
            seen = c.value
        assert c.value == sum(increments)

    def test_counter_rejects_non_monotone_and_non_int(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(TypeError):
            c.inc(1.5)
        with pytest.raises(TypeError):
            c.inc(True)
        with pytest.raises(ValueError):
            c.restore({"value": -3})

    def test_gauge_last_write_wins_and_hex_roundtrip(self):
        g = Gauge("g")
        g.set(0.1)
        g.set(0.30000000000000004)
        state = g.as_dict()
        g2 = Gauge("g")
        g2.restore(state)
        assert g2.value == 0.30000000000000004
        with pytest.raises(ValueError):
            g.set(float("inf"))
        with pytest.raises(ValueError):
            g2.restore({"value": 1.5})


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        labels = (("anonymizer", "basic"),)
        assert m.counter("c", labels) is m.counter("c", labels)
        # Unsorted label order converges on the same instrument.
        two = (("b", 1), ("a", 2))
        assert m.counter("c2", two) is m.counter("c2", tuple(sorted(two)))
        assert m.get("c", labels) is m.counter("c", labels)
        assert m.get("missing") is None
        assert len(m) == 2

    def test_kind_and_boundary_conflicts(self):
        m = MetricsRegistry()
        m.counter("c")
        with pytest.raises(ValueError):
            m.gauge("c")
        m.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            m.counter("h")  # fast-path probe must also type-check
        with pytest.raises(ValueError):
            m.histogram("h", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError):
            m.counter("bad name!")
        with pytest.raises(ValueError):
            m.counter("c", (("", 1),))

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), finite_floats),
            max_size=60,
        )
    )
    def test_interleaving_determinism(self, stream):
        """Any interleaving of the same per-instrument observation
        sequences snapshots identically (here: reversed arrival order
        of events targeting distinct instruments)."""

        def build(events):
            m = MetricsRegistry()
            for name, value in events:
                m.histogram(f"h_{name}", (("src", name),)).observe(value)
                m.counter(f"c_{name}").inc()
            return m

        # Stable-partition by instrument: per-instrument order is kept,
        # cross-instrument interleaving is completely rearranged.
        regrouped = [
            e for key in ["c", "b", "a"] for e in stream if e[0] == key
        ]
        a, b = build(stream), build(regrouped)
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_snapshot_json_roundtrip_exact(self):
        m = MetricsRegistry()
        m.counter("requests", (("kind", "nn"),), help="req").inc(7)
        g = m.gauge("load", help="load")
        g.set(0.30000000000000004)
        h = m.histogram(
            "lat", (("phase", "x"),), boundaries=DEFAULT_RATIO_BUCKETS
        )
        for v in AWKWARD_VALUES:
            h.observe(abs(v))
        wire = json.dumps(m.snapshot())
        restored = MetricsRegistry.from_snapshot(json.loads(wire))
        assert restored.snapshot() == m.snapshot()
        # ... and the restored histogram still holds the exact rational.
        h2 = restored.get("lat", (("phase", "x"),))
        assert h2.as_dict() == h.as_dict()

    def test_from_snapshot_rejects_malformed(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot({"version": 2, "metrics": []})
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot({"version": 1})
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot(
                {"version": 1, "metrics": [{"kind": "unknown", "name": "x"}]}
            )
        def hist_entry(**overrides):
            entry = {
                "name": "h",
                "kind": "histogram",
                "labels": [],
                "help": "",
                "boundaries": [(1.0).hex()],
                "bucket_counts": [1, 0],
                "count": 1,
                "sum": [1, 1],
            }
            entry.update(overrides)
            return {"version": 1, "metrics": [entry]}

        for bad in (
            hist_entry(count=2),  # inconsistent with buckets
            hist_entry(sum=[1, "x"]),  # malformed exact-sum parts
            hist_entry(bucket_counts=[1]),  # wrong bucket arity
        ):
            with pytest.raises(ValueError):
                MetricsRegistry.from_snapshot(bad)

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(1.5)
        b.histogram("h").observe(0.25)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 1.5
        assert a.histogram("h").count == 1
        assert len(b) == 3  # merge never mutates the source

    def test_clear_resets_instruments_and_handles(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.handle_cache["k"] = object()
        m.clear()
        assert len(m) == 0 and not m.handle_cache


class TestLabelScreening:
    def test_accepts_safe_values(self):
        for value in ("basic", 7, True, "k=50 area ok"):
            assert ensure_safe_label_value(value) == value

    @pytest.mark.parametrize(
        "value",
        [
            0.5,
            "Point(0.25, 0.75)",
            "(0.25, 0.75)",
            "0.25,0.75",
            "12.5;  -7.25",
            None,
            (1, 2),
        ],
    )
    def test_rejects_location_shaped_values(self, value):
        with pytest.raises(TelemetryLeakError):
            ensure_safe_label_value(value)

    def test_looks_like_coordinates(self):
        assert looks_like_coordinates("point(1.0, 2.0)")
        assert not looks_like_coordinates("42 items, 17 filters")


class TestTracer:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        with tracer.span("root", query_type="nn") as root:
            with tracer.span("child") as child:
                child.set_attribute("n", 3)
            assert tracer.open_depth == 1
        assert tracer.open_depth == 0
        assert tracer.finished == [root]
        assert root.children == [child]
        assert child.attributes == {"n": 3}
        assert [s.name for s in tracer.iter_spans()] == ["root", "child"]
        tree = tracer.snapshot()[0]
        assert tree["children"][0]["name"] == "child"
        assert root.duration >= 0.0

    def test_attribute_screening(self):
        tracer = Tracer()
        with pytest.raises(TelemetryLeakError):
            with tracer.span("root", where="(1.5, 2.5)"):
                pass  # pragma: no cover - span never opens
        with tracer.span("root") as span:
            with pytest.raises(TelemetryLeakError):
                span.set_attribute("x", 0.5)

    def test_max_roots_drops_oldest(self):
        tracer = Tracer(max_roots=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s2", "s3"]
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.finished == [] and tracer.dropped == 0
        with pytest.raises(ValueError):
            Tracer(max_roots=0)


class TestSLOMonitor:
    def test_upper_and_lower_breaches(self):
        monitor = SLOMonitor(
            (
                SLODefinition("lat", "d", 1.0, "upper", min_samples=2),
                SLODefinition("ratio", "d", 1.0, "lower", min_samples=2),
            )
        )
        monitor.record("lat", 3.0)
        assert monitor.evaluate() == []  # below min_samples
        monitor.record("lat", 5.0)
        monitor.record("ratio", 0.5)
        monitor.record("ratio", 0.7)
        monitor.record("unknown", 99.0)  # silently ignored
        breaches = {b.slo: b for b in monitor.evaluate()}
        assert set(breaches) == {"lat", "ratio"}
        assert breaches["lat"].observed == 4.0
        assert ">" in breaches["lat"].describe()
        assert "<" in breaches["ratio"].describe()
        snap = monitor.snapshot()
        assert len(snap["breaches"]) == 2
        assert monitor.samples("lat") == 2
        assert monitor.rolling_mean("ratio") == pytest.approx(0.6)
        assert len(monitor) == 4
        monitor.clear()
        assert len(monitor) == 0 and monitor.rolling_mean("lat") == 0.0

    def test_invalid_definitions(self):
        with pytest.raises(ValueError):
            SLODefinition("x", "d", 1.0, kind="sideways")
        with pytest.raises(ValueError):
            SLODefinition("x", "d", 1.0, window=0)
        with pytest.raises(ValueError):
            SLOMonitor(
                (
                    SLODefinition("x", "d", 1.0),
                    SLODefinition("x", "d", 2.0),
                )
            )


class TestRuntimeHelpers:
    def test_disabled_helpers_are_noops(self):
        assert rt.active() is None and not rt.is_enabled()
        rt.note_candidates(5)
        rt.note_server_request("nn_public")
        assert rt.phase_scope("extension", "public") is rt.phase_scope(
            "candidates", "private"
        )
        with rt.query_scope("nn_public"):
            pass

    def test_explicit_enable_disable(self):
        session = rt.enable()
        try:
            assert rt.active() is session and rt.is_enabled()
            replacement = rt.enable()
            assert rt.active() is replacement is not session
        finally:
            returned = rt.disable()
        assert returned is replacement
        assert rt.disable() is None  # idempotent when already off

    def test_enabled_restores_previous_session(self):
        outer = Observability()
        with rt.enabled(outer):
            assert rt.active() is outer
            with rt.enabled() as inner:
                assert rt.active() is inner is not outer
                rt.note_candidates(3)
            assert rt.active() is outer
        assert rt.active() is None
        assert outer.is_empty and not inner.is_empty
        inner.clear()
        assert inner.is_empty

    def test_record_helpers_populate_catalogue(self):
        with rt.enabled() as obs:
            rt.record_cloak(obs, "basic", 0.001, 4.0, 2.0, 55, 50)
            rt.record_cloak(obs, "basic", 0.002, 1.0, 0.0, 10, 0)
            rt.record_cache_event(obs, "hit")
            with rt.phase_scope("extension", "public"):
                rt.note_candidates(12)
            with rt.query_scope("nn_public"):
                rt.note_server_request("nn_public")
            rt.record_batch(obs, size=10, computed=4, seconds=0.05)
            rt.record_monitor_flush(obs, dirty=3, changed=1, seconds=0.01)
        m = obs.metrics
        anon = (("anonymizer", "basic"),)
        assert m.get("casper_cloak_requests_total", anon).value == 2
        assert m.get("casper_cloak_seconds", anon).count == 2
        assert m.get("casper_cloak_area_ratio", anon).count == 1  # a_min>0 once
        assert m.get("casper_cloak_k_ratio", anon).sum == 1.1 + 1.0
        assert (
            m.get("casper_cloak_cache_events_total", (("event", "hit"),)).value
            == 1
        )
        assert m.get("casper_candidate_list_size").count == 1
        assert (
            m.get(
                "casper_batch_requests_total", (("outcome", "deduplicated"),)
            ).value
            == 6
        )
        assert (
            m.get("casper_queries_total", (("query_type", "nn_public"),)).value
            == 1
        )
        assert m.get("casper_monitor_flush_seconds").count == 1
        roots = obs.tracer.finished
        assert [r.name for r in roots] == ["processor.extension", "casper.query"]
        assert obs.slo.samples("cloak_latency_seconds") == 2

    def test_worker_helpers_record_per_shard_transport_metrics(self):
        with rt.enabled() as obs:
            # Twice each: the second call must reuse the cached handle.
            rt.record_worker_roundtrip(obs, 0, 0.002)
            rt.record_worker_roundtrip(obs, 0, 0.004)
            rt.record_worker_batch(obs, 0, 12)
            rt.record_worker_batch(obs, 0, 1)
            rt.record_worker_event(obs, 1, "retransmit")
            rt.record_worker_event(obs, 1, "retransmit")
            rt.record_worker_event(obs, 1, "heal")
            # Null-safe variants route to the active session...
            rt.note_worker_roundtrip(2, 0.001)
            rt.note_worker_batch(2, 3)
            rt.note_worker_event(2, "spawn")
        m = obs.metrics
        shard0 = (("shard", "0"),)
        assert m.get("casper_worker_roundtrip_seconds", shard0).count == 2
        assert m.get("casper_worker_batch_envelopes", shard0).sum == 13.0
        assert (
            m.get(
                "casper_worker_events_total",
                (("shard", "1"), ("event", "retransmit")),
            ).value
            == 2
        )
        assert (
            m.get("casper_worker_roundtrip_seconds", (("shard", "2"),)).count
            == 1
        )
        assert (
            m.get(
                "casper_worker_events_total",
                (("shard", "2"), ("event", "spawn")),
            ).value
            == 1
        )
        # ... and are no-ops while telemetry is disabled.
        assert rt.active() is None
        rt.note_worker_roundtrip(0, 0.001)
        rt.note_worker_batch(0, 1)
        rt.note_worker_event(0, "crash")
        assert m.get("casper_worker_roundtrip_seconds", shard0).count == 2

    def test_handle_cache_survives_registry_clear(self):
        with rt.enabled() as obs:
            rt.record_cloak(obs, "basic", 0.001, 4.0, 2.0, 55, 50)
            obs.metrics.clear()  # also invalidates memoized handles
            rt.record_cloak(obs, "basic", 0.001, 4.0, 2.0, 55, 50)
            assert (
                obs.metrics.get(
                    "casper_cloak_requests_total", (("anonymizer", "basic"),)
                ).value
                == 1
            )


class TestTelemetryExport:
    def _session(self) -> Observability:
        obs = Observability()
        rt.record_cloak(obs, "adaptive", 0.003, 9.0, 3.0, 20, 10)
        rt.record_candidates(obs, 17)
        obs.metrics.gauge("casper_load", help="load").set(0.5)
        with obs.tracer.span("casper.query", query_type="nn_public"):
            with obs.tracer.span("processor.extension", data="public"):
                pass
        return obs

    def test_metrics_roundtrip_through_export(self):
        obs = self._session()
        export = TelemetryExport.from_observability(obs)
        parsed = json.loads(export.to_json())
        assert set(parsed) == {"metrics", "slos", "spans"}
        restored = export.restore_metrics()
        assert restored.snapshot() == obs.metrics.snapshot()
        assert parsed["spans"][0]["children"][0]["name"] == "processor.extension"

    def test_prometheus_rendering(self):
        export = TelemetryExport.from_observability(self._session())
        text = export.to_prometheus()
        lines = text.splitlines()
        assert any(
            line.startswith("# TYPE casper_cloak_seconds histogram")
            for line in lines
        )
        assert 'le="+Inf"' in text
        # Cumulative bucket counts must end at the total count.
        inf_line = next(
            line
            for line in lines
            if line.startswith("casper_cloak_seconds_bucket")
            and 'le="+Inf"' in line
        )
        count_line = next(
            line for line in lines if line.startswith("casper_cloak_seconds_count")
        )
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1] == "1"
        assert "casper_load 0.5" in lines  # gauge sample line
        assert TelemetryExport(metrics={"version": 1, "metrics": []}) \
            .to_prometheus() == ""

    def test_export_rejects_location_shaped_snapshots(self):
        leaky_metrics = {
            "version": 1,
            "metrics": [
                {
                    "name": "c",
                    "kind": "counter",
                    "labels": [["where", "(0.25, 0.75)"]],
                    "help": "",
                    "value": 1,
                }
            ],
        }
        with pytest.raises(TelemetryLeakError):
            TelemetryExport(metrics=leaky_metrics)
        with pytest.raises(TelemetryLeakError):
            TelemetryExport(metrics={"version": 1, "metrics": "nope"})
        leaky_span = {
            "name": "root",
            "attributes": {},
            "children": [
                {"name": "child", "attributes": {"at": "1.5,2.5"}, "children": []}
            ],
        }
        with pytest.raises(TelemetryLeakError):
            TelemetryExport(
                metrics={"version": 1, "metrics": []}, spans=(leaky_span,)
            )
