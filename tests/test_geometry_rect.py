"""Unit and property tests for repro.geometry.rect."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw) -> Rect:
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    return Rect(x0, y0, x1, y1)


points = st.builds(Point, coords, coords)


class TestRectConstruction:
    def test_invalid_rect_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_points_normalises(self):
        r = Rect.from_points(Point(1, 2), Point(0, -1))
        assert r == Rect(0, -1, 1, 2)

    def test_from_center(self):
        r = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
        assert r.center.almost_equals(Point(0.5, 0.5))
        assert r.width == pytest.approx(0.2)
        assert r.height == pytest.approx(0.4)

    def test_from_center_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1, 1)

    def test_point_rect_is_degenerate(self):
        r = Rect.point(Point(0.3, 0.4))
        assert r.is_degenerate()
        assert r.area == 0.0
        assert r.center == Point(0.3, 0.4)


class TestRectMeasures:
    def test_area_width_height(self):
        r = Rect(0, 0, 2, 3)
        assert (r.width, r.height, r.area) == (2, 3, 6)

    def test_vertices_paper_order(self):
        # v1 top-left, v2 top-right, v3 bottom-left, v4 bottom-right.
        r = Rect(0, 0, 1, 1)
        v1, v2, v3, v4 = r.vertices()
        assert v1 == Point(0, 1)
        assert v2 == Point(1, 1)
        assert v3 == Point(0, 0)
        assert v4 == Point(1, 0)

    def test_edges_directions(self):
        r = Rect(0, 0, 1, 1)
        directions = {e.direction for e in r.edges()}
        assert directions == {"top", "bottom", "left", "right"}
        for e in r.edges():
            assert e.length() == pytest.approx(1.0)


class TestRectDistances:
    def test_min_distance_inside_is_zero(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_min_distance_outside(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(2, 1)) == pytest.approx(1.0)
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(2, 2)) == pytest.approx(
            2**0.5
        )

    def test_max_distance_is_farthest_corner(self):
        r = Rect(0, 0, 1, 1)
        p = Point(0.1, 0.1)
        corner = r.farthest_corner_from(p)
        assert corner == Point(1, 1)
        assert r.max_distance_to_point(p) == pytest.approx(p.distance_to(corner))

    def test_rect_rect_min_distance_overlap_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0.5, 0.5, 2, 2)
        assert a.min_distance_to_rect(b) == 0.0

    def test_rect_rect_min_distance_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 0, 3, 1)
        assert a.min_distance_to_rect(b) == pytest.approx(1.0)

    def test_rect_rect_max_distance(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 0, 3, 1)
        assert a.max_distance_to_rect(b) == pytest.approx((9 + 1) ** 0.5)

    @given(rects(), points)
    def test_min_le_max_distance(self, r: Rect, p: Point):
        assert r.min_distance_to_point(p) <= r.max_distance_to_point(p) + 1e-9

    @given(rects(), points)
    def test_max_distance_attained_at_farthest_corner(self, r: Rect, p: Point):
        corner = r.farthest_corner_from(p)
        assert r.max_distance_to_point(p) == pytest.approx(
            p.distance_to(corner), abs=1e-6
        )
        for c in r.corners():
            assert p.distance_to(c) <= p.distance_to(corner) + 1e-9

    @given(rects(), points)
    def test_nearest_point_minimises(self, r: Rect, p: Point):
        near = r.nearest_point_to(p)
        assert r.contains_point(near)
        assert p.distance_to(near) == pytest.approx(
            r.min_distance_to_point(p), abs=1e-9
        )


class TestRectPredicatesAndCombinators:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.001, 1))

    def test_intersects_touching(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_overlap_area(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_overlap_fraction(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(0, 0, 1, 2)
        assert b.overlap_fraction(a) == pytest.approx(1.0)
        assert a.overlap_fraction(b) == pytest.approx(0.5)

    def test_overlap_fraction_degenerate(self):
        p = Rect.point(Point(0.5, 0.5))
        assert p.overlap_fraction(Rect(0, 0, 1, 1)) == 1.0
        assert p.overlap_fraction(Rect(2, 2, 3, 3)) == 0.0

    def test_expanded_per_side(self):
        r = Rect(1, 1, 2, 2).expanded(left=0.5, top=0.25)
        assert r == Rect(0.5, 1, 2, 2.25)

    def test_expanded_uniform(self):
        assert Rect(1, 1, 2, 2).expanded_uniform(1) == Rect(0, 0, 3, 3)

    def test_clipped_to(self):
        r = Rect(-1, -1, 2, 2).clipped_to(Rect(0, 0, 1, 1))
        assert r == Rect(0, 0, 1, 1)

    def test_clipped_to_disjoint_raises(self):
        with pytest.raises(ValueError):
            Rect(2, 2, 3, 3).clipped_to(Rect(0, 0, 1, 1))

    @given(rects(), rects())
    def test_union_contains_both(self, a: Rect, b: Rect):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a: Rect, b: Rect):
        inter = a.intersection(b)
        if inter is None:
            assert a.overlap_area(b) == 0.0
        else:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), rects())
    def test_intersects_symmetric(self, a: Rect, b: Rect):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_overlap_area_bounded(self, a: Rect, b: Rect):
        assert 0.0 <= a.overlap_area(b) <= min(a.area, b.area) + 1e-9
