# module: app.processor.clean_telemetry
"""Privacy-safe telemetry: labels and span attributes carry only
categorical strings, counts, and booleans — never coordinates."""


def record(metrics, tracer, query_type, anonymizer_kind, cache_hit):
    metrics.counter(
        "requests_total", (("query_type", query_type),)
    ).inc()
    metrics.gauge("cache_hit", (("anonymizer", anonymizer_kind),)).set(1.0)
    with tracer.span("handle", query_type=query_type, cached=cache_hit):
        pass
    metrics.histogram("candidates", (("data", "public"),)).observe(17.0)
