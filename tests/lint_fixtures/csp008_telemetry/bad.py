# module: app.processor.bad_telemetry
"""Violates CSP008 five ways: a Point construction in a label, a raw
coordinate read, a location-named interpolation, a location-named
value passed directly, and a coordinate-pair string literal."""


def leak_labels(metrics, tracer, user, Point):
    metrics.counter(
        "requests_total", (("where", Point(1.0, 2.0)),)
    ).inc()
    metrics.gauge("last_x", (("coordinate", user.position.x),)).set(1.0)
    with tracer.span("handle", origin=f"{user.location}"):
        pass
    span = tracer.span("refine")
    span.set_attribute("query_point", query_point)
    metrics.histogram("sizes", (("hint", "(1.5, 2.5)"),)).observe(3.0)


query_point = None
