# module: proto.workers
"""CSP011 violating fixture, inside the pickle boundary.

Two findings: a dumps whose blob never reaches a sanctioned carrier,
and a loads fed bytes that derive from no CRC-verified source.
"""
import pickle


def stash(package):
    return pickle.dumps(package)  # blob escapes without a carrier


def unstash(raw):
    return pickle.loads(raw)  # unverified bytes
