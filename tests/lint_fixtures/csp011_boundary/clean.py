# module: proto.workers
"""CSP011 clean fixture: pickle rides CRC-verified wire shapes only."""
import pickle


def snapshot(state):
    blob = pickle.dumps(state)
    return response_blob(blob)  # sanctioned blob carrier


def apply(payload):
    op = decode_op(payload)  # CRC-verified decode
    return pickle.loads(op[1])
