# module: app.server.sneaky
"""CSP011 violating fixture, outside the pickle boundary.

Two findings: a raw pickle import, and an implicit-pickle channel
send on a connection-named receiver.
"""
import pickle


def side_channel(conn, state):
    conn.send(state)  # implicit pickle; the seam speaks framed bytes
