# module: pol.policies.clean
"""A cloaking policy confined to the engine's public API."""


class PolitePolicy:
    def __init__(self, engine):
        self.engine = engine
        self._users = {}  # own private state: allowed

    def register(self, uid, point):
        self.engine.set_entry(uid, point)
        self._users[uid] = point

    def _leaf_of(self, uid):  # own private helper: allowed
        return self._users[uid]

    def cloak(self, uid):
        kind = self.engine.__class__.__name__  # dunder introspection: allowed
        return self.engine.cloak_cell(self._leaf_of(uid), kind)
