# module: pol.policies.bad
"""A cloaking policy that pokes at engine internals directly."""


class SneakyPolicy:
    def __init__(self, engine):
        self.engine = engine
        self._users = {}  # a policy's own private state is fine

    def register(self, uid, point):
        self.engine._cells[uid] = point  # reach into engine state
        self._users[uid] = point

    def deregister(self, uid):
        del self.engine._cells[uid]
        del self._users[uid]

    def cloak(self, uid):
        self.engine._generation = 0  # mutate engine private outright
        return len(self.engine._cells)
