# module: svc.pool
"""CSP012 violating fixture: resources leak on exception paths.

Three findings: a socket that leaks when a later call raises, and
both ends of a pipe that leak the same way.
"""
import socket
from multiprocessing import Pipe


def fragile(addr):
    sock = socket.create_connection(addr)
    size = compute_size()  # raises -> sock leaks
    sock.sendall(b"x" * size)
    sock.close()


def pipe_leak():
    parent, child = Pipe()
    prepare()  # raises -> both ends leak
    parent.close()
    child.close()
