# module: svc.tidy_pool
"""CSP012 clean fixture: released on every path, or ownership moved."""
import socket
from multiprocessing import Pipe


def careful(addr):
    sock = socket.create_connection(addr)
    try:
        size = compute_size()
        sock.sendall(b"x" * size)
    finally:
        sock.close()  # releases on the exception paths too


def guarded():
    parent, child = Pipe()
    try:
        proc = launch()
        proc.start()
        register(parent)
    except BaseException:
        parent.close()
        child.close()
        raise
    child.close()
    return parent


def handed_off(addr):
    sock = socket.create_connection(addr)
    return wrap(sock)  # ownership moved to the wrapper
