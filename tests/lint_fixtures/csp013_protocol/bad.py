# module: proto.wire
"""CSP013 violating fixture: protocol and dispatch out of lockstep.

Three findings: OP_ORPHAN has no decoder branch (dead opcode),
OP_GAMMA decodes to an op nobody dispatches, and KIND_EXTRA is a
frame kind no dispatch module references.
"""

OP_ALPHA = 1
OP_BETA = 2
OP_GAMMA = 3
OP_ORPHAN = 9
KIND_A = 21
KIND_EXTRA = 22


def decode_op(payload):
    opcode = payload[0]
    if opcode == OP_ALPHA:
        return ("alpha", payload[1:])
    if opcode == OP_BETA:
        return ("beta", payload[1:])
    if opcode == OP_GAMMA:
        return ("gamma", payload[1:])
    raise ValueError("unknown opcode")
