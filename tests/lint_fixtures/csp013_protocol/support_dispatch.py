# module: proto.workers
"""Dispatch side shared by the CSP013 fixtures: handles alpha/beta."""
from proto.wire import KIND_A, decode_op


def route(payload):
    op = decode_op(payload)
    name = op[0]
    if name == "alpha":
        return ("alpha", KIND_A)
    if name == "beta":
        return ("beta",)
    return None
