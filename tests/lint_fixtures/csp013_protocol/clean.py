# module: proto.wire
"""CSP013 clean fixture: every opcode decoded, dispatched, routable."""

OP_ALPHA = 1
OP_BETA = 2
KIND_A = 21


def decode_op(payload):
    opcode = payload[0]
    if opcode == OP_ALPHA:
        return ("alpha", payload[1:])
    if opcode == OP_BETA:
        return ("beta", payload[1:])
    raise ValueError("unknown opcode")
