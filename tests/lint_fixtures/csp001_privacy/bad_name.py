# module: app.processor.bad_name
"""Violates CSP001: imports a non-allowlisted name from the anonymizer."""

from app.anonymizer import CloakedRegion, UserTable


def peek(table: UserTable) -> CloakedRegion:
    return CloakedRegion()
