# module: app.workloads
"""Fixture stand-in for the exact-location workload generators."""


def make_users():
    return [(0.1, 0.2), (0.3, 0.4)]  # exact locations
