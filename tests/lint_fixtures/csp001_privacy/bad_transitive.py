# module: app.processor.bad_transitive
"""Violates CSP001 transitively: the helper reaches app.workloads."""

from app.helpers import leak


def answer_query():
    return leak()
