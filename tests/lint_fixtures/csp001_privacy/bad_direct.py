# module: app.processor.bad_direct
"""Violates CSP001: a processor module importing exact-location code."""

from app.workloads import make_users


def answer_query():
    return make_users()[0]
