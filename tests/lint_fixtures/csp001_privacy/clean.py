# module: app.processor.clean
"""Passes CSP001: only allowlisted names cross the privacy boundary."""

from app.anonymizer import CloakedRegion, PrivacyProfile


def answer_query(cloak: CloakedRegion, profile: PrivacyProfile) -> int:
    return 0
