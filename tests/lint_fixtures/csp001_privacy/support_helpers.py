# module: app.helpers
"""A trusted helper that (carelessly) pulls in workload generators.

Importing this from an untrusted module is a *transitive* CSP001
violation even though this module itself lives in no zone.
"""

import app.workloads


def leak():
    return app.workloads.make_users()
