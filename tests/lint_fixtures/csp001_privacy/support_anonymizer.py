# module: app.anonymizer
"""Fixture stand-in for the trusted anonymizer package."""


class CloakedRegion:  # the sanctioned boundary-crossing value
    pass


class PrivacyProfile:
    pass


class UserTable:  # holds exact user locations — must not cross
    pass
