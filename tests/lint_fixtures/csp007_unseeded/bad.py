# module: sim.engine.unseeded
"""Violates CSP007: default_rng with no seed draws OS entropy."""

import numpy as np


def sample(n):
    rng = np.random.default_rng()
    return rng.random(n)
