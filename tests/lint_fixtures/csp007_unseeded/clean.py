# module: sim.engine.seeded
"""Passes CSP007: every generator is seeded."""

import numpy as np


def sample(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(n)
