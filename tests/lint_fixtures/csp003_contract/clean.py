# module: idx.clean
"""Passes CSP003: full surface, compatible signatures, documented ties."""

import abc


class SpatialIndex(abc.ABC):
    @abc.abstractmethod
    def _insert_impl(self, oid, rect):
        ...

    @abc.abstractmethod
    def _k_nearest_impl(self, point, k):
        ...


class GoodIndex(SpatialIndex):
    def _insert_impl(self, oid, rect, bulk=False):  # extra param has default
        pass

    def _k_nearest_impl(self, point, k):
        """Nearest first; equal distances break by insertion order."""
        return []
