# module: idx.bad
"""Violates CSP003 three ways: a subclass missing an abstract hook, an
incompatible override signature, and an undocumented tie-sensitive
search override."""

import abc


class SpatialIndex(abc.ABC):
    @abc.abstractmethod
    def _insert_impl(self, oid, rect):
        ...

    @abc.abstractmethod
    def _k_nearest_impl(self, point, k):
        ...

    def k_nearest_by_max_distance(self, point, k):
        # Ties break by insertion order.
        return []


class MissingHooks(SpatialIndex):
    def _insert_impl(self, oid, rect):
        pass
    # _k_nearest_impl missing entirely


class WrongSignature(SpatialIndex):
    def _insert_impl(self, oid, rect, extra):  # extra param without default
        pass

    def _k_nearest_impl(self, point, k):
        # Equal distances rank by insertion order.
        return []


class UndocumentedTieBreak(SpatialIndex):
    def _insert_impl(self, oid, rect):
        pass

    def _k_nearest_impl(self, point, k):
        return []  # no docstring/comment about the ordering contract
