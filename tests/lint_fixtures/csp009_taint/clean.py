# module: app.anonymizer.tidy
"""CSP009 clean fixture: coordinates are used, never leaked.

Building a cloaked region from coordinates declassifies (the region is
the sanctioned product); untainted values may reach any sink.
"""
import logging

import numpy as np

logger = logging.getLogger("tidy")


def cloak(point):
    # a non-Point constructor consumes the coordinates: declassified
    return Rect(point.x - 1.0, point.y - 1.0, point.x + 1.0, point.y + 1.0)


def complain(uid):
    raise KeyError(f"unknown user {uid!r}")  # uid is not a coordinate


def log_count(count):
    logger.info(f"cloaked {count} users")


def dump_histogram(counts):
    # persisting *aggregates* is fine: per-cell counts carry no exact
    # coordinates, so the array is untainted
    np.save("histogram.npy", counts)
