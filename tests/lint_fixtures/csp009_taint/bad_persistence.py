# module: app.anonymizer.dumper
"""CSP009 violating fixture: coordinate arrays persisted via numpy.

Two findings: a tainted array handed to ``np.save``, and a tainted
array flushed through the ``ndarray.tofile`` method (where the leaking
value is the *receiver*, not an argument).
"""
import numpy as np


def dump_positions(points):
    xs = np.array([p.x for p in points])
    np.save("positions.npy", xs)  # persistence sink (argument)


def flush_point(point):
    coords = np.asarray([point.x, point.y])
    coords.tofile("coords.bin")  # persistence sink (receiver)
