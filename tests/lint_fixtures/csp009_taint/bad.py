# module: app.anonymizer.leaky
"""CSP009 violating fixture: exact coordinates reach every sink kind.

Five findings: a log record, an exception message, a telemetry
attribute, a frame payload outside the codec, and a call-site flow
into a helper whose parameter is sunk into an exception message.
"""
import logging

logger = logging.getLogger("leaky")


def log_location(uid):
    p = Point(1.0, 2.0)
    logger.info(f"user {uid} at {p}")  # logging sink


def raise_with_point(point):
    raise ValueError(f"bad point {point}")  # exception sink


def count_position(p):
    stats.counter("last_x", p.x)  # telemetry sink


def frame_position(point):
    return pack(point.x, point.y)  # wire sink outside the codec


def helper_sink(label):
    # no finding here: ``label`` is not coordinate-tainted locally,
    # but the parameter flows into the exception message, so callers
    # passing tainted values are reported at their call site
    raise ValueError(f"label {label}")


def call_site_leak():
    p = Point(3.0, 4.0)
    helper_sink(str(p))  # call-site finding
