# module: svc.calm
"""CSP010 clean fixture: awaited primitives and benign method calls."""
import asyncio


async def tick():
    await asyncio.sleep(0.5)  # awaited: the fix, not the bug


async def shutdown(server):
    # ``close`` on an undeterminable receiver must not be blamed for
    # some unrelated class's blocking close()
    server.close()
    await server.wait_closed()
