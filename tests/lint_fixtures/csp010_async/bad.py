# module: svc.loop
"""CSP010 violating fixture: blocking calls on the event loop.

Two findings: a direct ``time.sleep`` in an async def, and a
transitive block through a sync helper that does a pipe read.
"""
import time


async def tick():
    time.sleep(0.5)  # direct blocking primitive


def _pump(conn):
    return conn.recv_bytes()  # blocking, but fine in a sync def


async def drain(conn):
    return _pump(conn)  # transitively blocking
