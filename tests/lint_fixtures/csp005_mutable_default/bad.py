# module: args.bad
"""Violates CSP005: shared mutable defaults."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def index(key, table={}, *, tags=set()):
    return table.get(key, tags)
