# module: args.clean
"""Passes CSP005: None defaults constructed per call."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def label(name, prefix="obj", count=0, flag=False):
    return f"{prefix}-{name}-{count}-{flag}"
