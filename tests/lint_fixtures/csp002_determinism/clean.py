# module: sim.engine.clean
"""Passes CSP002: seeded generator streams and perf_counter only."""

import time

from repro.utils.rng import ensure_rng


def sample(n, seed=0):
    rng = ensure_rng(seed)
    start = time.perf_counter()
    values = rng.random(n)
    return values, time.perf_counter() - start
