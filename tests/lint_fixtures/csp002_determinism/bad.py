# module: sim.engine.bad
"""Violates CSP002 four ways: stdlib random, wall clock, legacy numpy
global RNG, and a datetime read."""

import random
import time
from datetime import datetime

import numpy as np


def jitter():
    return random.random() + time.time()


def stamp():
    return datetime.now().isoformat()


def sample(n):
    np.random.seed(42)
    return np.random.rand(n)
