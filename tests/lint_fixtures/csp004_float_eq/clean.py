# module: geom.clean
"""Passes CSP004: epsilon bands, integer equality, and inf sentinels."""

import math

EPSILON = 1e-12


def on_unit_circle(x, y):
    return math.isclose(x * x + y * y, 1.0, abs_tol=EPSILON)


def is_unbounded(area):
    return area == float("inf")  # sentinel equality is exact by design


def count_matches(n):
    return n == 0
