# module: geom.bad
"""Violates CSP004: exact equality against computed floats."""


def on_unit_circle(x, y):
    return x * x + y * y == 1.0


def is_origin(x):
    return float(x) != 0.0
