# module: errs.bad
"""Violates CSP006: swallowed bare and broad handlers."""


def audit(check):
    try:
        return check()
    except:  # noqa: E722
        return None


def run(step):
    try:
        step()
    except Exception:
        pass
