# module: errs.clean
"""Passes CSP006: narrow handlers, and broad only with a re-raise."""


def audit(check):
    try:
        return check()
    except ValueError:
        return None


def run(step, cleanup):
    try:
        step()
    except Exception:
        cleanup()  # roll back partial state, then propagate
        raise
