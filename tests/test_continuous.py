"""Tests for the continuous query monitor.

The key correctness property: after any sequence of user movements and
target updates followed by ``flush()``, each continuous query's answer
equals a from-scratch evaluation — incrementality never changes
semantics, only work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.geometry import Point, Rect
from repro.processor import private_nn_over_public, private_range_over_public
from repro.server import Casper
from tests.conftest import UNIT, random_points


def build(rng, num_users=400, num_targets=200):
    casper = Casper(UNIT, pyramid_height=7, anonymizer="adaptive")
    casper.add_public_targets(
        {f"t{i}": p for i, p in enumerate(random_points(rng, num_targets))}
    )
    for i, p in enumerate(random_points(rng, num_users)):
        casper.register_user(i, p, PrivacyProfile(k=int(rng.integers(1, 25))))
    return casper, ContinuousQueryMonitor(casper)


class TestRegistration:
    def test_register_returns_initial_answer(self, rng):
        casper, monitor = build(rng)
        initial = monitor.register_nn("q1", 0)
        assert len(initial) > 0
        assert monitor.answer_of("q1") == frozenset(initial.oids())
        assert monitor.num_queries == 1

    def test_duplicate_query_id_rejected(self, rng):
        _casper, monitor = build(rng)
        monitor.register_nn("q1", 0)
        with pytest.raises(ValueError):
            monitor.register_nn("q1", 1)

    def test_register_range_validation(self, rng):
        _casper, monitor = build(rng)
        with pytest.raises(ValueError):
            monitor.register_range("q1", 0, radius=-0.1)

    def test_deregister(self, rng):
        _casper, monitor = build(rng)
        monitor.register_nn("q1", 0)
        monitor.deregister("q1")
        assert monitor.num_queries == 0
        with pytest.raises(KeyError):
            monitor.answer_of("q1")


class TestIncrementalConsistency:
    def test_flush_matches_fresh_evaluation_after_churn(self, rng):
        casper, monitor = build(rng)
        for qid in range(10):
            monitor.register_nn(f"nn-{qid}", qid, num_filters=4)
            monitor.register_range(f"rg-{qid}", qid, radius=0.05)
        # Churn: users move, targets move / appear / disappear.
        for step in range(30):
            roll = rng.random()
            if roll < 0.5:
                uid = int(rng.integers(10))
                monitor.on_user_moved(
                    uid, Point(float(rng.random()), float(rng.random()))
                )
            elif roll < 0.8:
                oid = f"t{int(rng.integers(200))}"
                if oid in casper.server.public_index:
                    monitor.on_target_update(
                        oid, Point(float(rng.random()), float(rng.random()))
                    )
            else:
                monitor.on_target_update(
                    f"new-{step}", Point(float(rng.random()), float(rng.random()))
                )
        monitor.flush()
        # Oracle: fresh evaluation of every query.
        for qid in range(10):
            cloak = casper.anonymizer.cloak(qid)
            fresh_nn = private_nn_over_public(
                casper.server.public_index, cloak.region, 4
            )
            assert monitor.answer_of(f"nn-{qid}") == frozenset(fresh_nn.oids())
            fresh_rg = private_range_over_public(
                casper.server.public_index, cloak.region, 0.05
            )
            assert monitor.answer_of(f"rg-{qid}") == frozenset(fresh_rg.oids())

    def test_target_entering_a_ext_triggers_change(self, rng):
        casper, monitor = build(rng)
        initial = monitor.register_nn("q", 0)
        a_ext = initial.search_region
        # Drop a new target dead-center in the search region.
        monitor.on_target_update("invader", a_ext.center)
        changes = monitor.flush()
        assert any(
            c.query_id == "q" and "invader" in c.added for c in changes
        )

    def test_far_target_does_not_dirty_query(self, rng):
        casper, monitor = build(rng, num_users=50, num_targets=50)
        initial = monitor.register_nn("q", 0)
        a_ext = initial.search_region
        # A point far outside A_EXT (if one exists in the unit square).
        for candidate in (Point(0.99, 0.99), Point(0.01, 0.99), Point(0.99, 0.01),
                          Point(0.01, 0.01)):
            if not a_ext.contains_point(candidate):
                monitor.on_target_update("far", candidate)
                assert monitor.flush() == []
                return
        pytest.skip("A_EXT covers the whole space at this scale")

    def test_removing_answer_member_triggers_change(self, rng):
        casper, monitor = build(rng)
        initial = monitor.register_nn("q", 0)
        victim = initial.oids()[0]
        monitor.on_target_update(victim, None)
        changes = monitor.flush()
        assert any(c.query_id == "q" and victim in c.removed for c in changes)
        assert victim not in casper.server.public_index

    def test_user_movement_updates_answer(self, rng):
        casper, monitor = build(rng)
        monitor.register_nn("q", 0)
        before = monitor.answer_of("q")
        monitor.on_user_moved(0, Point(0.95, 0.95))
        monitor.flush()
        after = monitor.answer_of("q")
        # Oracle check regardless of whether the answer changed.
        cloak = casper.anonymizer.cloak(0)
        fresh = private_nn_over_public(casper.server.public_index, cloak.region, 4)
        assert after == frozenset(fresh.oids())

    def test_unchanged_reevaluation_suppressed(self, rng):
        casper, monitor = build(rng)
        initial = monitor.register_nn("q", 0)
        # Move a target within A_EXT to ... exactly where it already is.
        oid = initial.oids()[0]
        pos = casper.server.public_index.rect_of(oid).center
        monitor.on_target_update(oid, pos)
        assert monitor.flush() == []  # dirty, re-evaluated, no delta

    def test_range_query_tracks_radius(self, rng):
        casper, monitor = build(rng)
        monitor.register_range("r", 0, radius=0.1)
        cloak = casper.anonymizer.cloak(0)
        fresh = private_range_over_public(
            casper.server.public_index, cloak.region, 0.1
        )
        assert monitor.answer_of("r") == frozenset(fresh.oids())


class TestBuddyQueries:
    def test_register_buddy_excludes_self(self, rng):
        _casper, monitor = build(rng)
        initial = monitor.register_buddy("b", 0)
        assert 0 not in initial.oids()
        assert len(initial) > 0

    def test_buddy_consistency_under_full_churn(self, rng):
        casper, monitor = build(rng, num_users=120, num_targets=60)
        for qid in range(6):
            monitor.register_buddy(f"b-{qid}", qid)
        for _step in range(25):
            uid = int(rng.integers(120))
            monitor.on_user_moved(
                uid, Point(float(rng.random()), float(rng.random()))
            )
        monitor.flush()
        for qid in range(6):
            cloak = casper.anonymizer.cloak(qid)
            fresh = casper.server.nn_private(cloak.region, 4, exclude=qid)
            assert monitor.answer_of(f"b-{qid}") == frozenset(fresh.oids())

    def test_buddy_reacts_to_other_users_movement(self, rng):
        casper, monitor = build(rng, num_users=80, num_targets=40)
        monitor.register_buddy("b", 0)
        # March a far-away user right next to user 0: their stored
        # region must enter the buddy query's A_EXT and flip the answer
        # set (or at least trigger a consistent re-evaluation).
        target_point = casper.anonymizer.location_of(0)
        monitor.on_user_moved(
            79, Point(target_point.x + 1e-4, target_point.y)
        )
        monitor.flush()
        cloak = casper.anonymizer.cloak(0)
        fresh = casper.server.nn_private(cloak.region, 4, exclude=0)
        assert monitor.answer_of("b") == frozenset(fresh.oids())
        assert 79 in monitor.answer_of("b")

    def test_mark_all_dirty_after_out_of_band_change(self, rng):
        casper, monitor = build(rng, num_users=80, num_targets=40)
        monitor.register_buddy("b", 0)
        # Out-of-band: a user leaves through the facade directly.
        victim = next(iter(monitor.answer_of("b")))
        casper.remove_user(victim)
        monitor.mark_all_dirty()
        monitor.flush()
        assert victim not in monitor.answer_of("b")
