"""Metamorphic properties of the privacy-aware query processor.

Instead of checking answers against an oracle, these tests check that
*transformations of the input* produce the predictable transformation
of the output — a complementary correctness net that catches
coordinate-handling bugs the oracle tests can miss:

* translation invariance — shifting the whole scene shifts nothing
  about which targets are candidates;
* uniform scaling invariance — likewise;
* locality — adding a target far outside ``A_EXT`` never changes the
  candidate set;
* monotonicity under duplication — duplicating an existing target can
  only add the duplicate, never remove anyone;
* query-area monotonicity — growing the cloaked area never loses a
  candidate that a contained area had... is *false* in general (filters
  change), so we assert the weaker true form: the exact NN of any user
  position remains included (inclusiveness is what survives).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.processor import private_nn_over_private, private_nn_over_public
from repro.spatial import BruteForceIndex
from tests.conftest import random_points, random_rects

AREA = Rect(0.4, 0.35, 0.6, 0.55)


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


class TestTranslationInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        dx=st.floats(-5, 5, allow_nan=False),
        dy=st.floats(-5, 5, allow_nan=False),
        nf=st.sampled_from([1, 2, 4]),
    )
    def test_candidates_unchanged_by_translation(self, dx, dy, nf):
        rng = np.random.default_rng(42)
        points = random_points(rng, 200)
        base = private_nn_over_public(point_index(points), AREA, nf)
        moved_points = [p.translated(dx, dy) for p in points]
        moved_area = Rect(
            AREA.x_min + dx, AREA.y_min + dy, AREA.x_max + dx, AREA.y_max + dy
        )
        moved = private_nn_over_public(point_index(moved_points), moved_area, nf)
        assert set(base.oids()) == set(moved.oids())

    def test_private_targets_translation(self, rng):
        rects = random_rects(rng, 150, max_side=0.06)
        idx = BruteForceIndex()
        for i, r in enumerate(rects):
            idx.insert(i, r)
        base = private_nn_over_private(idx, AREA, 4)
        dx, dy = 3.0, -2.0
        idx2 = BruteForceIndex()
        for i, r in enumerate(rects):
            idx2.insert(
                i, Rect(r.x_min + dx, r.y_min + dy, r.x_max + dx, r.y_max + dy)
            )
        moved_area = Rect(
            AREA.x_min + dx, AREA.y_min + dy, AREA.x_max + dx, AREA.y_max + dy
        )
        moved = private_nn_over_private(idx2, moved_area, 4)
        assert set(base.oids()) == set(moved.oids())


class TestScaleInvariance:
    @settings(max_examples=20, deadline=None)
    @given(factor=st.floats(0.1, 50, allow_nan=False), nf=st.sampled_from([1, 4]))
    def test_candidates_unchanged_by_uniform_scaling(self, factor, nf):
        rng = np.random.default_rng(7)
        points = random_points(rng, 150)
        base = private_nn_over_public(point_index(points), AREA, nf)
        scaled_points = [Point(p.x * factor, p.y * factor) for p in points]
        scaled_area = Rect(
            AREA.x_min * factor,
            AREA.y_min * factor,
            AREA.x_max * factor,
            AREA.y_max * factor,
        )
        scaled = private_nn_over_public(point_index(scaled_points), scaled_area, nf)
        assert set(base.oids()) == set(scaled.oids())


class TestLocality:
    def test_far_target_never_changes_answer(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        base = private_nn_over_public(idx, AREA, 4)
        far = base.search_region.expanded_uniform(1.0)
        idx.insert_point("far", Point(far.x_max + 1.0, far.y_max + 1.0))
        again = private_nn_over_public(idx, AREA, 4)
        assert set(again.oids()) == set(base.oids())

    def test_target_inside_area_always_candidate(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        idx.insert_point("inside", AREA.center)
        cl = private_nn_over_public(idx, AREA, 4)
        assert "inside" in cl.oids()


class TestDuplication:
    def test_duplicating_candidate_adds_only_duplicate(self, rng):
        points = random_points(rng, 150)
        idx = point_index(points)
        base = private_nn_over_public(idx, AREA, 4)
        victim = base.oids()[0]
        idx.insert_point("clone", points[victim])
        again = private_nn_over_public(idx, AREA, 4)
        assert set(base.oids()) | {"clone"} == set(again.oids())


class TestAreaGrowth:
    def test_inclusiveness_survives_any_containing_area(self, rng):
        """Growing the cloaked area changes filters and A_EXT in
        non-monotone ways; the invariant that survives is inclusiveness
        for positions of the *smaller* area."""
        points = random_points(rng, 300)
        idx = point_index(points)
        small = AREA
        big = small.expanded_uniform(0.1).clipped_to(Rect(0, 0, 1, 1))
        cl_big = private_nn_over_public(idx, big, 4)
        for _ in range(20):
            u = Point(
                float(rng.uniform(small.x_min, small.x_max)),
                float(rng.uniform(small.y_min, small.y_max)),
            )
            truth = min(
                range(len(points)), key=lambda i: points[i].squared_distance_to(u)
            )
            assert truth in cl_big.oids()

    def test_point_area_gives_smallest_list(self, rng):
        points = random_points(rng, 300)
        idx = point_index(points)
        exact = private_nn_over_public(idx, Rect.point(AREA.center), 4)
        cloaked = private_nn_over_public(idx, AREA, 4)
        assert len(exact) <= len(cloaked)
        assert len(exact) == 1
