"""Full-stack integration tests.

These drive the complete Casper deployment — moving objects on the road
network, continuous location updates through the anonymizer, queries of
all three types, the continuous monitor — and check the end-to-end
correctness and privacy properties at every step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.geometry import Point, Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.processor import private_nn_over_public
from repro.server import Casper
from repro.workloads import uniform_points

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def simulation():
    """A running city: 600 users on the road network, 300 stations."""
    network = synthetic_county_map(seed=100)
    generator = NetworkGenerator(network, 600, seed=101)
    rng = np.random.default_rng(102)
    casper = Casper(UNIT, pyramid_height=8, anonymizer="adaptive")
    casper.add_public_targets(uniform_points(300, UNIT, seed=103))
    profiles = {}
    for uid, point in generator.positions().items():
        profile = PrivacyProfile(
            k=int(rng.integers(1, 40)),
            a_min=float(rng.uniform(5e-5, 1e-4)),
        )
        profiles[uid] = profile
        casper.register_user(uid, point, profile)
    return casper, generator, profiles


class TestMovingCity(object):
    def test_three_ticks_of_full_operation(self, simulation):
        casper, generator, profiles = simulation
        rng = np.random.default_rng(7)
        for _tick in range(3):
            for update in generator.step(1.0):
                casper.update_location(update.uid, update.point)
            casper.anonymizer.check_invariants()
            # A handful of queries per tick, verified exactly.
            for uid in rng.choice(600, size=8, replace=False):
                uid = int(uid)
                result = casper.query_nearest_public(uid)
                user = casper.anonymizer.location_of(uid)
                # Exactness oracle.
                best = min(
                    casper.server.public_index.items(),
                    key=lambda item: item[1].min_distance_to_point(user),
                )
                assert casper.server.public_index.rect_of(
                    result.answer
                ).min_distance_to_point(user) == pytest.approx(
                    best[1].min_distance_to_point(user)
                )
                # Privacy oracle: the cloak satisfies the profile.
                assert result.cloak.achieved_k >= profiles[uid].k
                assert result.cloak.area >= profiles[uid].a_min - 1e-12
                assert result.cloak.region.contains_point(user)

    def test_private_regions_track_users(self, simulation):
        casper, generator, _profiles = simulation
        for uid, point in generator.positions().items():
            stored = casper.server.private_index.rect_of(uid)
            assert stored.contains_point(casper.anonymizer.location_of(uid))

    def test_admin_counts_remain_sound(self, simulation):
        casper, generator, _profiles = simulation
        positions = {
            uid: casper.anonymizer.location_of(uid)
            for uid in generator.positions()
        }
        for region in (
            Rect(0.1, 0.1, 0.6, 0.4),
            Rect(0.33, 0.4, 0.77, 0.9),
        ):
            count = casper.count_users_in(region)
            truth = sum(1 for p in positions.values() if region.contains_point(p))
            assert count.minimum <= truth <= count.maximum

    def test_buddy_queries_exclude_self_and_satisfy_profile(self, simulation):
        casper, _generator, profiles = simulation
        for uid in (3, 77, 411):
            result = casper.query_nearest_private(uid)
            assert uid not in result.candidates.oids()
            assert result.cloak.achieved_k >= profiles[uid].k


class TestContinuousIntegration:
    def test_monitor_stays_consistent_through_simulation(self):
        network = synthetic_county_map(seed=200)
        generator = NetworkGenerator(network, 150, seed=201)
        rng = np.random.default_rng(202)
        casper = Casper(UNIT, pyramid_height=7, anonymizer="adaptive")
        casper.add_public_targets(uniform_points(150, UNIT, seed=203))
        for uid, point in generator.positions().items():
            casper.register_user(
                uid, point, PrivacyProfile(k=int(rng.integers(1, 15)))
            )
        monitor = ContinuousQueryMonitor(casper)
        watched = list(range(12))
        for uid in watched:
            monitor.register_nn(f"q{uid}", uid)
        for _tick in range(4):
            for update in generator.step(1.0):
                monitor.on_user_moved(update.uid, update.point)
            monitor.flush()
            for uid in watched:
                cloak = casper.anonymizer.cloak(uid)
                fresh = private_nn_over_public(
                    casper.server.public_index, cloak.region, 4
                )
                assert monitor.answer_of(f"q{uid}") == frozenset(fresh.oids())

    def test_wire_roundtrip_of_live_answers(self):
        from repro.server.codec import decode_candidate_list, encode_candidate_list

        rng = np.random.default_rng(300)
        casper = Casper(UNIT, pyramid_height=7)
        casper.add_public_targets(uniform_points(200, UNIT, seed=301))
        for i in range(200):
            casper.register_user(
                i,
                Point(float(rng.random()), float(rng.random())),
                PrivacyProfile(k=int(rng.integers(1, 20))),
            )
        result = casper.query_nearest_public(0)
        payload = encode_candidate_list(result.candidates)
        decoded = decode_candidate_list(payload)
        user = casper.anonymizer.location_of(0)
        assert str(result.answer) == decoded.refine_nearest(user)

    def test_basic_and_adaptive_agree_end_to_end(self):
        """Both anonymizer variants must deliver exact answers on the
        same workload (the paper's accuracy-equivalence claim)."""
        rng = np.random.default_rng(400)
        points = [Point(float(x), float(y)) for x, y in rng.random((300, 2))]
        targets = uniform_points(150, UNIT, seed=401)
        answers = {}
        for kind in ("basic", "adaptive"):
            casper = Casper(UNIT, pyramid_height=7, anonymizer=kind)
            casper.add_public_targets(targets)
            for i, p in enumerate(points):
                casper.register_user(i, p, PrivacyProfile(k=10))
            answers[kind] = [
                targets[casper.query_nearest_public(uid).answer].as_tuple()
                for uid in range(0, 300, 17)
            ]
        # Exactness means both pipelines find targets at identical
        # distances (the target itself may differ only under exact ties).
        for (bx, by), (ax, ay) in zip(answers["basic"], answers["adaptive"]):
            assert (bx, by) == (ax, ay)
