"""Contract tests for ``k_nearest_by_max_distance`` across every index.

The pessimistic (furthest-corner) k-nearest search must agree with the
brute-force oracle — including insertion-order tie-breaking — because
``select_filters_private`` and ``_kth_distance_private`` are built on
top of it.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.spatial import (
    BruteForceIndex,
    GridIndex,
    KDTreeIndex,
    QuadTreeIndex,
    RTreeIndex,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

# Indexes that store arbitrary rectangles (the kd-tree is point-only
# and covered separately below).
FACTORIES = {
    "bruteforce": BruteForceIndex,
    "rtree": RTreeIndex,
    "quadtree": lambda: QuadTreeIndex(UNIT),
    "grid": lambda: GridIndex(UNIT),
}


def _oracle(entries: dict, point: Point, k: int) -> list[object]:
    order = {oid: i for i, oid in enumerate(entries)}
    scored = heapq.nsmallest(
        k,
        entries.items(),
        key=lambda item: (item[1].max_distance_to_point(point), order[item[0]]),
    )
    return [oid for oid, _rect in scored]


coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
rects = st.builds(
    lambda x, y, w, h: Rect(x * 0.9, y * 0.9, x * 0.9 + w * 0.1, y * 0.9 + h * 0.1),
    coord, coord, coord, coord,
)


@pytest.mark.parametrize("name", FACTORIES)
@settings(max_examples=30)
@given(
    rect_list=st.lists(rects, min_size=1, max_size=30),
    qx=coord,
    qy=coord,
    k=st.integers(min_value=1, max_value=8),
)
def test_property_matches_bruteforce_oracle(name, rect_list, qx, qy, k):
    index = FACTORIES[name]()
    entries = {}
    for oid, rect in enumerate(rect_list):
        index.insert(oid, rect)
        entries[oid] = rect
    query = Point(qx, qy)
    assert index.k_nearest_by_max_distance(query, k) == _oracle(entries, query, k)


@pytest.mark.parametrize("name", FACTORIES)
def test_coincident_regions_break_ties_by_insertion_order(name):
    index = FACTORIES[name]()
    rect = Rect(0.4, 0.4, 0.5, 0.5)
    for oid in (3, 1, 4, 0, 2):
        index.insert(oid, rect)
    assert index.k_nearest_by_max_distance(Point(0.45, 0.45), 3) == [3, 1, 4]


@pytest.mark.parametrize("name", FACTORIES)
def test_k_clamped_to_population(name):
    index = FACTORIES[name]()
    index.insert("a", Rect(0.1, 0.1, 0.2, 0.2))
    index.insert("b", Rect(0.7, 0.7, 0.8, 0.8))
    assert index.k_nearest_by_max_distance(Point(0.0, 0.0), 10) == ["a", "b"]


@pytest.mark.parametrize("name", FACTORIES)
def test_errors(name):
    index = FACTORIES[name]()
    with pytest.raises(EmptyDatasetError):
        index.k_nearest_by_max_distance(Point(0.5, 0.5), 1)
    index.insert("a", Rect(0.1, 0.1, 0.2, 0.2))
    with pytest.raises(ValueError):
        index.k_nearest_by_max_distance(Point(0.5, 0.5), 0)


@pytest.mark.parametrize("name", FACTORIES)
def test_max_distance_orders_differently_from_min(name):
    # A big region whose near edge is close but far corner is distant,
    # vs a small region slightly farther away but compact: min-distance
    # prefers the big one, max-distance the small one.
    index = FACTORIES[name]()
    index.insert("big", Rect(0.1, 0.0, 0.9, 0.8))
    index.insert("small", Rect(0.2, 0.0, 0.21, 0.01))
    query = Point(0.15, 0.0)
    assert index.k_nearest(query, 1) == ["big"]
    assert index.k_nearest_by_max_distance(query, 1) == ["small"]


@settings(max_examples=30)
@given(
    points=st.lists(st.tuples(coord, coord), min_size=1, max_size=30),
    qx=coord,
    qy=coord,
    k=st.integers(min_value=1, max_value=8),
)
def test_property_kdtree_points(points, qx, qy, k):
    # For point entries max-distance equals min-distance, so the
    # pessimistic search must coincide with plain k_nearest (and the
    # oracle).
    index = KDTreeIndex()
    entries = {}
    for oid, (x, y) in enumerate(points):
        index.insert_point(oid, Point(x, y))
        entries[oid] = Rect.point(Point(x, y))
    query = Point(qx, qy)
    expected = _oracle(entries, query, k)
    assert index.k_nearest_by_max_distance(query, k) == expected
    assert index.k_nearest(query, min(k, len(entries))) == expected


def test_kdtree_coincident_points_break_ties_by_insertion_order():
    index = KDTreeIndex()
    for oid in (3, 1, 4, 0, 2):
        index.insert_point(oid, Point(0.45, 0.45))
    assert index.k_nearest_by_max_distance(Point(0.1, 0.1), 3) == [3, 1, 4]


def test_rtree_bulk_load_keeps_insertion_order_ties():
    index = RTreeIndex()
    rect = Rect(0.3, 0.3, 0.35, 0.35)
    index.bulk_load({oid: rect for oid in ("x", "y", "z")})
    assert index.k_nearest_by_max_distance(Point(0.0, 0.0), 2) == ["x", "y"]
    assert index.k_nearest(Point(0.0, 0.0), 2) == ["x", "y"]
