"""Sharded runtime state management: fleet snapshots, per-shard crash
recovery, and the ``Casper`` routing seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.errors import UnknownUserError
from repro.geometry import Point
from repro.server import Casper
from repro.sharding import (
    ShardedAdaptiveAnonymizer,
    ShardedBasicAnonymizer,
    make_sharded,
)
from tests.conftest import UNIT

HEIGHT = 5
KINDS = ["basic", "adaptive"]


def _populated_fleet(kind: str, num_shards: int = 4, users: int = 40):
    fleet = make_sharded(UNIT, height=HEIGHT, num_shards=num_shards, kind=kind)
    rng = np.random.default_rng(3)
    for i in range(users):
        fleet.register(
            f"u{i:02d}",
            Point(float(rng.random()), float(rng.random())),
            PrivacyProfile(k=2 + i % 4),
        )
    return fleet


def _cloak_fingerprints(fleet) -> list[tuple]:
    out = []
    for i in range(0, 40, 5):
        region = fleet.cloak(f"u{i:02d}")
        out.append((region.region.as_tuple(), region.achieved_k, region.cells))
    return out


class TestFleetSnapshot:
    @pytest.mark.parametrize("kind", KINDS)
    def test_snapshot_restore_round_trip(self, kind) -> None:
        fleet = _populated_fleet(kind)
        before = _cloak_fingerprints(fleet)
        state = fleet.snapshot()
        rng = np.random.default_rng(9)
        for i in range(40):
            fleet.update(
                f"u{i:02d}", Point(float(rng.random()), float(rng.random()))
            )
        fleet.deregister("u07")
        assert _cloak_fingerprints(fleet) != before
        fleet.restore(state)
        fleet.check_invariants()
        assert _cloak_fingerprints(fleet) == before

    @pytest.mark.parametrize("kind", KINDS)
    def test_one_snapshot_serves_many_restores(self, kind) -> None:
        fleet = _populated_fleet(kind)
        before = _cloak_fingerprints(fleet)
        state = fleet.snapshot()
        for _crash in range(3):
            for i in range(10):
                fleet.update(f"u{i:02d}", Point(0.01 * i, 0.02 * i))
            fleet.restore(state)
            fleet.check_invariants()
            assert _cloak_fingerprints(fleet) == before

    @pytest.mark.parametrize("kind", KINDS)
    def test_restore_rejects_foreign_state(self, kind) -> None:
        fleet = _populated_fleet(kind)
        with pytest.raises(TypeError):
            fleet.restore(object())
        smaller = _populated_fleet(kind, num_shards=2, users=4)
        with pytest.raises(ValueError, match="shard count"):
            fleet.restore(smaller.snapshot())

    @pytest.mark.parametrize("kind", KINDS)
    def test_restore_shard_rejects_foreign_state(self, kind) -> None:
        fleet = _populated_fleet(kind)
        with pytest.raises(TypeError):
            fleet.restore_shard(0, object())


class TestShardCrashRecovery:
    """A single crashed shard heals from its snapshot while survivors
    keep their live state — the reconciliation contract the resilience
    runtime's ``shard_crash`` fault relies on."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_purges_exactly_the_post_snapshot_registrants(self, kind) -> None:
        fleet = _populated_fleet(kind)
        victim = fleet.shard_of_user("u00")
        states = [fleet.snapshot_shard(s) for s in range(fleet.num_shards)]

        all_uids = [f"u{i:02d}" for i in range(40)]
        victim_point = fleet.location_of(
            next(u for u in all_uids if fleet.shard_of_user(u) == victim)
        )
        other = next(
            fleet.shard_of_user(u)
            for u in all_uids
            if fleet.shard_of_user(u) != victim
        )
        dest = fleet.location_of(
            next(u for u in all_uids if fleet.shard_of_user(u) == other)
        )

        # Post-snapshot history the restore must reconcile: users who
        # escaped the victim, and users born inside it.
        movers = [u for u in all_uids if fleet.shard_of_user(u) == victim][:3]
        for uid in movers:
            fleet.update(uid, dest)
        newcomers = [f"n{j}" for j in range(5)]
        for uid in newcomers:
            fleet.register(uid, victim_point, PrivacyProfile(k=2))
            assert fleet.shard_of_user(uid) == victim

        purged = fleet.restore_shard(victim, states[victim])
        assert sorted(map(str, purged)) == sorted(newcomers)
        fleet.check_invariants()
        for uid in movers:  # the destination shard's live record wins
            assert uid in fleet
            assert fleet.shard_of_user(uid) == other
        for uid in newcomers:  # lost with the crash, healed below
            assert uid not in fleet

        for uid in purged:
            fleet.register(uid, victim_point, PrivacyProfile(k=2))
        fleet.check_invariants()
        assert fleet.num_users == 45
        region = fleet.cloak(newcomers[0])
        assert region.achieved_k >= 2

    @pytest.mark.parametrize("kind", KINDS)
    def test_survivor_shards_are_untouched(self, kind) -> None:
        fleet = _populated_fleet(kind)
        all_uids = [f"u{i:02d}" for i in range(40)]
        victim = fleet.shard_of_user("u00")
        survivors = [u for u in all_uids if fleet.shard_of_user(u) != victim]
        before = {
            u: (fleet.location_of(u), fleet.shard_of_user(u)) for u in survivors
        }
        state = fleet.snapshot_shard(victim)
        fleet.restore_shard(victim, state)
        fleet.check_invariants()
        assert {
            u: (fleet.location_of(u), fleet.shard_of_user(u)) for u in survivors
        } == before

    @pytest.mark.parametrize("kind", KINDS)
    def test_single_shard_fleet_restore_shard_is_full_restore(self, kind) -> None:
        fleet = _populated_fleet(kind, num_shards=1, users=10)
        state = fleet.snapshot_shard(0)
        fleet.register("late", Point(0.5, 0.5), PrivacyProfile(k=2))
        purged = fleet.restore_shard(0, state)
        assert list(map(str, purged)) == ["late"]
        fleet.check_invariants()
        assert fleet.num_users == 10


class TestCasperSeam:
    def test_shards_parameter_builds_a_sharded_fleet(self) -> None:
        for kind, cls in (
            ("basic", ShardedBasicAnonymizer),
            ("adaptive", ShardedAdaptiveAnonymizer),
        ):
            casper = Casper(UNIT, pyramid_height=HEIGHT, anonymizer=kind, shards=4)
            assert isinstance(casper.anonymizer, cls)
            assert casper.num_shards == 4

    def test_default_is_unsharded(self) -> None:
        casper = Casper(UNIT, pyramid_height=HEIGHT)
        assert casper.num_shards == 1

    def test_shard_of_routes_like_the_anonymizer(self) -> None:
        casper = Casper(UNIT, pyramid_height=HEIGHT, anonymizer="adaptive", shards=4)
        rng = np.random.default_rng(5)
        for i in range(20):
            casper.register_user(
                i,
                Point(float(rng.random()), float(rng.random())),
                PrivacyProfile(k=3),
            )
        occupancy = [0, 0, 0, 0]
        for i in range(20):
            shard = casper.shard_of(i)
            assert shard == casper.anonymizer.shard_of_user(i)
            occupancy[shard] += 1
        assert occupancy == casper.anonymizer.shard_occupancy()

    def test_shard_of_on_an_unsharded_deployment(self) -> None:
        casper = Casper(UNIT, pyramid_height=HEIGHT)
        casper.register_user("a", Point(0.5, 0.5), PrivacyProfile(k=1))
        assert casper.shard_of("a") == 0
        with pytest.raises(UnknownUserError):
            casper.shard_of("ghost")

    def test_instance_and_shards_argument_must_agree(self) -> None:
        fleet = make_sharded(UNIT, height=HEIGHT, num_shards=4, kind="basic")
        assert Casper(UNIT, anonymizer=fleet, shards=4).num_shards == 4
        with pytest.raises(ValueError, match="shards"):
            Casper(UNIT, anonymizer=fleet, shards=2)

    def test_full_query_stack_runs_sharded(self) -> None:
        casper = Casper(UNIT, pyramid_height=6, anonymizer="adaptive", shards=4)
        rng = np.random.default_rng(11)
        casper.add_public_targets(
            {
                f"t{i}": Point(float(x), float(y))
                for i, (x, y) in enumerate(rng.random((30, 2)))
            }
        )
        for i in range(25):
            casper.register_user(
                i,
                Point(float(rng.random()), float(rng.random())),
                PrivacyProfile(k=3),
            )
        nn = casper.query_nearest_public(0)
        assert nn.answer is not None
        batch = casper.query_batch(
            [(1, "nn_public"), (2, "range_public", 0.2), (1, "nn_public")]
        )
        assert len(batch) == 3
        casper.anonymizer.check_invariants()
