"""Minimality tests (Theorems 2 and 4).

The theorems state that given the chosen filters, ``A_EXT`` is the
smallest axis-aligned search region guaranteeing inclusiveness: each
side's expansion equals ``max_d = max(d_i, d_j, d_m)``, and any smaller
expansion admits an adversarial target placement that breaks Theorem 1.
We verify both the analytic property (the expansion exactly equals the
worst-case distance bound along each edge) and the adversarial
construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect, Segment, bisector_intersection
from repro.processor import (
    compute_extension_public,
    private_nn_over_public,
    select_filters_public,
)
from repro.spatial import BruteForceIndex
from tests.conftest import random_points


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


class TestExpansionTightness:
    def test_expansion_equals_worst_case_along_edge(self, rng):
        """For each edge, max over sampled user positions of the distance
        to their nearest filter equals the computed ``max_d`` (within
        sampling error) — the expansion is not padded."""
        points = random_points(rng, 200)
        idx = point_index(points)
        area = Rect(0.4, 0.35, 0.6, 0.55)
        filters = select_filters_public(idx, area, 4)
        _a_ext, extensions = compute_extension_public(idx, area, filters)
        for edge, ext in zip(area.edges(), extensions):
            ti = idx.rect_of(filters.oid_for(edge.vi)).center
            tj = idx.rect_of(filters.oid_for(edge.vj)).center
            seg = Segment(edge.vi, edge.vj)
            worst = 0.0
            for t in np.linspace(0, 1, 200):
                p = seg.point_at(float(t))
                worst = max(worst, min(p.distance_to(ti), p.distance_to(tj)))
            assert worst <= ext.max_d + 1e-9
            # Tightness: the worst case is attained at v_i, v_j or m_ij.
            assert worst >= ext.max_d - 5e-3

    def test_shrinking_any_side_admits_a_miss(self, rng):
        """Theorem 2's adversarial argument: place a new target just
        outside the shrunken region but strictly closer to some user
        position than their filter — the shrunken answer loses it."""
        points = random_points(rng, 150)
        area = Rect(0.4, 0.4, 0.6, 0.6)
        idx = point_index(points)
        filters = select_filters_public(idx, area, 4)
        a_ext, extensions = compute_extension_public(idx, area, filters)
        shrink = 1e-4
        for edge, ext in zip(area.edges(), extensions):
            if ext.max_d <= shrink:
                continue
            # Find the witness point on the edge whose distance bound is
            # max_d (v_i, v_j or m_ij).
            ti = idx.rect_of(filters.oid_for(edge.vi)).center
            tj = idx.rect_of(filters.oid_for(edge.vj)).center
            candidates = [(edge.vi, ext.d_i), (edge.vj, ext.d_j)]
            if ext.middle_point is not None:
                candidates.append((ext.middle_point, ext.d_m))
            witness, bound = max(candidates, key=lambda c: c[1])
            assert bound == pytest.approx(ext.max_d)
            # The adversarial target sits along the outward normal of
            # this edge at distance just under the bound.
            dx, dy = {
                "top": (0.0, 1.0),
                "bottom": (0.0, -1.0),
                "left": (-1.0, 0.0),
                "right": (1.0, 0.0),
            }[ext.direction]
            adversary = Point(
                witness.x + dx * (bound - shrink / 2),
                witness.y + dy * (bound - shrink / 2),
            )
            # It would be the witness's new true NN...
            assert adversary.distance_to(witness) < min(
                witness.distance_to(ti), witness.distance_to(tj)
            )
            # ...it lies inside A_EXT (inclusiveness keeps it)...
            assert a_ext.contains_point(adversary)
            # ...but outside the region shrunk on this side.
            shrunk = {
                "top": a_ext.expanded(top=-shrink),
                "bottom": a_ext.expanded(bottom=-shrink),
                "left": a_ext.expanded(left=-shrink),
                "right": a_ext.expanded(right=-shrink),
            }[ext.direction]
            assert not shrunk.contains_point(adversary)

    def test_adding_adversarial_target_keeps_inclusiveness(self, rng):
        """End-to-end: drop a target just inside each A_EXT boundary,
        re-run the query, and confirm it appears in the candidates."""
        points = random_points(rng, 200)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        idx = point_index(points)
        cl = private_nn_over_public(idx, area, num_filters=4)
        a_ext = cl.search_region
        eps = 1e-6
        probes = [
            Point(a_ext.x_min + eps, area.center.y),
            Point(a_ext.x_max - eps, area.center.y),
            Point(area.center.x, a_ext.y_min + eps),
            Point(area.center.x, a_ext.y_max - eps),
        ]
        all_points = list(points)
        for probe in probes:
            oid = len(all_points)
            idx.insert_point(oid, probe)
            all_points.append(probe)
        cl2 = private_nn_over_public(idx, area, num_filters=4)
        for oid in range(len(points), len(all_points)):
            assert oid in cl2.oids()


class TestSearchRegionMonotonicity:
    def test_more_filters_never_enlarge_region(self, rng):
        """With more filters the per-vertex distances can only shrink, so
        A_EXT(4) is contained in A_EXT(1) whenever filters coincide on
        structure; we assert area monotonicity on average."""
        points = random_points(rng, 500)
        idx = point_index(points)
        areas = {1: 0.0, 2: 0.0, 4: 0.0}
        for _ in range(30):
            w, h = rng.uniform(0.05, 0.15, 2)
            x = float(rng.uniform(0, 1 - w))
            y = float(rng.uniform(0, 1 - h))
            area = Rect(x, y, x + float(w), y + float(h))
            for nf in (1, 2, 4):
                cl = private_nn_over_public(idx, area, num_filters=nf)
                areas[nf] += cl.search_region.area
        assert areas[4] < areas[1]

    def test_search_region_contains_query_area(self, rng):
        points = random_points(rng, 100)
        idx = point_index(points)
        area = Rect(0.2, 0.7, 0.35, 0.8)
        for nf in (1, 2, 4):
            cl = private_nn_over_public(idx, area, num_filters=nf)
            assert cl.search_region.contains_rect(area)
