"""Tests for Algorithm 1 (bottom-up cloaking) and CloakedRegion."""

from __future__ import annotations

import pytest

from repro.anonymizer import CellGrid, CellId, CloakedRegion, PrivacyProfile
from repro.anonymizer.cloak import bottom_up_cloak
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Rect

UNIT = Rect(0, 0, 1, 1)


def counts_from(mapping: dict[CellId, int]):
    """A count function backed by a dict (0 for absent cells)."""
    return lambda cell: mapping.get(cell, 0)


def complete_counts(grid: CellGrid, leaf_counts: dict[tuple[int, int], int]):
    """Aggregate lowest-level counts into a full pyramid count function."""
    mapping: dict[CellId, int] = {}
    for (ix, iy), n in leaf_counts.items():
        cell = CellId(grid.height, ix, iy)
        for ancestor in grid.path_to_root(cell):
            mapping[ancestor] = mapping.get(ancestor, 0) + n
    return counts_from(mapping)


class TestBottomUpCloak:
    def test_cell_satisfies_immediately(self):
        grid = CellGrid(UNIT, 2)
        count = complete_counts(grid, {(0, 0): 10})
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(2, 0, 0))
        assert region.cells == (CellId(2, 0, 0),)
        assert region.achieved_k == 10
        assert region.region == grid.cell_rect(CellId(2, 0, 0))

    def test_area_requirement_forces_bigger_region(self):
        grid = CellGrid(UNIT, 2)
        count = complete_counts(grid, {(0, 0): 10})
        # k satisfied at the leaf but A_min demands at least half the
        # parent cell: the pair combination is used.
        a_min = 1.5 * grid.cell_area(2)
        region = bottom_up_cloak(
            grid, count, PrivacyProfile(k=5, a_min=a_min), CellId(2, 0, 0)
        )
        assert len(region.cells) == 2
        assert region.area == pytest.approx(2 * grid.cell_area(2))

    def test_neighbor_combination_prefers_closer_to_k(self):
        grid = CellGrid(UNIT, 1)
        # Start cell (0,0) has 2 users; horizontal neighbour (1,0) has
        # 5; vertical neighbour (0,1) has 3. k=5: both combos satisfy
        # (7 and 5); vertical (5) is closer to k.
        count = counts_from(
            {
                CellId(1, 0, 0): 2,
                CellId(1, 1, 0): 5,
                CellId(1, 0, 1): 3,
                CellId(0, 0, 0): 11,
            }
        )
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(1, 0, 0))
        assert set(region.cells) == {CellId(1, 0, 0), CellId(1, 0, 1)}
        assert region.achieved_k == 5

    def test_neighbor_combination_horizontal_when_vertical_insufficient(self):
        grid = CellGrid(UNIT, 1)
        count = counts_from(
            {
                CellId(1, 0, 0): 2,
                CellId(1, 1, 0): 4,
                CellId(1, 0, 1): 1,
                CellId(0, 0, 0): 8,
            }
        )
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(1, 0, 0))
        assert set(region.cells) == {CellId(1, 0, 0), CellId(1, 1, 0)}

    def test_ties_choose_horizontal(self):
        # Lines 9-10: N_H >= k and N_V >= k and N_H <= N_V -> horizontal.
        grid = CellGrid(UNIT, 1)
        count = counts_from(
            {
                CellId(1, 0, 0): 2,
                CellId(1, 1, 0): 3,
                CellId(1, 0, 1): 3,
                CellId(0, 0, 0): 9,
            }
        )
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(1, 0, 0))
        assert set(region.cells) == {CellId(1, 0, 0), CellId(1, 1, 0)}

    def test_recursion_to_parent(self):
        grid = CellGrid(UNIT, 2)
        # Nobody near the user at level 2; population concentrated in a
        # far quadrant, so only the root satisfies k=5.
        count = complete_counts(grid, {(0, 0): 1, (3, 3): 10})
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(2, 0, 0))
        assert region.cells == (CellId(0, 0, 0),)
        assert region.region == UNIT

    def test_pair_region_is_rectangle_half_parent(self):
        grid = CellGrid(UNIT, 3)
        count = complete_counts(grid, {(0, 0): 1, (1, 0): 9})
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(3, 0, 0))
        assert region.area == pytest.approx(2 * grid.cell_area(3))
        assert region.region.width == pytest.approx(2 * region.region.height)

    def test_unsatisfiable_k_raises(self):
        grid = CellGrid(UNIT, 1)
        count = counts_from({CellId(0, 0, 0): 3, CellId(1, 0, 0): 3})
        with pytest.raises(ProfileUnsatisfiableError):
            bottom_up_cloak(grid, count, PrivacyProfile(k=10), CellId(1, 0, 0))

    def test_unsatisfiable_area_raises(self):
        grid = CellGrid(UNIT, 1)
        count = counts_from({CellId(0, 0, 0): 3, CellId(1, 0, 0): 3})
        with pytest.raises(ProfileUnsatisfiableError):
            bottom_up_cloak(
                grid, count, PrivacyProfile(k=1, a_min=2.0), CellId(1, 0, 0)
            )

    def test_start_at_root(self):
        grid = CellGrid(UNIT, 0)
        count = counts_from({CellId(0, 0, 0): 7})
        region = bottom_up_cloak(grid, count, PrivacyProfile(k=5), CellId(0, 0, 0))
        assert region.region == UNIT


class TestCloakedRegion:
    def test_accuracy_metrics(self):
        region = CloakedRegion(Rect(0, 0, 0.5, 0.5), achieved_k=20, cells=())
        profile = PrivacyProfile(k=10, a_min=0.05)
        assert region.accuracy_k(profile) == pytest.approx(2.0)
        assert region.accuracy_area(profile) == pytest.approx(0.25 / 0.05)

    def test_accuracy_area_infinite_when_no_requirement(self):
        region = CloakedRegion(Rect(0, 0, 0.5, 0.5), achieved_k=20, cells=())
        assert region.accuracy_area(PrivacyProfile(k=10)) == float("inf")

    def test_level(self):
        region = CloakedRegion(UNIT, 1, (CellId(3, 0, 0),))
        assert region.level == 3
        assert CloakedRegion(UNIT, 1, ()).level == -1
