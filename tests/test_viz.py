"""Tests for the SVG visualization module."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.anonymizer import AdaptiveAnonymizer, PrivacyProfile
from repro.geometry import Point, Rect
from repro.mobility import synthetic_county_map
from repro.processor import private_nn_over_public
from repro.spatial import RTreeIndex
from repro.viz import SvgCanvas, draw_deployment, draw_pyramid_cut, draw_query_scene
from tests.conftest import UNIT, random_points

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgCanvas:
    def test_validation(self):
        with pytest.raises(ValueError):
            SvgCanvas(UNIT, size=4)
        with pytest.raises(ValueError):
            SvgCanvas(Rect(0, 0, 0, 1))
        canvas = SvgCanvas(UNIT)
        with pytest.raises(ValueError):
            canvas.add_grid(0)

    def test_empty_canvas_is_valid_svg(self):
        root = parse(SvgCanvas(UNIT).render())
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "640"

    def test_aspect_ratio_preserved(self):
        canvas = SvgCanvas(Rect(0, 0, 2, 1), size=600)
        assert canvas.width_px == 600
        assert canvas.height_px == 300

    def test_y_axis_flipped(self):
        """World 'up' must render toward smaller pixel y."""
        canvas = SvgCanvas(UNIT, size=100)
        canvas.add_point(Point(0.5, 0.9))  # high in the world
        canvas.add_point(Point(0.5, 0.1))  # low in the world
        root = parse(canvas.render())
        circles = root.findall(f"{SVG_NS}circle")
        assert float(circles[0].get("cy")) < float(circles[1].get("cy"))

    def test_elements_counted(self, rng):
        canvas = SvgCanvas(UNIT)
        canvas.add_points(random_points(rng, 25))
        canvas.add_rect(Rect(0.1, 0.1, 0.5, 0.5))
        canvas.add_line(Point(0, 0), Point(1, 1))
        canvas.add_label(Point(0.5, 0.5), "hello <world>")
        root = parse(canvas.render())
        assert len(root.findall(f"{SVG_NS}circle")) == 25
        assert len(root.findall(f"{SVG_NS}rect")) == 2  # background + ours
        assert len(root.findall(f"{SVG_NS}line")) == 1
        text = root.find(f"{SVG_NS}text")
        assert text.text == "hello <world>"  # escaped on the way in

    def test_grid_lines(self):
        canvas = SvgCanvas(UNIT)
        canvas.add_grid(4)
        root = parse(canvas.render())
        assert len(root.findall(f"{SVG_NS}line")) == 6  # 3 vertical + 3 horizontal

    def test_road_network_layer(self):
        network = synthetic_county_map(seed=0, grid_size=4)
        canvas = SvgCanvas(UNIT)
        canvas.add_road_network(network)
        root = parse(canvas.render())
        assert len(root.findall(f"{SVG_NS}line")) == network.num_edges

    def test_save(self, tmp_path):
        canvas = SvgCanvas(UNIT)
        canvas.add_point(Point(0.5, 0.5))
        path = tmp_path / "scene.svg"
        canvas.save(path)
        parse(path.read_text())


class TestScenes:
    def test_query_scene(self, rng):
        points = random_points(rng, 150)
        targets = {f"t{i}": p for i, p in enumerate(points)}
        idx = RTreeIndex()
        idx.bulk_load({k: Rect.point(p) for k, p in targets.items()})
        area = Rect(0.4, 0.4, 0.55, 0.5)
        cl = private_nn_over_public(idx, area, 4)
        canvas = draw_query_scene(
            UNIT, area, cl, all_targets=targets, user=Point(0.45, 0.45)
        )
        root = parse(canvas.render())
        circles = root.findall(f"{SVG_NS}circle")
        # All targets + candidates + the user marker.
        assert len(circles) == len(targets) + len(cl) + 1

    def test_deployment_scene(self, rng):
        network = synthetic_county_map(seed=1, grid_size=5)
        users = {i: p for i, p in enumerate(random_points(rng, 40))}
        canvas = draw_deployment(UNIT, network, users)
        root = parse(canvas.render())
        assert len(root.findall(f"{SVG_NS}circle")) == 40

    def test_pyramid_cut_scene(self, rng):
        anonymizer = AdaptiveAnonymizer(UNIT, height=6)
        for i, p in enumerate(random_points(rng, 200)):
            anonymizer.register(i, p, PrivacyProfile(k=3))
        canvas = draw_pyramid_cut(anonymizer)
        root = parse(canvas.render())
        leaves = sum(
            1 for entry in anonymizer._cells.values() if entry.is_leaf
        )
        # Background + bounds + one rect per maintained leaf.
        assert len(root.findall(f"{SVG_NS}rect")) == leaves + 2
