"""Instrumentation-equivalence tests.

The observability layer must be a pure *observer*: enabling it may not
change a single bit of any query answer, cloaked region, candidate
list, or benchmark-gated engine statistic.  Every scenario here runs
twice — telemetry off, then on — and the full result fingerprints are
compared for exact equality (floats and all), across both anonymizers
and all four spatial index implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import BasicAnonymizer, PrivacyProfile
from repro.geometry import Rect
from repro.observability import enabled
from repro.processor import (
    BatchQueryEngine,
    BatchRequest,
    private_knn_over_public,
    private_nn_over_public,
    private_range_over_public,
)
from repro.server import Casper, LocationServer
from repro.spatial import GridIndex, KDTreeIndex, QuadTreeIndex, RTreeIndex
from tests.conftest import UNIT, random_points, random_rects

RECT_INDEX_FACTORIES = {
    "rtree": lambda: RTreeIndex(max_entries=8),
    "grid": lambda: GridIndex(UNIT, resolution=16),
    "quadtree": lambda: QuadTreeIndex(UNIT, leaf_capacity=4),
}


def cloak_fingerprint(region) -> tuple:
    return (region.region.as_tuple(), region.achieved_k, region.cells)


def result_fingerprint(result) -> tuple:
    """Everything deterministic about one PrivateQueryResult (the wall
    -clock timing decomposition is excluded by construction)."""
    return (
        cloak_fingerprint(result.cloak),
        tuple(result.candidates.items),
        result.candidates.num_filters,
        result.answer,
    )


def run_casper_scenario(anonymizer_kind: str, index_kind: str) -> tuple:
    """Full-stack run; returns an exact fingerprint of every output."""
    rng = np.random.default_rng(17)
    casper = Casper(
        UNIT,
        pyramid_height=6,
        anonymizer=anonymizer_kind,
        server=LocationServer(RECT_INDEX_FACTORIES[index_kind]),
    )
    casper.add_public_targets(
        {f"station-{i}": p for i, p in enumerate(random_points(rng, 100))}
    )
    for uid, point in enumerate(random_points(rng, 120)):
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(2, 10)))
        )
    fingerprints = []
    for uid in range(5):
        fingerprints.append(result_fingerprint(casper.query_nearest_public(uid)))
        fingerprints.append(
            result_fingerprint(casper.query_nearest_private(uid))
        )
        fingerprints.append(
            result_fingerprint(casper.query_range_public(uid, radius=0.15))
        )
    for result in casper.query_batch(
        [(0, "nn_public"), (1, "knn_public", 3), (2, "range_public", 0.1),
         (0, "nn_public")]
    ):
        fingerprints.append(result_fingerprint(result))
    # The BENCH-gated engine statistics ride along in the fingerprint.
    fingerprints.append(
        (
            casper.anonymizer.cloak_cache.hit_rate,
            casper.server.batch_engine.dedup_rate,
            casper.anonymizer.stats.cloak_requests,
        )
    )
    return tuple(fingerprints)


@pytest.mark.parametrize("anonymizer_kind", ["basic", "adaptive"])
@pytest.mark.parametrize("index_kind", sorted(RECT_INDEX_FACTORIES))
def test_full_stack_identical_with_and_without_telemetry(
    anonymizer_kind, index_kind
):
    plain = run_casper_scenario(anonymizer_kind, index_kind)
    with enabled() as session:
        instrumented = run_casper_scenario(anonymizer_kind, index_kind)
    assert instrumented == plain
    assert not session.is_empty  # the run really was instrumented


def run_processor_scenario(index_factory) -> tuple:
    """Processor-level equivalence over a *point* index — this is how
    the kd-tree (points only, so never a private-region store) joins
    the all-four-indexes matrix."""
    rng = np.random.default_rng(23)
    index = index_factory()
    index.bulk_load(
        {oid: Rect.point(p) for oid, p in enumerate(random_points(rng, 300))}
    )
    out = []
    for area in random_rects(rng, 10, max_side=0.2):
        out.append(tuple(private_nn_over_public(index, area).items))
        out.append(tuple(private_knn_over_public(index, area, k=4).items))
        out.append(
            tuple(private_range_over_public(index, area, radius=0.05).items)
        )
    return tuple(out)


@pytest.mark.parametrize(
    "index_factory",
    [
        RTreeIndex,
        KDTreeIndex,
        lambda: GridIndex(UNIT, resolution=16),
        lambda: QuadTreeIndex(UNIT, leaf_capacity=4),
    ],
    ids=["rtree", "kdtree", "grid", "quadtree"],
)
def test_processor_candidates_identical_with_and_without_telemetry(
    index_factory,
):
    plain = run_processor_scenario(index_factory)
    with enabled():
        instrumented = run_processor_scenario(index_factory)
    assert instrumented == plain


def test_batch_engine_identical_with_and_without_telemetry():
    def scenario() -> tuple:
        rng = np.random.default_rng(31)
        index = RTreeIndex()
        index.bulk_load(dict(enumerate(random_rects(rng, 200, max_side=0.05))))
        distinct = random_rects(rng, 6, max_side=0.2)
        engine = BatchQueryEngine(private_index=index)
        requests = [
            BatchRequest("nn_private", distinct[int(rng.integers(6))])
            for _ in range(40)
        ]
        results = engine.run(requests)
        return (
            tuple(tuple(c.items) for c in results),
            engine.dedup_rate,
            engine.requests_computed,
        )

    plain = scenario()
    with enabled():
        instrumented = scenario()
    assert instrumented == plain


def test_cloak_cache_statistics_identical_with_and_without_telemetry():
    def scenario() -> tuple:
        rng = np.random.default_rng(41)
        anon = BasicAnonymizer(UNIT, height=6, cloak_cache_size=64)
        points = random_points(rng, 10)
        profile = PrivacyProfile(k=15)
        for uid in range(60):
            anon.register(uid, points[uid % len(points)], profile)
        regions = [cloak_fingerprint(anon.cloak(uid)) for uid in range(60)]
        return (
            tuple(regions),
            anon.cloak_cache.hit_rate,
            anon.cloak_cache.hits,
            anon.cloak_cache.misses,
        )

    plain = scenario()
    with enabled() as session:
        instrumented = scenario()
    assert instrumented == plain
    # ... while the cache events themselves were observed.
    hits = session.metrics.get(
        "casper_cloak_cache_events_total", (("event", "hit"),)
    )
    assert hits is not None and hits.value > 0
