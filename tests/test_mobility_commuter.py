"""Tests for the commuter (home/work tide) generator."""

from __future__ import annotations

import pytest

from repro.geometry import Rect
from repro.mobility import CommuterGenerator, synthetic_county_map


@pytest.fixture(scope="module")
def network():
    return synthetic_county_map(seed=5)


class TestCommuterGenerator:
    def test_validation(self, network):
        with pytest.raises(ValueError):
            CommuterGenerator(network, -1)
        with pytest.raises(ValueError):
            CommuterGenerator(network, 10, downtown_fraction=0.0)
        with pytest.raises(ValueError):
            CommuterGenerator(network, 10, dwell_range=(5.0, 2.0))
        gen = CommuterGenerator(network, 5)
        with pytest.raises(ValueError):
            gen.step(0.0)

    def test_population_and_positions(self, network):
        gen = CommuterGenerator(network, 60, seed=1)
        assert len(gen.positions()) == 60
        bbox = network.bounding_box()
        for _ in range(15):
            gen.step(1.0)
        assert all(
            bbox.contains_point(p, tol=1e-9) for p in gen.positions().values()
        )

    def test_commuters_start_at_home_nodes(self, network):
        gen = CommuterGenerator(network, 40, seed=2)
        for oid, obj in gen.objects.items():
            assert gen.position_of(oid) == network.node_position(obj.home)

    def test_work_nodes_are_downtown(self, network):
        gen = CommuterGenerator(network, 80, seed=3)
        downtown = set(gen.downtown_nodes)
        assert all(obj.work in downtown or obj.work != obj.home
                   for obj in gen.objects.values())
        assert sum(1 for o in gen.objects.values() if o.work in downtown) >= 70

    def test_tide_rises(self, network):
        """The defining behaviour: downtown density swells as commuters
        arrive at work."""
        gen = CommuterGenerator(network, 300, seed=4, dwell_range=(2.0, 5.0))
        initial = gen.fraction_downtown()
        peak = initial
        for _ in range(25):
            gen.step(1.0)
            peak = max(peak, gen.fraction_downtown())
        assert peak > initial + 0.15

    def test_tide_recedes_after_peak(self, network):
        gen = CommuterGenerator(network, 300, seed=4, dwell_range=(2.0, 5.0))
        levels = []
        for _ in range(40):
            gen.step(1.0)
            levels.append(gen.fraction_downtown())
        peak_at = levels.index(max(levels))
        assert peak_at < len(levels) - 1
        assert min(levels[peak_at:]) < max(levels) - 0.1

    def test_updates_report_everyone(self, network):
        gen = CommuterGenerator(network, 25, seed=5)
        updates = gen.step(1.0)
        assert sorted(u.uid for u in updates) == list(range(25))

    def test_deterministic(self, network):
        a = CommuterGenerator(network, 50, seed=9)
        b = CommuterGenerator(network, 50, seed=9)
        for _ in range(8):
            assert a.step(1.0) == b.step(1.0)

    def test_dwellers_do_not_move(self, network):
        gen = CommuterGenerator(network, 100, seed=6, dwell_range=(100.0, 200.0))
        before = gen.positions()
        gen.step(1.0)
        after = gen.positions()
        # Everyone is still in their initial (long) dwell.
        assert before == after

    def test_drives_anonymizer_churn(self, network):
        """Integration: the tide forces adaptive splits and merges."""
        from repro.anonymizer import AdaptiveAnonymizer, PrivacyProfile

        gen = CommuterGenerator(network, 250, seed=7, dwell_range=(2.0, 4.0))
        anonymizer = AdaptiveAnonymizer(Rect(0, 0, 1, 1), height=7)
        for uid, point in gen.positions().items():
            anonymizer.register(uid, point, PrivacyProfile(k=5))
        for _ in range(20):
            for update in gen.step(1.0):
                anonymizer.update(update.uid, update.point)
        anonymizer.check_invariants()
        assert anonymizer.stats.splits > 0
        assert anonymizer.stats.merges > 0
