"""Tests for filter selection (step 1 of Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.processor import select_filters_private, select_filters_public
from repro.spatial import BruteForceIndex
from tests.conftest import UNIT, random_points, random_rects


def point_index(points: list[Point]) -> BruteForceIndex:
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def rect_index(rects: list[Rect]) -> BruteForceIndex:
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


AREA = Rect(0.4, 0.4, 0.6, 0.6)


class TestPublicFilters:
    def test_invalid_count_rejected(self, rng):
        idx = point_index(random_points(rng, 10))
        with pytest.raises(ValueError):
            select_filters_public(idx, AREA, num_filters=3)

    def test_empty_index_rejected(self):
        with pytest.raises(EmptyDatasetError):
            select_filters_public(BruteForceIndex(), AREA, num_filters=4)

    def test_four_filters_are_vertex_nearest(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        filters = select_filters_public(idx, AREA, num_filters=4)
        for vertex in AREA.vertices():
            oid = filters.oid_for(vertex)
            best = min(range(len(points)), key=lambda i: points[i].distance_to(vertex))
            assert points[oid].distance_to(vertex) == pytest.approx(
                points[best].distance_to(vertex)
            )

    def test_one_filter_shared_by_all_vertices(self, rng):
        idx = point_index(random_points(rng, 50))
        filters = select_filters_public(idx, AREA, num_filters=1)
        assert len(set(filters.assignment.values())) == 1
        assert len(filters.distinct_oids()) == 1

    def test_two_filters_cover_opposite_corners(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        filters = select_filters_public(idx, AREA, num_filters=2)
        v1, v2, v3, v4 = AREA.vertices()
        assert len(filters.distinct_oids()) <= 2
        # Every vertex's filter is one of the two corner choices.
        corner_oids = {filters.oid_for(v1), filters.oid_for(v4)}
        assert {filters.assignment[v] for v in (v2, v3)} <= corner_oids

    def test_two_filters_assign_nearer_choice(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        filters = select_filters_public(idx, AREA, num_filters=2)
        v1, v2, v3, v4 = AREA.vertices()
        t1, t4 = filters.oid_for(v1), filters.oid_for(v4)
        for v in (v2, v3):
            chosen = filters.oid_for(v)
            other = t4 if chosen == t1 else t1
            assert points[chosen].distance_to(v) <= points[other].distance_to(v) + 1e-12

    def test_same_target_can_serve_all_vertices(self):
        # One target only: all vertices share it regardless of mode.
        idx = point_index([Point(0.5, 0.5)])
        for nf in (1, 2, 4):
            filters = select_filters_public(idx, AREA, num_filters=nf)
            assert set(filters.assignment.values()) == {0}


class TestPrivateFilters:
    def test_four_filters_minimise_max_distance(self, rng):
        rects = random_rects(rng, 150)
        idx = rect_index(rects)
        filters = select_filters_private(idx, AREA, num_filters=4)
        for vertex in AREA.vertices():
            oid = filters.oid_for(vertex)
            best = min(
                range(len(rects)),
                key=lambda i: rects[i].max_distance_to_point(vertex),
            )
            assert rects[oid].max_distance_to_point(vertex) == pytest.approx(
                rects[best].max_distance_to_point(vertex)
            )

    def test_pessimistic_beats_optimistic_choice(self):
        """A huge nearby region loses to a small slightly-farther one
        under the furthest-corner rule."""
        vertex = Point(0.4, 0.4)  # v3 of AREA
        big_near = Rect(0.1, 0.1, 0.45, 0.45)  # overlaps the vertex
        small_far = Rect(0.30, 0.30, 0.32, 0.32)
        idx = rect_index([big_near, small_far])
        filters = select_filters_private(idx, AREA, num_filters=4)
        assert filters.oid_for(vertex) == 1

    def test_one_filter_uses_center(self, rng):
        rects = random_rects(rng, 100)
        idx = rect_index(rects)
        filters = select_filters_private(idx, AREA, num_filters=1)
        oids = set(filters.assignment.values())
        assert len(oids) == 1
        oid = oids.pop()
        best = min(
            range(len(rects)),
            key=lambda i: rects[i].max_distance_to_point(AREA.center),
        )
        assert rects[oid].max_distance_to_point(AREA.center) == pytest.approx(
            rects[best].max_distance_to_point(AREA.center)
        )

    def test_empty_index_rejected(self):
        with pytest.raises(EmptyDatasetError):
            select_filters_private(BruteForceIndex(), AREA, num_filters=2)
