"""Cloak-cache correctness: memoized cloaks must be indistinguishable
from fresh :func:`bottom_up_cloak` runs, under any mutation pattern."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymizer import (
    AdaptiveAnonymizer,
    BasicAnonymizer,
    CloakCache,
    PrivacyProfile,
    bottom_up_cloak,
)
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def _fresh_cloak(anonymizer, uid):
    """What the seed implementation would have returned: Algorithm 1
    run from scratch against the live counters."""
    record = anonymizer._record(uid)
    start = record.cell if isinstance(anonymizer, BasicAnonymizer) else record.leaf
    return bottom_up_cloak(
        anonymizer.grid, anonymizer.cell_count, record.profile, start
    )


coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
# Each op: (kind, uid, x, y, k).
ops = st.lists(
    st.tuples(
        st.sampled_from(["register", "update", "deregister", "cloak"]),
        st.integers(min_value=0, max_value=11),
        coords,
        coords,
        st.integers(min_value=1, max_value=6),
    ),
    max_size=60,
)


@pytest.mark.parametrize("make", [BasicAnonymizer, AdaptiveAnonymizer])
@settings(max_examples=40)
@given(sequence=ops)
def test_property_cached_cloaks_match_fresh_under_churn(make, sequence):
    anonymizer = make(UNIT, height=5)
    registered: set[int] = set()
    for kind, uid, x, y, k in sequence:
        if kind == "register" and uid not in registered:
            anonymizer.register(uid, Point(x, y), PrivacyProfile(k=k))
            registered.add(uid)
        elif kind == "update" and uid in registered:
            anonymizer.update(uid, Point(x, y))
        elif kind == "deregister" and uid in registered:
            anonymizer.deregister(uid)
            registered.discard(uid)
        elif kind == "cloak" and uid in registered:
            try:
                cached = anonymizer.cloak(uid)
            except ProfileUnsatisfiableError:
                with pytest.raises(ProfileUnsatisfiableError):
                    _fresh_cloak(anonymizer, uid)
                continue
            assert cached == _fresh_cloak(anonymizer, uid)
    # After the churn, every registered user's cached cloak must still
    # agree with a from-scratch evaluation (repeat to hit both the miss
    # and the hit path).
    for uid in registered:
        for _ in range(2):
            try:
                cached = anonymizer.cloak(uid)
            except ProfileUnsatisfiableError:
                continue
            assert cached == _fresh_cloak(anonymizer, uid)


@pytest.mark.parametrize("make", [BasicAnonymizer, AdaptiveAnonymizer])
def test_co_located_users_share_one_computation(make):
    anonymizer = make(UNIT, height=6)
    profile = PrivacyProfile(k=5)
    for uid in range(20):
        anonymizer.register(uid, Point(0.3, 0.3), profile)
    regions = [anonymizer.cloak(uid).region for uid in range(20)]
    assert len(set(regions)) == 1
    cache = anonymizer.cloak_cache
    assert cache.misses == 1
    assert cache.hits == 19
    assert cache.hit_rate == pytest.approx(19 / 20)


def test_mutation_invalidates_stale_entry():
    anonymizer = BasicAnonymizer(UNIT, height=5)
    for uid in range(4):
        anonymizer.register(uid, Point(0.1, 0.1), PrivacyProfile(k=4))
    first = anonymizer.cloak(0)
    # A fifth user in the same cell changes the counters Algorithm 1
    # read, so the cached entry may not be served verbatim.
    anonymizer.register(99, Point(0.1, 0.1), PrivacyProfile(k=4))
    second = anonymizer.cloak(0)
    assert second == _fresh_cloak(anonymizer, 0)
    assert second.achieved_k == first.achieved_k + 1


def test_unrelated_mutation_keeps_entry_valid():
    anonymizer = BasicAnonymizer(UNIT, height=5)
    for uid in range(6):
        anonymizer.register(uid, Point(0.1, 0.1), PrivacyProfile(k=4))
    anonymizer.cloak(0)
    hits_before = anonymizer.cloak_cache.hits
    # A user in the far corner touches a disjoint ancestor path below
    # the root... except the root itself, whose count *does* change; the
    # snapshot only covers cells the cloak walk actually read, so the
    # entry survives if the walk stopped before the root.
    anonymizer.register(50, Point(0.9, 0.9), PrivacyProfile(k=1))
    region = anonymizer.cloak(0)
    assert region == _fresh_cloak(anonymizer, 0)
    assert anonymizer.cloak_cache.hits == hits_before + 1
    assert anonymizer.cloak_cache.invalidations == 0


def test_capacity_zero_disables_caching():
    anonymizer = BasicAnonymizer(UNIT, height=5, cloak_cache_size=0)
    for uid in range(5):
        anonymizer.register(uid, Point(0.2, 0.2), PrivacyProfile(k=3))
    for _ in range(3):
        assert anonymizer.cloak(0) == _fresh_cloak(anonymizer, 0)
    assert len(anonymizer.cloak_cache) == 0
    assert anonymizer.cloak_cache.hits == 0
    assert anonymizer.cloak_cache.misses == 0


def test_lru_eviction_bounds_size():
    cache = CloakCache(capacity=2)
    anonymizer = BasicAnonymizer(UNIT, height=5)
    anonymizer.cloak_cache = cache
    profile = PrivacyProfile(k=1)
    for uid, x in enumerate((0.1, 0.4, 0.7, 0.9)):
        anonymizer.register(uid, Point(x, x), profile)
    for uid in range(4):
        anonymizer.cloak(uid)
    assert len(cache) == 2
    assert cache.evictions == 2
    # Evicted entries recompute correctly.
    assert anonymizer.cloak(0) == _fresh_cloak(anonymizer, 0)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        CloakCache(capacity=-1)


def test_unsatisfiable_profiles_are_not_cached():
    anonymizer = BasicAnonymizer(UNIT, height=5)
    anonymizer.register(0, Point(0.5, 0.5), PrivacyProfile(k=10))
    with pytest.raises(ProfileUnsatisfiableError):
        anonymizer.cloak(0)
    assert len(anonymizer.cloak_cache) == 0
    # Once satisfiable, the answer is computed (and cached) normally.
    for uid in range(1, 10):
        anonymizer.register(uid, Point(0.5, 0.5), PrivacyProfile(k=2))
    assert anonymizer.cloak(0) == _fresh_cloak(anonymizer, 0)


def test_adaptive_split_and_merge_invalidate():
    anonymizer = AdaptiveAnonymizer(UNIT, height=6)
    relaxed = PrivacyProfile(k=1)
    for uid in range(8):
        anonymizer.register(uid, Point(0.05 + uid * 0.001, 0.05), relaxed)
    before = anonymizer.cloak(0)
    assert before == _fresh_cloak(anonymizer, 0)
    # Deregistering most of the cluster forces merges; the survivor's
    # cloak must track the reshaped pyramid.
    for uid in range(1, 8):
        anonymizer.deregister(uid)
    assert anonymizer.cloak(0) == _fresh_cloak(anonymizer, 0)
