"""Conformance suite for the cloaking-policy registry.

Every policy registered in ``repro.anonymizer.policy`` — the paper's
pyramid cloakers and the related-work baselines alike — must satisfy
the :class:`CloakingPolicy` contract: honour ``(k, A_min)`` profiles,
include the requesting user in the cloak, survive snapshot round-trips,
and run unchanged behind the sharded and parallel deployment seams.
The suite auto-parametrizes over :func:`available_policies`, so a newly
registered policy is covered without touching this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import CloakingPolicy, available_policies, get_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import UnknownUserError
from repro.geometry import Point
from repro.server import Casper
from repro.sharding import make_sharded
from tests.conftest import UNIT, random_points

HEIGHT = 6
A_MIN = 0.004  # large enough to force climbing above the leaf level


def build(name: str) -> CloakingPolicy:
    return get_policy(name).single(UNIT, HEIGHT, 8192, None)


def populate(anonymizer, n: int = 160, k: int = 8, seed: int = 7):
    rng = np.random.default_rng(seed)
    points = random_points(rng, n)
    profile = PrivacyProfile(k=k, a_min=A_MIN)
    for uid, point in enumerate(points):
        anonymizer.register(uid, point, profile)
    return points, profile


@pytest.fixture(params=available_policies())
def policy_name(request) -> str:
    return request.param


class TestRegistry:
    def test_spec_shape(self, policy_name):
        spec = get_policy(policy_name)
        assert spec.name == policy_name
        assert spec.replication in ("partition", "broadcast")
        assert callable(spec.single)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="registered policies"):
            get_policy("does-not-exist")

    def test_instance_satisfies_protocol(self, policy_name):
        assert isinstance(build(policy_name), CloakingPolicy)


class TestCloakContract:
    def test_k_satisfaction_and_inclusiveness(self, policy_name):
        anonymizer = build(policy_name)
        points, profile = populate(anonymizer)
        for uid in range(0, 160, 13):
            cloaked = anonymizer.cloak(uid)
            assert cloaked.achieved_k >= profile.k
            assert cloaked.region.contains_point(points[uid])
            assert UNIT.contains_rect(cloaked.region)

    def test_a_min_respected(self, policy_name):
        anonymizer = build(policy_name)
        populate(anonymizer)
        for uid in range(0, 160, 29):
            area = anonymizer.cloak(uid).region.area
            assert area >= A_MIN * (1 - 1e-9)

    def test_cloak_location_matches_cloak(self, policy_name):
        anonymizer = build(policy_name)
        points, profile = populate(anonymizer)
        assert (
            anonymizer.cloak_location(points[3], profile).region
            == anonymizer.cloak(3).region
        )

    def test_unknown_user_raises(self, policy_name):
        anonymizer = build(policy_name)
        with pytest.raises(UnknownUserError):
            anonymizer.cloak("ghost")
        with pytest.raises(UnknownUserError):
            anonymizer.update("ghost", Point(0.5, 0.5))
        with pytest.raises(UnknownUserError):
            anonymizer.deregister("ghost")


class TestLifecycle:
    def test_register_update_deregister(self, policy_name):
        anonymizer = build(policy_name)
        populate(anonymizer, n=40)
        assert anonymizer.num_users == 40
        assert 7 in anonymizer
        anonymizer.update(7, Point(0.9, 0.9))
        assert anonymizer.location_of(7) == Point(0.9, 0.9)
        anonymizer.deregister(7)
        assert 7 not in anonymizer
        assert anonymizer.num_users == 39
        anonymizer.check_invariants()

    def test_update_batch_matches_loop(self, policy_name):
        a, b = build(policy_name), build(policy_name)
        populate(a, n=60)
        populate(b, n=60)
        rng = np.random.default_rng(23)
        moves = [(uid, p) for uid, p in zip(range(0, 60, 7), random_points(rng, 9))]
        batched = a.update_batch(list(moves))
        looped = [b.update(uid, p) for uid, p in moves]
        assert batched == looped
        for uid, p in moves:
            assert a.location_of(uid) == b.location_of(uid) == p

    def test_users_in_rect_counts_population(self, policy_name):
        anonymizer = build(policy_name)
        populate(anonymizer, n=50)
        assert anonymizer.users_in_rect(UNIT) == 50


class TestSnapshot:
    def test_roundtrip_preserves_cloaks(self, policy_name):
        anonymizer = build(policy_name)
        points, profile = populate(anonymizer)
        before = {uid: anonymizer.cloak(uid).region for uid in range(0, 160, 31)}
        state = anonymizer.snapshot()
        # Mutate past the snapshot, then restore.
        anonymizer.register("late", Point(0.25, 0.75), profile)
        anonymizer.deregister(5)
        anonymizer.restore(state)
        assert anonymizer.num_users == 160
        assert "late" not in anonymizer
        assert 5 in anonymizer
        for uid, region in before.items():
            assert anonymizer.cloak(uid).region == region
        anonymizer.check_invariants()

    def test_restore_rejects_foreign_state(self, policy_name):
        anonymizer = build(policy_name)
        with pytest.raises(TypeError):
            anonymizer.restore(object())


class TestDeploymentSeams:
    def test_sharded_matches_single(self, policy_name):
        single = build(policy_name)
        fleet = make_sharded(
            UNIT, height=HEIGHT, num_shards=4, kind=policy_name
        )
        points, _ = populate(single)
        populate(fleet)
        for uid in range(0, 160, 17):
            assert fleet.cloak(uid).region == single.cloak(uid).region
        fleet.check_invariants()

    def test_sharded_snapshot_roundtrip(self, policy_name):
        fleet = make_sharded(UNIT, height=HEIGHT, num_shards=4, kind=policy_name)
        populate(fleet, n=80)
        state = fleet.snapshot()
        regions = {uid: fleet.cloak(uid).region for uid in range(0, 80, 19)}
        restored = make_sharded(
            UNIT, height=HEIGHT, num_shards=4, kind=policy_name
        )
        restored.restore(state)
        assert restored.num_users == 80
        for uid, region in regions.items():
            assert restored.cloak(uid).region == region
        restored.check_invariants()


def test_baseline_policy_runs_parallel_end_to_end():
    """A non-paper cloaker answers a private query through the full
    ``Casper(policy=..., shards=4, parallel=True)`` process pool."""
    rng = np.random.default_rng(11)
    with Casper(UNIT, pyramid_height=5, policy="interval", shards=4, parallel=True) as casper:
        for uid, point in enumerate(random_points(rng, 64)):
            casper.register_user(uid, point, PrivacyProfile(k=4))
        casper.add_public_targets({"t1": Point(0.5, 0.5), "t2": Point(0.9, 0.1)})
        answer = casper.query_nearest_private(3)
        assert answer.candidates
        casper.anonymizer.check_invariants()
