"""Tests for public NN queries over private (cloaked) data."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.processor import public_nn_over_private
from repro.spatial import BruteForceIndex
from tests.conftest import random_points, random_rects


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


class TestPossibleNNSet:
    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            public_nn_over_private(BruteForceIndex(), Point(0.5, 0.5))

    def test_single_object_is_the_answer(self):
        idx = rect_index([Rect(0.1, 0.1, 0.2, 0.2)])
        result = public_nn_over_private(idx, Point(0.9, 0.9))
        assert result.oids() == [0]
        assert result.most_likely() == 0

    def test_inclusiveness_adversarial(self, rng):
        """For any actual placements, the true NN is a candidate."""
        rects = random_rects(rng, 200, max_side=0.08)
        idx = rect_index(rects)
        for q in random_points(rng, 20):
            result = public_nn_over_private(idx, q)
            oids = set(result.oids())
            for _ in range(10):
                actual = [
                    Point(
                        float(rng.uniform(r.x_min, r.x_max)),
                        float(rng.uniform(r.y_min, r.y_max)),
                    )
                    for r in rects
                ]
                winner = min(
                    range(len(rects)),
                    key=lambda i: actual[i].squared_distance_to(q),
                )
                assert winner in oids

    def test_minimality_every_candidate_can_win(self, rng):
        """Each candidate has a placement making it the true NN: put it
        at its nearest corner and everyone else at their farthest."""
        rects = random_rects(rng, 60, max_side=0.1)
        idx = rect_index(rects)
        q = Point(0.5, 0.5)
        result = public_nn_over_private(idx, q)
        for oid in result.oids():
            mine = rects[oid].nearest_point_to(q).distance_to(q)
            others_best = min(
                rects[i].max_distance_to_point(q)
                for i in range(len(rects))
                if i != oid
            ) if len(rects) > 1 else float("inf")
            assert mine <= others_best + 1e-9

    def test_point_data_degenerates_to_exact_nn(self, rng):
        points = random_points(rng, 150)
        idx = rect_index([Rect.point(p) for p in points])
        q = Point(0.3, 0.6)
        result = public_nn_over_private(idx, q)
        true_nn = min(range(len(points)), key=lambda i: points[i].distance_to(q))
        # Exact data: the possible set collapses to the true NN (plus
        # exact ties).
        best = points[true_nn].distance_to(q)
        assert all(points[oid].distance_to(q) <= best + 1e-9 for oid in result.oids())
        assert true_nn in result.oids()

    def test_probability_estimation(self, rng):
        rects = random_rects(rng, 40, max_side=0.15)
        idx = rect_index(rects)
        result = public_nn_over_private(
            idx, Point(0.5, 0.5), estimate_probabilities=True, samples=300, seed=1
        )
        assert result.probabilities is not None
        assert sum(result.probabilities.values()) == pytest.approx(1.0)
        assert result.most_likely() in result.oids()

    def test_probability_validation(self, rng):
        idx = rect_index(random_rects(rng, 5))
        with pytest.raises(ValueError):
            public_nn_over_private(
                idx, Point(0.5, 0.5), estimate_probabilities=True, samples=0
            )

    def test_probabilities_reflect_geometry(self):
        """A region hugging the query point should dominate a distant one."""
        idx = rect_index(
            [Rect(0.48, 0.48, 0.52, 0.52), Rect(0.9, 0.9, 0.95, 0.95)]
        )
        result = public_nn_over_private(
            idx, Point(0.5, 0.5), estimate_probabilities=True, samples=200, seed=2
        )
        if 1 in result.probabilities:
            assert result.probabilities[0] > result.probabilities.get(1, 0.0)
        assert result.most_likely() == 0

    def test_threshold_is_champion_maxdist(self, rng):
        rects = random_rects(rng, 80, max_side=0.1)
        idx = rect_index(rects)
        q = Point(0.4, 0.4)
        result = public_nn_over_private(idx, q)
        champion_bound = min(r.max_distance_to_point(q) for r in rects)
        assert result.threshold == pytest.approx(champion_bound)


@settings(max_examples=40, deadline=None)
@given(
    qx=st.floats(0, 1, allow_nan=False),
    qy=st.floats(0, 1, allow_nan=False),
    corner=st.lists(st.integers(0, 3), min_size=30, max_size=30),
)
def test_property_uncertain_nn_inclusive(qx, qy, corner):
    rng = np.random.default_rng(77)
    rects = random_rects(rng, 30, max_side=0.12)
    idx = rect_index(rects)
    q = Point(qx, qy)
    result = public_nn_over_private(idx, q)
    actual = [r.corners()[c] for r, c in zip(rects, corner)]
    winner = min(range(30), key=lambda i: actual[i].squared_distance_to(q))
    assert winner in set(result.oids())
