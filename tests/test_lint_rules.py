"""Per-rule casperlint tests over the fixture modules.

Every rule has (at least) one fixture module that violates it and one
that passes.  Fixtures live in ``tests/lint_fixtures/<rule>/``; each
file names its dotted module on the first line (``# module: ...``) so
the zone configuration below can place it on the right side of the
privacy/determinism boundaries.  Support modules (``support_*.py``)
are loaded into every project built from their directory.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintConfig, Project, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

FIXTURE_CONFIG = LintConfig(
    untrusted_packages=("app.processor",),
    tainted_packages=("app.anonymizer", "app.workloads"),
    safe_imports={
        "app.anonymizer": frozenset({"CloakedRegion", "PrivacyProfile"})
    },
    deterministic_packages=("sim.engine",),
    codec_modules=("proto.codec",),
    pickle_boundary_modules=("proto.workers",),
    protocol_modules=("proto.wire",),
    dispatch_modules=("proto.workers",),
    policy_modules=("pol.policies",),
)


def module_name_of(path: Path) -> str:
    first = path.read_text().splitlines()[0]
    assert first.startswith("# module: "), f"{path} lacks a module header"
    return first.removeprefix("# module: ").strip()


def project_for(fixture: Path) -> Project:
    """A project holding one fixture file plus its directory's supports."""
    project = Project(root=fixture.parent)
    for support in sorted(fixture.parent.glob("support_*.py")):
        project.add_virtual_module(
            module_name_of(support), support.read_text()
        )
    project.add_virtual_module(module_name_of(fixture), fixture.read_text())
    return project


def findings_for(fixture: Path, code: str) -> list:
    project = project_for(fixture)
    result = run_lint(project, FIXTURE_CONFIG)
    target = "src/" + module_name_of(fixture).replace(".", "/") + ".py"
    return [f for f in result.findings if f.rule == code and f.path == target]


CASES = [
    ("csp001_privacy/bad_direct.py", "CSP001", 1),
    ("csp001_privacy/bad_name.py", "CSP001", 1),
    ("csp001_privacy/bad_transitive.py", "CSP001", 1),
    ("csp001_privacy/clean.py", "CSP001", 0),
    ("csp002_determinism/bad.py", "CSP002", 5),
    ("csp002_determinism/clean.py", "CSP002", 0),
    ("csp003_contract/bad.py", "CSP003", 3),
    ("csp003_contract/clean.py", "CSP003", 0),
    ("csp004_float_eq/bad.py", "CSP004", 2),
    ("csp004_float_eq/clean.py", "CSP004", 0),
    ("csp005_mutable_default/bad.py", "CSP005", 3),
    ("csp005_mutable_default/clean.py", "CSP005", 0),
    ("csp006_broad_except/bad.py", "CSP006", 2),
    ("csp006_broad_except/clean.py", "CSP006", 0),
    ("csp007_unseeded/bad.py", "CSP007", 1),
    ("csp007_unseeded/clean.py", "CSP007", 0),
    ("csp008_telemetry/bad.py", "CSP008", 5),
    ("csp008_telemetry/clean.py", "CSP008", 0),
    ("csp009_taint/bad.py", "CSP009", 5),
    ("csp009_taint/bad_persistence.py", "CSP009", 2),
    ("csp009_taint/clean.py", "CSP009", 0),
    ("csp010_async/bad.py", "CSP010", 2),
    ("csp010_async/clean.py", "CSP010", 0),
    ("csp011_boundary/bad.py", "CSP011", 2),
    ("csp011_boundary/bad_inside.py", "CSP011", 2),
    ("csp011_boundary/clean.py", "CSP011", 0),
    ("csp012_lifecycle/bad.py", "CSP012", 3),
    ("csp012_lifecycle/clean.py", "CSP012", 0),
    ("csp013_protocol/bad.py", "CSP013", 3),
    ("csp013_protocol/clean.py", "CSP013", 0),
    ("csp014_policy/bad.py", "CSP014", 4),
    ("csp014_policy/clean.py", "CSP014", 0),
]


@pytest.mark.parametrize("rel,code,expected", CASES)
def test_fixture_finding_counts(rel: str, code: str, expected: int) -> None:
    found = findings_for(FIXTURES / rel, code)
    assert len(found) == expected, [f.message for f in found]


def test_every_rule_has_violating_and_clean_fixture() -> None:
    codes_with_bad = {c for _, c, n in CASES if n > 0}
    codes_with_clean = {c for _, c, n in CASES if n == 0}
    all_codes = {f"CSP{i:03d}" for i in range(1, 15)}
    assert codes_with_bad == all_codes
    assert codes_with_clean == all_codes


def test_transitive_chain_is_named_in_message() -> None:
    (finding,) = findings_for(
        FIXTURES / "csp001_privacy/bad_transitive.py", "CSP001"
    )
    assert "app.processor.bad_transitive -> app.helpers -> app.workloads" in (
        finding.message
    )


def test_direct_violation_points_at_the_import_line() -> None:
    fixture = FIXTURES / "csp001_privacy/bad_direct.py"
    (finding,) = findings_for(fixture, "CSP001")
    line = fixture.read_text().splitlines()[finding.line - 1]
    assert "from app.workloads import" in line


def test_float_sentinel_equality_is_exempt() -> None:
    project = Project()
    project.add_virtual_module(
        "geom.sentinel",
        "def unbounded(a):\n    return a == float('inf')\n",
    )
    result = run_lint(project, FIXTURE_CONFIG)
    assert [f for f in result.findings if f.rule == "CSP004"] == []


def test_broad_except_with_reraise_is_exempt() -> None:
    project = Project()
    project.add_virtual_module(
        "errs.reraise",
        "def f(x):\n"
        "    try:\n"
        "        return x()\n"
        "    except Exception:\n"
        "        raise\n",
    )
    result = run_lint(project, FIXTURE_CONFIG)
    assert [f for f in result.findings if f.rule == "CSP006"] == []


def test_decoded_tuple_elements_carry_weak_taint_only() -> None:
    """Extracting from a tainted container must not flag id-shaped args.

    ``decode_op`` returns ``("move", point, uid)``; ``op[2]`` is a user
    id, not a location, so passing it to a callee whose parameter flows
    into an exception message is not a call-site leak.
    """
    project = Project()
    project.add_virtual_module(
        "app.anonymizer.router",
        "def decode(payload):\n"
        "    return ('move', Point(1.0, 2.0), payload[0])\n"
        "\n"
        "def complain(uid):\n"
        "    raise KeyError(f'unknown user {uid!r}')\n"
        "\n"
        "def route(payload):\n"
        "    op = decode(payload)\n"
        "    complain(op[2])\n",
    )
    result = run_lint(project, FIXTURE_CONFIG)
    assert [f for f in result.findings if f.rule == "CSP009"] == []


def test_weak_taint_still_fires_local_sinks() -> None:
    """The extracting function leaks if it sinks the element itself."""
    project = Project()
    project.add_virtual_module(
        "app.anonymizer.router",
        "def decode(payload):\n"
        "    return ('move', Point(1.0, 2.0), payload[0])\n"
        "\n"
        "def route(payload):\n"
        "    op = decode(payload)\n"
        "    raise ValueError(f'cannot route {op[1]}')\n",
    )
    result = run_lint(project, FIXTURE_CONFIG)
    found = [f for f in result.findings if f.rule == "CSP009"]
    assert len(found) == 1, [f.message for f in found]
    assert "exception message" in found[0].message
