"""Engine-level casperlint tests: pragmas, baseline, reporters, config, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintConfig,
    Project,
    run_lint,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.reporters import render_json, render_sarif, render_text

CONFIG = LintConfig(deterministic_packages=("sim",))


def _lint_source(source: str, name: str = "sim.mod") -> list[Finding]:
    project = Project()
    project.add_virtual_module(name, source)
    return run_lint(project, CONFIG).findings


# ----------------------------------------------------------------------
# Inline pragmas
# ----------------------------------------------------------------------
def test_pragma_suppresses_named_rule() -> None:
    src = "def f(x=[]):  # casperlint: ignore[CSP005] frozen at import time\n    return x\n"
    assert _lint_source(src) == []


def test_pragma_without_codes_suppresses_everything() -> None:
    src = "def f(x=[]):  # casperlint: ignore\n    return x\n"
    assert _lint_source(src) == []


def test_pragma_for_other_rule_does_not_suppress() -> None:
    src = "def f(x=[]):  # casperlint: ignore[CSP004]\n    return x\n"
    findings = _lint_source(src)
    assert [f.rule for f in findings] == ["CSP005"]


def test_pragma_on_any_line_of_a_multiline_statement() -> None:
    src = (
        "import random  # casperlint: ignore[CSP002] interactive tool only\n"
    )
    assert _lint_source(src) == []


def test_pragma_on_a_different_line_of_a_multiline_statement() -> None:
    """The pragma may sit on any line of the statement, not just the
    line the finding anchors to."""
    src = (
        "import time\n"
        "stamp = (\n"
        "    time.time()\n"
        ")  # casperlint: ignore[CSP002] wall-clock for display only\n"
    )
    assert _lint_source(src) == []
    # and without the pragma the same statement is a finding
    assert [f.rule for f in _lint_source(src.replace("  # casperlint: ignore[CSP002] wall-clock for display only", ""))] == ["CSP002"]


def test_suppressed_count_reported() -> None:
    project = Project()
    project.add_virtual_module(
        "sim.mod", "def f(x=[]):  # casperlint: ignore\n    return x\n"
    )
    result = run_lint(project, CONFIG)
    assert result.suppressed == 1 and result.findings == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _finding(message: str = "m") -> Finding:
    return Finding(rule="CSP005", path="src/sim/mod.py", line=3, message=message)


def test_baseline_roundtrip(tmp_path: Path) -> None:
    findings = [_finding("a"), _finding("b")]
    path = tmp_path / "base.json"
    Baseline.from_findings(findings).write(path)
    loaded = Baseline.load(path)
    match = loaded.match(findings)
    assert match.new == [] and len(match.baselined) == 2 and match.stale == []


def test_baseline_fingerprint_is_line_insensitive() -> None:
    moved = Finding(
        rule="CSP005", path="src/sim/mod.py", line=99, message="m"
    )
    baseline = Baseline.from_findings([_finding()])
    match = baseline.match([moved])
    assert match.new == [] and match.baselined == [moved]


def test_baseline_flags_stale_entries() -> None:
    baseline = Baseline.from_findings([_finding("fixed long ago")])
    match = baseline.match([])
    assert len(match.stale) == 1


def test_missing_baseline_file_is_empty(tmp_path: Path) -> None:
    assert Baseline.load(tmp_path / "nope.json").entries == []


def test_malformed_baseline_rejected(tmp_path: Path) -> None:
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99}')
    with pytest.raises(ValueError):
        Baseline.load(path)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def _result_and_match():
    project = Project()
    project.add_virtual_module("sim.mod", "def f(x=[]):\n    return x\n")
    result = run_lint(project, CONFIG)
    return result, Baseline().match(result.findings)


def test_text_reporter_names_file_rule_and_severity() -> None:
    result, match = _result_and_match()
    text = render_text(result, match)
    assert "src/sim/mod.py:1: CSP005 error:" in text
    assert "1 error(s)" in text


def test_json_reporter_shape() -> None:
    result, match = _result_and_match()
    data = json.loads(render_json(result, match))
    assert data["summary"]["errors"] == 1
    (finding,) = data["findings"]
    assert finding["rule"] == "CSP005" and finding["fingerprint"]


def test_sarif_reporter_shape() -> None:
    result, match = _result_and_match()
    sarif = json.loads(render_sarif(result, match))
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "casperlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "CSP005" in rule_ids
    (sarif_result,) = run["results"]
    assert sarif_result["ruleId"] == "CSP005"
    assert sarif_result["partialFingerprints"]["casperlint/v1"]
    location = sarif_result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/sim/mod.py"
    assert "suppressions" not in sarif_result


def test_sarif_marks_baselined_findings_suppressed() -> None:
    result, _ = _result_and_match()
    match = Baseline.from_findings(result.findings).match(result.findings)
    sarif = json.loads(render_sarif(result, match))
    (sarif_result,) = sarif["runs"][0]["results"]
    (suppression,) = sarif_result["suppressions"]
    assert suppression["kind"] == "external"


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
def test_config_merge_severity_and_select() -> None:
    config = LintConfig().merged(
        {"severity": {"CSP004": "warning"}, "select": ["CSP004", "CSP005"]}
    )
    assert config.severity_of("CSP004") == "warning"
    assert config.select == frozenset({"CSP004", "CSP005"})


def test_config_from_pyproject(tmp_path: Path) -> None:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.casperlint]\n"
        'untrusted_packages = ["x.server"]\n'
        "[tool.casperlint.safe_imports]\n"
        '"x.anon" = ["Cloak"]\n'
    )
    config = LintConfig.from_pyproject(tmp_path)
    assert config.untrusted_packages == ("x.server",)
    assert config.safe_imports == {"x.anon": frozenset({"Cloak"})}


def test_severity_override_changes_exit_behaviour() -> None:
    project = Project()
    project.add_virtual_module("sim.mod", "def f(x=[]):\n    return x\n")
    config = CONFIG.merged({"severity": {"CSP005": "warning"}})
    result = run_lint(project, config)
    assert [f.severity for f in result.findings] == ["warning"]


# ----------------------------------------------------------------------
# CLI end to end (on a tiny throwaway project tree)
# ----------------------------------------------------------------------
def _make_project_tree(tmp_path: Path, source: str) -> Path:
    (tmp_path / "src" / "pkg").mkdir(parents=True)
    (tmp_path / "src" / "pkg" / "mod.py").write_text(source)
    return tmp_path


def test_cli_clean_tree_exits_zero(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_violation_exits_nonzero_and_reports(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 1
    assert "CSP005" in capsys.readouterr().out


def test_cli_json_format(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--format", "json", "src"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["summary"]["errors"] == 1


def test_cli_write_then_respect_baseline(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--write-baseline", "src"]) == 0
    capsys.readouterr()
    # Baselined finding no longer fails the run ...
    assert lint_main(["--root", str(root), "src"]) == 0
    assert "baselined" in capsys.readouterr().out
    # ... until it is fixed, at which point the entry is stale and fails.
    (root / "src" / "pkg" / "mod.py").write_text("def f(x):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_severity_override_demotes_to_warning(tmp_path: Path) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert (
        lint_main(
            ["--root", str(root), "--severity", "CSP005=warning", "src"]
        )
        == 0
    )
    assert (
        lint_main(
            ["--root", str(root), "--severity", "CSP005=warning", "--strict",
             "src"]
        )
        == 1
    )


def test_cli_select_limits_rules(tmp_path: Path) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--select", "CSP004", "src"]) == 0


def test_cli_sarif_report_file(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert (
        lint_main(["--root", str(root), "--sarif", "out.sarif", "src"]) == 1
    )
    captured = capsys.readouterr()
    assert "CSP005" in captured.out  # text report still printed
    sarif = json.loads((root / "out.sarif").read_text())
    assert sarif["runs"][0]["results"][0]["ruleId"] == "CSP005"


def test_cli_format_sarif_prints_sarif(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--format", "sarif", "src"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"


def test_cli_write_baseline_refuses_never_baseline_rules(
    tmp_path: Path, capsys
) -> None:
    # CSP011 (never-baseline) plus CSP005 (baselineable) in one module
    root = _make_project_tree(
        tmp_path, "import pickle\n\n\ndef f(x=[]):\n    return x\n"
    )
    assert lint_main(["--root", str(root), "--write-baseline", "src"]) == 1
    err = capsys.readouterr().err
    assert "refused to baseline" in err and "CSP011" in err
    written = (root / "casperlint-baseline.json").read_text()
    assert "CSP005" in written and "CSP011" not in written
    # the refused finding still fails subsequent runs
    assert lint_main(["--root", str(root), "src"]) == 1


def _git(root: Path, *argv: str) -> None:
    import subprocess

    subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@example.com",
         "-c", "user.name=t", *argv],
        check=True,
        capture_output=True,
    )


def test_cli_diff_outside_git_degrades_to_full_report(
    tmp_path: Path, capsys
) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--diff", "HEAD", "src"]) == 1
    captured = capsys.readouterr()
    assert "--diff" in captured.err  # degradation is loud, never a pass
    assert "CSP005" in captured.out


def test_cli_diff_filters_to_changed_files(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    clean = root / "src" / "pkg" / "other.py"
    clean.write_text("def g(x):\n    return x\n")
    _git(root, "init", "-q")
    _git(root, "add", ".")
    _git(root, "commit", "-qm", "base")
    # a new violation lands in other.py only: mod.py's pre-existing
    # finding must not show up in a --diff run ...
    clean.write_text("def g(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--diff", "HEAD", "src"]) == 1
    out = capsys.readouterr().out
    assert "other.py" in out and "mod.py" not in out
    # ... but an unchanged tree diffs clean
    _git(root, "add", ".")
    _git(root, "commit", "-qm", "more")
    assert lint_main(["--root", str(root), "--diff", "HEAD", "src"]) == 0
