"""Engine-level casperlint tests: pragmas, baseline, reporters, config, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintConfig,
    Project,
    run_lint,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.reporters import render_json, render_text

CONFIG = LintConfig(deterministic_packages=("sim",))


def _lint_source(source: str, name: str = "sim.mod") -> list[Finding]:
    project = Project()
    project.add_virtual_module(name, source)
    return run_lint(project, CONFIG).findings


# ----------------------------------------------------------------------
# Inline pragmas
# ----------------------------------------------------------------------
def test_pragma_suppresses_named_rule() -> None:
    src = "def f(x=[]):  # casperlint: ignore[CSP005] frozen at import time\n    return x\n"
    assert _lint_source(src) == []


def test_pragma_without_codes_suppresses_everything() -> None:
    src = "def f(x=[]):  # casperlint: ignore\n    return x\n"
    assert _lint_source(src) == []


def test_pragma_for_other_rule_does_not_suppress() -> None:
    src = "def f(x=[]):  # casperlint: ignore[CSP004]\n    return x\n"
    findings = _lint_source(src)
    assert [f.rule for f in findings] == ["CSP005"]


def test_pragma_on_any_line_of_a_multiline_statement() -> None:
    src = (
        "import random  # casperlint: ignore[CSP002] interactive tool only\n"
    )
    assert _lint_source(src) == []


def test_suppressed_count_reported() -> None:
    project = Project()
    project.add_virtual_module(
        "sim.mod", "def f(x=[]):  # casperlint: ignore\n    return x\n"
    )
    result = run_lint(project, CONFIG)
    assert result.suppressed == 1 and result.findings == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _finding(message: str = "m") -> Finding:
    return Finding(rule="CSP005", path="src/sim/mod.py", line=3, message=message)


def test_baseline_roundtrip(tmp_path: Path) -> None:
    findings = [_finding("a"), _finding("b")]
    path = tmp_path / "base.json"
    Baseline.from_findings(findings).write(path)
    loaded = Baseline.load(path)
    match = loaded.match(findings)
    assert match.new == [] and len(match.baselined) == 2 and match.stale == []


def test_baseline_fingerprint_is_line_insensitive() -> None:
    moved = Finding(
        rule="CSP005", path="src/sim/mod.py", line=99, message="m"
    )
    baseline = Baseline.from_findings([_finding()])
    match = baseline.match([moved])
    assert match.new == [] and match.baselined == [moved]


def test_baseline_flags_stale_entries() -> None:
    baseline = Baseline.from_findings([_finding("fixed long ago")])
    match = baseline.match([])
    assert len(match.stale) == 1


def test_missing_baseline_file_is_empty(tmp_path: Path) -> None:
    assert Baseline.load(tmp_path / "nope.json").entries == []


def test_malformed_baseline_rejected(tmp_path: Path) -> None:
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99}')
    with pytest.raises(ValueError):
        Baseline.load(path)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def _result_and_match():
    project = Project()
    project.add_virtual_module("sim.mod", "def f(x=[]):\n    return x\n")
    result = run_lint(project, CONFIG)
    return result, Baseline().match(result.findings)


def test_text_reporter_names_file_rule_and_severity() -> None:
    result, match = _result_and_match()
    text = render_text(result, match)
    assert "src/sim/mod.py:1: CSP005 error:" in text
    assert "1 error(s)" in text


def test_json_reporter_shape() -> None:
    result, match = _result_and_match()
    data = json.loads(render_json(result, match))
    assert data["summary"]["errors"] == 1
    (finding,) = data["findings"]
    assert finding["rule"] == "CSP005" and finding["fingerprint"]


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
def test_config_merge_severity_and_select() -> None:
    config = LintConfig().merged(
        {"severity": {"CSP004": "warning"}, "select": ["CSP004", "CSP005"]}
    )
    assert config.severity_of("CSP004") == "warning"
    assert config.select == frozenset({"CSP004", "CSP005"})


def test_config_from_pyproject(tmp_path: Path) -> None:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.casperlint]\n"
        'untrusted_packages = ["x.server"]\n'
        "[tool.casperlint.safe_imports]\n"
        '"x.anon" = ["Cloak"]\n'
    )
    config = LintConfig.from_pyproject(tmp_path)
    assert config.untrusted_packages == ("x.server",)
    assert config.safe_imports == {"x.anon": frozenset({"Cloak"})}


def test_severity_override_changes_exit_behaviour() -> None:
    project = Project()
    project.add_virtual_module("sim.mod", "def f(x=[]):\n    return x\n")
    config = CONFIG.merged({"severity": {"CSP005": "warning"}})
    result = run_lint(project, config)
    assert [f.severity for f in result.findings] == ["warning"]


# ----------------------------------------------------------------------
# CLI end to end (on a tiny throwaway project tree)
# ----------------------------------------------------------------------
def _make_project_tree(tmp_path: Path, source: str) -> Path:
    (tmp_path / "src" / "pkg").mkdir(parents=True)
    (tmp_path / "src" / "pkg" / "mod.py").write_text(source)
    return tmp_path


def test_cli_clean_tree_exits_zero(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_violation_exits_nonzero_and_reports(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 1
    assert "CSP005" in capsys.readouterr().out


def test_cli_json_format(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--format", "json", "src"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["summary"]["errors"] == 1


def test_cli_write_then_respect_baseline(tmp_path: Path, capsys) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--write-baseline", "src"]) == 0
    capsys.readouterr()
    # Baselined finding no longer fails the run ...
    assert lint_main(["--root", str(root), "src"]) == 0
    assert "baselined" in capsys.readouterr().out
    # ... until it is fixed, at which point the entry is stale and fails.
    (root / "src" / "pkg" / "mod.py").write_text("def f(x):\n    return x\n")
    assert lint_main(["--root", str(root), "src"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_severity_override_demotes_to_warning(tmp_path: Path) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert (
        lint_main(
            ["--root", str(root), "--severity", "CSP005=warning", "src"]
        )
        == 0
    )
    assert (
        lint_main(
            ["--root", str(root), "--severity", "CSP005=warning", "--strict",
             "src"]
        )
        == 1
    )


def test_cli_select_limits_rules(tmp_path: Path) -> None:
    root = _make_project_tree(tmp_path, "def f(x=[]):\n    return x\n")
    assert lint_main(["--root", str(root), "--select", "CSP004", "src"]) == 0
