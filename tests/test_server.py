"""Tests for the server layer: LocationServer, Casper facade, clients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.server import (
    Casper,
    LocationServer,
    MobileClient,
    TransmissionModel,
)
from repro.spatial import BruteForceIndex
from tests.conftest import UNIT, random_points


class TestTransmissionModel:
    def test_paper_defaults(self):
        model = TransmissionModel()
        # 100 records * 64 B * 8 / 100 Mbps.
        assert model.time_for(100) == pytest.approx(100 * 64 * 8 / 100e6)

    def test_latency_added(self):
        model = TransmissionModel(latency_seconds=0.01)
        assert model.time_for(0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmissionModel(record_bytes=0)
        with pytest.raises(ValueError):
            TransmissionModel(bandwidth_mbps=-1)
        with pytest.raises(ValueError):
            TransmissionModel(latency_seconds=-0.5)


class TestLocationServer:
    def test_public_data_lifecycle(self, rng):
        server = LocationServer()
        server.add_public("a", Point(0.5, 0.5))
        assert server.num_public == 1
        server.add_public("a", Point(0.6, 0.6))  # move
        assert server.num_public == 1
        server.remove_public("a")
        assert server.num_public == 0

    def test_bulk_loads(self, rng):
        server = LocationServer()
        points = random_points(rng, 50)
        server.add_public_bulk({i: p for i, p in enumerate(points)})
        assert server.num_public == 50
        server.store_private_bulk(
            {i: Rect.from_center(p, 0.02, 0.02).clipped_to(UNIT) for i, p in enumerate(points)}
        )
        assert server.num_private == 50

    def test_custom_index_factory(self, rng):
        server = LocationServer(index_factory=BruteForceIndex)
        assert isinstance(server.public_index, BruteForceIndex)

    def test_nn_private_exclusion(self, rng):
        server = LocationServer()
        server.store_private("me", Rect(0.45, 0.45, 0.55, 0.55))
        server.store_private("buddy", Rect(0.6, 0.6, 0.65, 0.65))
        area = Rect(0.45, 0.45, 0.55, 0.55)
        with_me = server.nn_private(area, exclude=None)
        without_me = server.nn_private(area, exclude="me")
        assert "me" in with_me.oids()
        assert "me" not in without_me.oids()
        # Exclusion is transient: the record is restored afterwards.
        assert server.num_private == 2

    def test_nn_private_exclude_unknown_is_noop(self):
        server = LocationServer()
        server.store_private("buddy", Rect(0.6, 0.6, 0.65, 0.65))
        result = server.nn_private(Rect(0.4, 0.4, 0.5, 0.5), exclude="ghost")
        assert "buddy" in result.oids()

    def test_naive_baselines(self, rng):
        server = LocationServer()
        server.add_public_bulk({i: p for i, p in enumerate(random_points(rng, 40))})
        area = Rect(0.4, 0.4, 0.6, 0.6)
        assert len(server.nn_public_naive_center(area)) == 1
        assert len(server.nn_public_naive_all(area)) == 40


def build_stack(rng, num_users=250, num_targets=150, **kwargs) -> Casper:
    casper = Casper(UNIT, pyramid_height=7, **kwargs)
    casper.add_public_targets(
        {f"t{i}": p for i, p in enumerate(random_points(rng, num_targets))}
    )
    for i, p in enumerate(random_points(rng, num_users)):
        casper.register_user(i, p, PrivacyProfile(k=int(rng.integers(1, 25))))
    return casper


class TestCasperFacade:
    def test_server_never_sees_exact_private_locations(self, rng):
        """The core privacy property: every stored private region is a
        non-degenerate rectangle strictly larger than a point whenever
        the profile demands k > 1."""
        casper = build_stack(rng)
        for uid in range(250):
            profile = casper.anonymizer.profile_of(uid)
            region = casper.server.private_index.rect_of(uid)
            if profile.k > 1:
                assert region.area > 0.0
            assert region.contains_point(casper.anonymizer.location_of(uid))

    def test_query_nearest_public_is_exact(self, rng):
        casper = build_stack(rng)
        # Exhaustive truth from the stored public targets.
        targets = dict(casper.server.public_index.items())
        for uid in range(0, 250, 31):
            result = casper.query_nearest_public(uid)
            user = casper.anonymizer.location_of(uid)
            truth = min(
                targets, key=lambda oid: targets[oid].min_distance_to_point(user)
            )
            true_d = targets[truth].min_distance_to_point(user)
            got_d = targets[result.answer].min_distance_to_point(user)
            assert got_d == pytest.approx(true_d)

    def test_query_timing_components_positive(self, rng):
        casper = build_stack(rng)
        result = casper.query_nearest_public(0)
        assert result.anonymizer_seconds >= 0
        assert result.processing_seconds > 0
        assert result.transmission_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.anonymizer_seconds
            + result.processing_seconds
            + result.transmission_seconds
        )
        assert result.candidate_count == len(result.candidates)

    def test_query_nearest_private_excludes_self(self, rng):
        casper = build_stack(rng)
        result = casper.query_nearest_private(3)
        assert 3 not in result.candidates.oids()
        assert result.answer != 3

    def test_query_range_public(self, rng):
        casper = build_stack(rng)
        result = casper.query_range_public(0, radius=0.15)
        user = casper.anonymizer.location_of(0)
        targets = dict(casper.server.public_index.items())
        truth = {
            oid
            for oid, rect in targets.items()
            if rect.min_distance_to_point(user) <= 0.15
        }
        assert set(result.answer) == truth

    def test_count_users_brackets_truth(self, rng):
        casper = build_stack(rng)
        region = Rect(0.2, 0.2, 0.7, 0.7)
        result = casper.count_users_in(region)
        truth = sum(
            1
            for uid in range(250)
            if region.contains_point(casper.anonymizer.location_of(uid))
        )
        assert result.minimum <= truth <= result.maximum

    def test_update_location_refreshes_server(self, rng):
        casper = build_stack(rng)
        before = casper.server.private_index.rect_of(0)
        casper.update_location(0, Point(0.95, 0.95))
        after = casper.server.private_index.rect_of(0)
        assert after.contains_point(Point(0.95, 0.95))
        assert before != after or before.contains_point(Point(0.95, 0.95))

    def test_remove_user(self, rng):
        casper = build_stack(rng)
        casper.remove_user(0)
        assert 0 not in casper.anonymizer
        assert 0 not in casper.server.private_index

    def test_cold_start_stores_root_region(self):
        casper = Casper(UNIT, pyramid_height=6)
        casper.register_user("first", Point(0.5, 0.5), PrivacyProfile(k=10))
        assert casper.server.private_index.rect_of("first") == UNIT

    def test_basic_anonymizer_variant(self, rng):
        casper = build_stack(rng, anonymizer="basic")
        result = casper.query_nearest_public(0)
        assert result.answer is not None

    def test_invalid_anonymizer_kind(self):
        with pytest.raises(ValueError):
            Casper(UNIT, anonymizer="quantum")


class TestMobileClient:
    def test_full_client_lifecycle(self, rng):
        casper = Casper(UNIT, pyramid_height=7)
        casper.add_public_targets(
            {f"t{i}": p for i, p in enumerate(random_points(rng, 100))}
        )
        others = [
            MobileClient(casper, f"u{i}", p, PrivacyProfile(k=3))
            for i, p in enumerate(random_points(rng, 30))
        ]
        me = MobileClient(casper, "me", Point(0.5, 0.5), PrivacyProfile(k=5))
        nn = me.nearest_public()
        assert nn.answer is not None
        buddy = me.nearest_buddy()
        assert buddy.answer != "me"
        within = me.publics_within(0.2)
        assert isinstance(within.answer, list)
        me.move_to(Point(0.6, 0.6))
        assert me.location == Point(0.6, 0.6)
        me.change_profile(PrivacyProfile(k=2))
        assert me.profile.k == 2
        me.leave()
        assert "me" not in casper.anonymizer
        assert others[0].uid in casper.anonymizer

    def test_stricter_profile_larger_cloak(self, rng):
        """The privacy / quality-of-service dial of Section 3."""
        casper = Casper(UNIT, pyramid_height=8)
        casper.add_public_targets(
            {f"t{i}": p for i, p in enumerate(random_points(rng, 200))}
        )
        clients = [
            MobileClient(casper, i, p, PrivacyProfile(k=1))
            for i, p in enumerate(random_points(rng, 400))
        ]
        me = clients[0]
        relaxed = me.nearest_public()
        me.change_profile(PrivacyProfile(k=100))
        strict = me.nearest_public()
        assert strict.cloak.area > relaxed.cloak.area
        assert strict.candidate_count >= relaxed.candidate_count


class TestAdminQueries:
    def test_nearest_user_to_incident(self, rng):
        casper = build_stack(rng)
        result = casper.nearest_user_to(Point(0.5, 0.5))
        assert len(result) >= 1
        # Soundness: for the true positions, the winner is a candidate.
        truth = min(
            range(250),
            key=lambda uid: casper.anonymizer.location_of(uid).distance_to(
                Point(0.5, 0.5)
            ),
        )
        assert truth in result.oids()

    def test_nearest_user_with_probabilities(self, rng):
        casper = build_stack(rng)
        result = casper.nearest_user_to(Point(0.3, 0.7), estimate_probabilities=True)
        assert result.probabilities is not None
        assert result.most_likely() in result.oids()

    def test_density_map_accessible_via_facade(self, rng):
        casper = build_stack(rng)
        dmap = casper.density_map(resolution=6)
        assert dmap.total_expected == pytest.approx(250.0, abs=1e-6)


class TestAnonymizerInstances:
    def test_casper_accepts_prebuilt_anonymizer(self, rng):
        from repro.anonymizer import BasicAnonymizer

        prebuilt = BasicAnonymizer(UNIT, height=5)
        casper = Casper(UNIT, anonymizer=prebuilt)
        assert casper.anonymizer is prebuilt

    def test_bounds_mismatch_rejected(self):
        from repro.anonymizer import BasicAnonymizer

        prebuilt = BasicAnonymizer(Rect(0, 0, 2, 1), height=5)
        with pytest.raises(ValueError):
            Casper(UNIT, anonymizer=prebuilt)
