"""Tests for the private kNN extension of Algorithm 2."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.processor import (
    private_knn_over_private,
    private_knn_over_public,
    private_nn_over_public,
)
from repro.spatial import BruteForceIndex
from tests.conftest import random_points, random_rects


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


def true_knn(points, u: Point, k: int) -> set[int]:
    order = sorted(range(len(points)), key=lambda i: points[i].squared_distance_to(u))
    return set(order[:k])


class TestKnnPublic:
    @pytest.mark.parametrize("k", [1, 3, 10])
    @pytest.mark.parametrize("num_filters", [1, 4])
    def test_inclusiveness(self, rng, k, num_filters):
        points = random_points(rng, 400)
        idx = point_index(points)
        for _ in range(15):
            w, h = rng.uniform(0.03, 0.15, 2)
            x = float(rng.uniform(0, 1 - w))
            y = float(rng.uniform(0, 1 - h))
            area = Rect(x, y, x + float(w), y + float(h))
            cl = private_knn_over_public(idx, area, k, num_filters)
            oids = set(cl.oids())
            probes = list(area.vertices()) + [
                area.center,
                Point(
                    float(rng.uniform(area.x_min, area.x_max)),
                    float(rng.uniform(area.y_min, area.y_max)),
                ),
            ]
            for u in probes:
                assert true_knn(points, u, k) <= oids

    def test_refine_k_nearest_recovers_truth(self, rng):
        points = random_points(rng, 300)
        idx = point_index(points)
        area = Rect(0.4, 0.4, 0.55, 0.55)
        cl = private_knn_over_public(idx, area, 5)
        u = Point(0.47, 0.43)
        refined = cl.refine_k_nearest(u, 5)
        assert len(refined) == 5
        assert set(refined) == true_knn(points, u, 5)
        # Ordered nearest-first.
        dists = [points[oid].distance_to(u) for oid in refined]
        assert dists == sorted(dists)

    def test_larger_k_larger_region(self, rng):
        points = random_points(rng, 400)
        idx = point_index(points)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        small = private_knn_over_public(idx, area, 1)
        large = private_knn_over_public(idx, area, 20)
        assert large.search_region.area >= small.search_region.area
        assert len(large) >= len(small)

    def test_k_capped_at_dataset_size(self, rng):
        idx = point_index(random_points(rng, 5))
        cl = private_knn_over_public(idx, Rect(0.4, 0.4, 0.5, 0.5), k=50)
        assert len(cl) == 5

    def test_k1_more_conservative_than_algorithm2(self, rng):
        """The cone bound at k=1 contains Algorithm 2's bisector-based
        region (it is provably not smaller)."""
        points = random_points(rng, 500)
        idx = point_index(points)
        area = Rect(0.3, 0.6, 0.45, 0.7)
        knn_region = private_knn_over_public(idx, area, 1, 4).search_region
        alg2_region = private_nn_over_public(idx, area, 4).search_region
        assert knn_region.area >= alg2_region.area - 1e-12

    def test_validation(self, rng):
        idx = point_index(random_points(rng, 10))
        with pytest.raises(ValueError):
            private_knn_over_public(idx, Rect(0, 0, 0.1, 0.1), k=0)
        with pytest.raises(ValueError):
            private_knn_over_public(idx, Rect(0, 0, 0.1, 0.1), k=3, num_filters=2)
        with pytest.raises(EmptyDatasetError):
            private_knn_over_public(BruteForceIndex(), Rect(0, 0, 0.1, 0.1), 1)

    def test_refine_k_nearest_validation(self, rng):
        idx = point_index(random_points(rng, 10))
        cl = private_knn_over_public(idx, Rect(0.4, 0.4, 0.5, 0.5), 2)
        with pytest.raises(ValueError):
            cl.refine_k_nearest(Point(0.4, 0.4), 0)
        with pytest.raises(ValueError):
            cl.refine_k_nearest(Point(0.4, 0.4), 2, by="nope")


class TestKnnPrivate:
    @pytest.mark.parametrize("k", [1, 3])
    def test_inclusiveness_adversarial(self, rng, k):
        rects = random_rects(rng, 200, max_side=0.06)
        idx = rect_index(rects)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        cl = private_knn_over_private(idx, area, k)
        oids = set(cl.oids())
        for _ in range(25):
            u = Point(
                float(rng.uniform(area.x_min, area.x_max)),
                float(rng.uniform(area.y_min, area.y_max)),
            )
            actual = [
                Point(
                    float(rng.uniform(r.x_min, r.x_max)),
                    float(rng.uniform(r.y_min, r.y_max)),
                )
                for r in rects
            ]
            winners = sorted(
                range(len(rects)), key=lambda i: actual[i].squared_distance_to(u)
            )[:k]
            assert set(winners) <= oids

    def test_point_regions_match_public(self, rng):
        points = random_points(rng, 200)
        pub = point_index(points)
        priv = rect_index([Rect.point(p) for p in points])
        area = Rect(0.35, 0.5, 0.5, 0.6)
        cl_pub = private_knn_over_public(pub, area, 4, 4)
        cl_priv = private_knn_over_private(priv, area, 4, 4)
        assert set(cl_pub.oids()) == set(cl_priv.oids())


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(1, 8),
    ux=st.floats(0, 1),
    uy=st.floats(0, 1),
    nf=st.sampled_from([1, 4]),
)
def test_property_knn_inclusiveness(k, ux, uy, nf):
    rng = np.random.default_rng(123)
    points = random_points(rng, 150)
    idx = point_index(points)
    area = Rect(0.25, 0.4, 0.5, 0.6)
    cl = private_knn_over_public(idx, area, k, nf)
    u = Point(area.x_min + ux * area.width, area.y_min + uy * area.height)
    assert true_knn(points, u, k) <= set(cl.oids())
