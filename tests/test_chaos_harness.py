"""Tests for the chaos harness, the scenario registry and the CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.resilience import (
    CI_SCENARIOS,
    SCENARIOS,
    ChaosWorkload,
    FaultPlan,
    get_scenario,
    run_chaos,
)

SMALL = ChaosWorkload(users=10, targets=8, steps=40, continuous_queries=3)


class TestScenarioRegistry:
    def test_ci_scenarios_are_registered(self):
        for name in CI_SCENARIOS:
            assert name in SCENARIOS

    def test_get_scenario_reseeds_without_mutating_the_registry(self):
        plan = get_scenario("drop-heavy", seed=999)
        assert plan.seed == 999
        assert plan.drop == SCENARIOS["drop-heavy"].drop
        assert SCENARIOS["drop-heavy"].seed != 999

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown fault scenario"):
            get_scenario("nope")

    def test_calm_scenario_is_quiet(self):
        assert SCENARIOS["calm"].is_quiet


class TestWorkloadValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"users": 1},
            {"targets": 0},
            {"steps": 0},
            {"anonymizer": "quantum"},
            {"continuous_queries": 99},
            {"flush_every": 0},
        ],
    )
    def test_bad_workloads_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosWorkload(**kwargs)


class TestRunChaos:
    def test_calm_plan_matches_the_baseline_exactly(self):
        report = run_chaos(get_scenario("calm"), SMALL)
        assert report.ok
        assert report.runtime["faults_injected"] == 0
        slo = report.slo
        assert slo["match_ratio"] == 1.0
        assert slo["availability"] == 1.0
        assert slo["update_failures"] == 0
        assert slo["queries_degraded"] == 0

    @pytest.mark.parametrize("name", CI_SCENARIOS)
    def test_ci_scenarios_never_violate_privacy(self, name):
        report = run_chaos(get_scenario(name), SMALL)
        assert report.privacy_violations == 0
        assert report.ok

    def test_report_is_byte_deterministic(self):
        plan = get_scenario("flaky-everything")
        first = run_chaos(plan, SMALL).to_json()
        second = run_chaos(plan, SMALL).to_json()
        assert first == second

    def test_different_fault_seed_changes_the_trace(self):
        base = run_chaos(get_scenario("drop-heavy"), SMALL)
        reseeded = run_chaos(get_scenario("drop-heavy", seed=12345), SMALL)
        assert base.trace_digest != reseeded.trace_digest

    def test_report_json_shape(self):
        report = run_chaos(get_scenario("drop-heavy"), SMALL)
        payload = json.loads(report.to_json(indent=2))
        assert payload["scenario"] == "drop-heavy"
        assert payload["workload"]["users"] == SMALL.users
        assert set(payload["runtime"]["fault_counts"]) == {
            "drop", "duplicate", "delay", "reorder", "corrupt",
            "crash", "shard_crash", "worker_crash", "state_loss",
        }
        assert payload["slo"]["queries_total"] == (
            payload["slo"]["queries_answered"] + payload["slo"]["queries_degraded"]
        )

    def test_both_anonymizers_survive_chaos(self):
        for kind in ("basic", "adaptive"):
            workload = ChaosWorkload(
                users=10, targets=8, steps=40, continuous_queries=3,
                anonymizer=kind,
            )
            report = run_chaos(get_scenario("crash-restart"), workload)
            assert report.ok, kind


class TestChaosCli:
    def run_cli(self, *argv: str) -> int:
        from repro.__main__ import main

        return main(["chaos", *argv])

    def test_check_gate_passes_on_a_ci_scenario(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = self.run_cli(
            "--scenario", "drop-heavy", "--users", "10", "--targets", "8",
            "--steps", "40", "--check", "--out", str(out),
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "resilience gate OK" in captured.out
        payload = json.loads(out.read_text())
        assert payload["privacy_violations"] == 0

    def test_unknown_scenario_exits_2(self, capsys):
        assert self.run_cli("--scenario", "nope") == 2
        assert "available:" in capsys.readouterr().err

    def test_unreachable_slo_bound_fails_the_gate(self, capsys):
        code = self.run_cli(
            "--scenario", "crash-restart", "--users", "10", "--targets", "8",
            "--steps", "60", "--check", "--min-match-ratio", "1.01",
        )
        assert code == 1
        assert "GATE FAILURE" in capsys.readouterr().err
