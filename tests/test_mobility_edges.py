"""Edge cases of the mobility layer feeding the continuous monitor.

Trajectory traffic is only as trustworthy as its degenerate cases:
zero-length segments (a commuter dwelling at home), users parked across
many ticks, empty traces, and users deregistered and re-registered at a
tick boundary must all flow through ``Trace`` replay and the safe-region
monitor without spurious re-evaluations or stale answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.geometry import Point
from repro.mobility import (
    CommuterGenerator,
    LocationUpdate,
    Trace,
    synthetic_county_map,
)
from repro.server import Casper
from repro.workloads import drive_trace
from tests.conftest import UNIT, random_points


@pytest.fixture(scope="module")
def network():
    return synthetic_county_map(seed=5)


class TestTraceEdges:
    def test_empty_trace_roundtrip(self, tmp_path):
        trace = Trace(initial={}, ticks=[])
        path = tmp_path / "empty.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_users == 0
        assert loaded.num_ticks == 0
        assert loaded.num_updates == 0
        assert list(loaded.all_updates()) == []

    def test_empty_tick_batches_roundtrip(self, tmp_path):
        """A tick in which nobody reported (tick_sizes entry of 0) must
        survive serialization without shifting later batches."""
        p = Point(0.25, 0.75)
        trace = Trace(
            initial={0: p},
            ticks=[[], [LocationUpdate(0, Point(0.3, 0.75), 1.0)], []],
        )
        path = tmp_path / "gaps.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_ticks == 3
        assert [len(b) for b in loaded.ticks] == [0, 1, 0]
        assert loaded.ticks[1][0].uid == 0
        assert loaded.ticks[1][0].point == Point(0.3, 0.75)
        assert loaded.initial == {0: p}

    def test_zero_length_segments_roundtrip(self, tmp_path):
        """Zero-length movement (update to the current position) is a
        legitimate report, not something serialization may drop."""
        p = Point(0.5, 0.5)
        trace = Trace(
            initial={3: p},
            ticks=[[LocationUpdate(3, p, float(t))] for t in range(4)],
        )
        path = tmp_path / "parked.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_updates == 4
        assert all(b[0].point == p for b in loaded.ticks)


def build_parked_stack(num_users=20, num_targets=40, num_queries=4):
    rng = np.random.default_rng(11)
    casper = Casper(UNIT, pyramid_height=6, anonymizer="adaptive")
    positions = random_points(rng, num_users)
    for uid, p in enumerate(positions):
        casper.register_user(uid, p, PrivacyProfile(k=3))
    targets = {
        f"t{i}": p for i, p in enumerate(random_points(rng, num_targets))
    }
    casper.add_public_targets(targets)
    monitor = ContinuousQueryMonitor(casper)
    for uid in range(num_queries):
        monitor.register_knn(f"q{uid}", uid, k=2)
    return casper, monitor, positions, targets


class TestParkedUsers:
    def test_zero_length_segments_cause_no_evaluations(self):
        """A tick whose every move lands on the current position changes
        no cloak, so the monitor must do zero server work."""
        _casper, monitor, positions, _targets = build_parked_stack()
        before = {
            uid: monitor.candidates_of(f"q{uid}") for uid in range(4)
        }
        ticks = [
            [
                LocationUpdate(uid, positions[uid], float(t))
                for uid in range(len(positions))
            ]
            for t in range(6)
        ]
        report = drive_trace(monitor, ticks)
        assert report.ticks == 6
        assert report.evaluations == 0
        assert report.knn_evaluations == 0
        assert report.suppressed == 0
        assert report.validity_exits == 0
        for uid in range(4):
            assert monitor.candidates_of(f"q{uid}") is before[uid]

    def test_parked_queriers_survive_neighbours_moving(self):
        """Queriers parked across many ticks while *other* users wander:
        whatever cloak drift that causes, refined answers must equal a
        brute-force kNN at the parked position every tick."""
        rng = np.random.default_rng(13)
        _casper, monitor, positions, targets = build_parked_stack()
        wanderers = list(range(4, len(positions)))
        for t in range(8):
            moves = [
                (uid, p)
                for uid, p in zip(wanderers, random_points(rng, len(wanderers)))
            ]
            monitor.on_users_moved(moves)
            monitor.flush()
            for uid in range(4):
                u = positions[uid]
                refined = monitor.candidates_of(f"q{uid}").refine_k_nearest(
                    u, 2
                )
                truth = sorted(
                    targets, key=lambda oid: targets[oid].squared_distance_to(u)
                )[:2]
                assert sorted(str(o) for o in refined) == sorted(truth)

    def test_tick_boundary_re_registration(self):
        """Deregister a standing query, remove and re-add its user at a
        new position between ticks, re-register under the same id: the
        fresh registration must answer for the *new* position."""
        casper, monitor, _positions, targets = build_parked_stack()
        monitor.deregister("q0")
        assert monitor.num_queries == 3
        casper.remove_user(0)
        new_point = Point(0.91, 0.07)
        casper.register_user(0, new_point, PrivacyProfile(k=3))
        monitor.register_knn("q0", 0, k=2)
        refined = monitor.candidates_of("q0").refine_k_nearest(new_point, 2)
        truth = sorted(
            targets,
            key=lambda oid: targets[oid].squared_distance_to(new_point),
        )[:2]
        assert sorted(str(o) for o in refined) == sorted(truth)
        # And the re-registered query participates in later ticks.
        monitor.on_users_moved([(0, Point(0.12, 0.88))])
        monitor.flush()
        moved = monitor.candidates_of("q0").refine_k_nearest(
            Point(0.12, 0.88), 2
        )
        truth_moved = sorted(
            targets,
            key=lambda oid: targets[oid].squared_distance_to(Point(0.12, 0.88)),
        )[:2]
        assert sorted(str(o) for o in moved) == sorted(truth_moved)


class TestCommuterDegenerate:
    def test_long_dwell_emits_zero_length_segments(self, network):
        """Commuters still inside their initial dwell report their
        unchanged home position every tick."""
        gen = CommuterGenerator(
            network, 30, seed=8, dwell_range=(50.0, 60.0)
        )
        initial = gen.positions()
        for t in range(5):
            updates = gen.step(1.0)
            assert sorted(u.uid for u in updates) == list(range(30))
            assert all(u.point == initial[u.uid] for u in updates)

    def test_dwelling_population_through_monitor(self, network):
        """A fully-dwelling commuter population drives the monitor with
        zero evaluations — the whole trace is zero-length segments."""
        gen = CommuterGenerator(network, 30, seed=8, dwell_range=(50.0, 60.0))
        rng = np.random.default_rng(17)
        casper = Casper(UNIT, pyramid_height=6, anonymizer="adaptive")
        for uid, p in sorted(gen.positions().items()):
            casper.register_user(uid, p, PrivacyProfile(k=3))
        casper.add_public_targets(
            {f"t{i}": p for i, p in enumerate(random_points(rng, 50))}
        )
        monitor = ContinuousQueryMonitor(casper)
        for uid in range(5):
            monitor.register_knn(f"q{uid}", uid, k=2)
        ticks = [gen.step(1.0) for _ in range(6)]
        report = drive_trace(monitor, ticks)
        assert report.knn_evaluations == 0
        assert report.answer_changes == 0

    def test_zero_users(self, network):
        gen = CommuterGenerator(network, 0, seed=1)
        assert gen.positions() == {}
        assert gen.step(1.0) == []
