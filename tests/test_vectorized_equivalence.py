"""Vectorized-equivalence tests: the scalar pyramid is the oracle.

The structure-of-arrays backend (``vectorized=True``) must be a pure
*representation change*: for any operation stream, every cloak, count,
per-move cost, maintenance statistic, cache counter, and snapshot must
be bit-identical to the scalar reference implementation — across both
anonymizer kinds, shard counts 1/2/4/8, cross-backend snapshot/restore
mid-stream, the batched update path, and a worker crash over the real
process transport.  This generalizes the obs-on/off equivalence gate of
``test_observability_equivalence.py`` to the vectorized axis.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymizer import BasicAnonymizer, PrivacyProfile
from repro.anonymizer.adaptive import AdaptiveAnonymizer
from repro.errors import ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect
from repro.resilience import ChaosWorkload, get_scenario, run_chaos
from repro.sharding import ParallelShardedAnonymizer, make_sharded

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
HEIGHT = 6

FACTORIES = {
    "basic": lambda v: BasicAnonymizer(UNIT, height=HEIGHT, vectorized=v),
    "adaptive": lambda v: AdaptiveAnonymizer(UNIT, height=HEIGHT, vectorized=v),
}
for _n in (1, 2, 4, 8):
    FACTORIES[f"basic-shards{_n}"] = (
        lambda v, n=_n: make_sharded(
            UNIT, height=HEIGHT, num_shards=n, kind="basic", vectorized=v
        )
    )
    FACTORIES[f"adaptive-shards{_n}"] = (
        lambda v, n=_n: make_sharded(
            UNIT, height=HEIGHT, num_shards=n, kind="adaptive", vectorized=v
        )
    )


def cloak_fp(anonymizer, uid):
    try:
        region = anonymizer.cloak(uid)
    except ProfileUnsatisfiableError:
        return (uid, "unsatisfiable")
    return (uid, region.region.as_tuple(), region.achieved_k, region.cells)


def fingerprint(anonymizer, uids, probes):
    """Everything observable about the anonymizer's current state."""
    fp = [anonymizer.num_users]
    fp.append(
        [cloak_fp(anonymizer, uid) for uid in uids if uid in anonymizer]
    )
    fp.append([anonymizer.users_in_rect(rect) for rect in probes["rects"]])
    fp.append([anonymizer.cell_count(cell) for cell in probes["cells"]])
    fp.append(vars(anonymizer.stats).copy())
    cache_stats = getattr(anonymizer, "cache_stats", None)
    if cache_stats is not None:
        fp.append(cache_stats())
    else:
        cache = anonymizer.cloak_cache
        fp.append((cache.hits, cache.misses, cache.invalidations))
    return fp


def drive_stream(name, seed, *, swap_snapshots=True):
    """Run one seeded op stream through both backends in lockstep,
    comparing full fingerprints at every checkpoint."""
    scalar = FACTORIES[name](False)
    vectorized = FACTORIES[name](True)
    rng = np.random.default_rng(seed)
    uids = list(range(60))
    probes = {
        "rects": [Rect(0.1, 0.1, 0.6, 0.7), Rect(0.0, 0.0, 1.0, 1.0)],
        "cells": [
            scalar.grid.cell_of(Point(0.3, 0.3)),
            scalar.grid.cell_of(Point(0.8, 0.1), 2),
        ],
    }
    for uid in uids:
        point = Point(float(rng.uniform(0.01, 0.99)), float(rng.uniform(0.01, 0.99)))
        profile = PrivacyProfile(
            k=int(rng.integers(2, 8)), a_min=float(rng.uniform(0.0, 0.02))
        )
        scalar.register(uid, point, profile)
        vectorized.register(uid, point, profile)
    assert fingerprint(scalar, uids, probes) == fingerprint(
        vectorized, uids, probes
    )
    for tick in range(12):
        movers = rng.choice(len(uids), size=int(rng.integers(2, 25)), replace=False)
        batch = [
            (int(uid), Point(float(rng.uniform(0.01, 0.99)), float(rng.uniform(0.01, 0.99))))
            for uid in movers
            if int(uid) in scalar
        ]
        assert scalar.update_batch(batch) == vectorized.update_batch(batch)
        if tick % 4 == 1:
            victim = int(rng.integers(len(uids)))
            if victim in scalar:
                scalar.deregister(victim)
                vectorized.deregister(victim)
            subject = int(rng.integers(len(uids)))
            if subject in scalar:
                profile = PrivacyProfile(
                    k=int(rng.integers(2, 10)),
                    a_min=float(rng.uniform(0.0, 0.03)),
                )
                scalar.set_profile(subject, profile)
                vectorized.set_profile(subject, profile)
        if tick == 6 and swap_snapshots:
            # Cross-backend snapshot/restore: each backend restores the
            # *other's* snapshot (the canonical plain-dict format), then
            # the streams keep running in lockstep.
            scalar_snap = scalar.snapshot()
            vectorized_snap = vectorized.snapshot()
            scalar.restore(vectorized_snap)
            vectorized.restore(scalar_snap)
        assert fingerprint(scalar, uids, probes) == fingerprint(
            vectorized, uids, probes
        ), f"{name} diverged at tick {tick}"
        scalar.check_invariants()
        vectorized.check_invariants()


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_stream_equivalence(name) -> None:
    drive_stream(name, seed=101)


@pytest.mark.parametrize("shards", [2, 8])
def test_shard_restore_equivalence(shards) -> None:
    """Per-shard restore (the heal primitive) must reconcile both
    backends to the same state, including the purged-user list."""
    scalar = FACTORIES[f"basic-shards{shards}"](False)
    vectorized = FACTORIES[f"basic-shards{shards}"](True)
    rng = np.random.default_rng(7)
    for uid in range(50):
        point = Point(float(rng.uniform(0.01, 0.99)), float(rng.uniform(0.01, 0.99)))
        profile = PrivacyProfile(k=3)
        scalar.register(uid, point, profile)
        vectorized.register(uid, point, profile)
    victim = 1
    scalar_snap = scalar.snapshot_shard(victim)
    vectorized_snap = vectorized.snapshot_shard(victim)
    for uid in range(0, 50, 3):
        point = Point(float(rng.uniform(0.01, 0.99)), float(rng.uniform(0.01, 0.99)))
        scalar.update(uid, point)
        vectorized.update(uid, point)
    # Swap snapshots across backends: the wire format is shared.
    assert scalar.restore_shard(victim, vectorized_snap) == (
        vectorized.restore_shard(victim, scalar_snap)
    )
    for shard in range(shards):
        assert vectorized._cores[shard].counts == scalar._cores[shard].counts
        assert vectorized._cores[shard].gens == scalar._cores[shard].gens
    scalar.check_invariants()
    vectorized.check_invariants()


class TestErrorSemantics:
    def test_batch_failure_prefix_matches_scalar(self) -> None:
        """A batch with a failing move must leave both backends in the
        same prefix-applied state and raise the same error."""
        scalar = FACTORIES["basic"](False)
        vectorized = FACTORIES["basic"](True)
        for a in (scalar, vectorized):
            a.register("a", Point(0.2, 0.2), PrivacyProfile(k=2))
            a.register("b", Point(0.7, 0.7), PrivacyProfile(k=2))
        batch = [
            ("a", Point(0.4, 0.4)),
            ("ghost", Point(0.5, 0.5)),
            ("b", Point(0.6, 0.6)),
        ]
        with pytest.raises(UnknownUserError):
            scalar.update_batch(batch)
        with pytest.raises(UnknownUserError):
            vectorized.update_batch(batch)
        probes = {"rects": [UNIT], "cells": []}
        assert fingerprint(scalar, ["a", "b"], probes) == fingerprint(
            vectorized, ["a", "b"], probes
        )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["basic", "adaptive"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_random_streams(kind, seed) -> None:
    """Hypothesis-driven seeds over the full lockstep driver."""
    drive_stream(kind, seed=seed, swap_snapshots=(seed % 2 == 0))


class TestParallelWorkerCrash:
    def test_vectorized_workers_survive_crash_and_match_scalar_oracle(
        self,
    ) -> None:
        """Snapshot/restore round-trips through the real worker heal
        path: a vectorized parallel fleet loses a worker mid-stream and
        must still match the scalar in-process oracle bit for bit."""
        oracle = make_sharded(
            UNIT, height=HEIGHT, num_shards=4, kind="basic", vectorized=False
        )
        fleet = ParallelShardedAnonymizer(
            UNIT, height=HEIGHT, num_shards=4, kind="basic", vectorized=True
        )
        try:
            rng = np.random.default_rng(23)
            uids = list(range(40))
            for uid in uids:
                point = Point(
                    float(rng.uniform(0.01, 0.99)), float(rng.uniform(0.01, 0.99))
                )
                profile = PrivacyProfile(k=3)
                oracle.register(uid, point, profile)
                fleet.register(uid, point, profile)
            for phase in range(3):
                batch = [
                    (uid, Point(
                        float(rng.uniform(0.01, 0.99)),
                        float(rng.uniform(0.01, 0.99)),
                    ))
                    for uid in uids
                ]
                assert oracle.update_batch(batch) == fleet.update_batch(batch)
                if phase == 1:
                    fleet.crash_worker(2)  # mid-stream kill + heal
                assert [cloak_fp(oracle, uid) for uid in uids] == [
                    cloak_fp(fleet, uid) for uid in uids
                ]
            fleet.check_invariants()
            oracle.check_invariants()
        finally:
            fleet.close()

    def test_worker_crash_chaos_report_is_backend_independent(
        self, monkeypatch
    ) -> None:
        """The full worker-crash chaos scenario produces a byte-equal
        report whether the fleet runs scalar or vectorized replicas."""
        workload = ChaosWorkload(
            users=10, targets=8, steps=60, continuous_queries=3, shards=4,
            parallel=True, anonymizer="basic",
        )
        plan = get_scenario("worker-crash")
        monkeypatch.setenv("REPRO_VECTORIZED", "0")
        scalar_report = run_chaos(plan, workload).to_json()
        monkeypatch.setenv("REPRO_VECTORIZED", "1")
        vectorized_report = run_chaos(plan, workload).to_json()
        assert json.loads(vectorized_report)["privacy_violations"] == 0
        assert scalar_report == vectorized_report
