"""Tests for the city-simulation driver."""

from __future__ import annotations

import pytest

from repro.simulation import CitySimulation, SimulationConfig


def tiny_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_users=200,
        num_targets=120,
        pyramid_height=7,
        queries_per_tick=10,
        audit_sample=2,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_users=0)
        with pytest.raises(ValueError):
            SimulationConfig(num_targets=0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SimulationConfig(queries_per_tick=-1)
        with pytest.raises(ValueError):
            SimulationConfig(audit_sample=-1)

    def test_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            SimulationConfig(query_mix=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            SimulationConfig(query_mix=(1.0, 1.0))  # type: ignore[arg-type]


class TestSimulationRun:
    def test_run_produces_tick_reports(self):
        sim = CitySimulation(tiny_config())
        report = sim.run(3)
        assert len(report.ticks) == 3
        assert [t.tick for t in report.ticks] == [0, 1, 2]
        assert all(t.num_updates == 200 for t in report.ticks)
        assert report.total_queries > 0

    def test_audits_all_pass(self):
        """The built-in oracle audit is the headline correctness check:
        every Casper NN answer is exact."""
        sim = CitySimulation(tiny_config(audit_sample=5))
        report = sim.run(4)
        assert report.total_audits_failed == 0
        assert sum(t.audits_passed for t in report.ticks) == 20

    def test_deterministic_for_seed(self):
        a = CitySimulation(tiny_config()).run(2)
        b = CitySimulation(tiny_config()).run(2)
        assert [t.candidate_total for t in a.ticks] == [
            t.candidate_total for t in b.ticks
        ]
        assert a.avg_candidates == b.avg_candidates

    def test_basic_anonymizer_variant(self):
        sim = CitySimulation(tiny_config(anonymizer="basic"))
        report = sim.run(2)
        assert report.total_audits_failed == 0

    def test_query_mix_respected(self):
        """A mix of only range queries produces list answers and no
        unsatisfiable NN cloaks beyond those the profile causes."""
        sim = CitySimulation(tiny_config(query_mix=(0.0, 0.0, 1.0)))
        report = sim.run(2)
        assert report.total_queries > 0

    def test_strict_profiles_increase_candidates(self):
        relaxed = CitySimulation(tiny_config(k_range=(1, 5))).run(2)
        strict = CitySimulation(tiny_config(k_range=(60, 90))).run(2)
        assert strict.avg_candidates > relaxed.avg_candidates

    def test_tick_report_metrics_consistent(self):
        sim = CitySimulation(tiny_config())
        tick = sim.step()
        if tick.queries:
            assert tick.avg_candidates == pytest.approx(
                tick.candidate_total / tick.queries
            )
            assert tick.avg_end_to_end_seconds > 0
        zero = sim.run(0)
        assert zero.total_queries == 0
        assert zero.avg_candidates == 0.0

    def test_negative_ticks_rejected(self):
        sim = CitySimulation(tiny_config())
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_summary_mentions_key_numbers(self):
        report = CitySimulation(tiny_config()).run(2)
        text = report.summary()
        assert "200 users" in text
        assert "audits" in text


class TestPopulationChurn:
    def test_churn_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(arrivals_per_tick=-1)
        with pytest.raises(ValueError):
            SimulationConfig(departures_per_tick=-0.5)

    def test_arrivals_grow_population(self):
        sim = CitySimulation(
            tiny_config(arrivals_per_tick=10.0, departures_per_tick=0.0)
        )
        report = sim.run(4)
        arrivals = sum(t.arrivals for t in report.ticks)
        assert arrivals > 0
        assert len(sim.active_users) == 200 + arrivals
        assert sim.casper.anonymizer.num_users == 200 + arrivals

    def test_departures_shrink_population(self):
        sim = CitySimulation(
            tiny_config(arrivals_per_tick=0.0, departures_per_tick=10.0)
        )
        report = sim.run(4)
        departures = sum(t.departures for t in report.ticks)
        assert departures > 0
        assert len(sim.active_users) == 200 - departures
        assert sim.casper.server.num_private == 200 - departures

    def test_audits_pass_under_churn(self):
        sim = CitySimulation(
            tiny_config(
                arrivals_per_tick=8.0,
                departures_per_tick=8.0,
                audit_sample=4,
            )
        )
        report = sim.run(5)
        assert report.total_audits_failed == 0
        sim.casper.anonymizer.check_invariants()

    def test_departures_never_empty_population(self):
        sim = CitySimulation(
            tiny_config(num_users=12, departures_per_tick=50.0, queries_per_tick=2)
        )
        sim.run(5)
        assert len(sim.active_users) >= 10  # floor enforced
