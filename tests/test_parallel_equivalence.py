"""The process-pool contract: byte-identical to the in-process fleets.

``ParallelShardedAnonymizer`` is a *transport* change, not a semantic
one — for any seed and shard count the worker processes must emit
exactly the cloaks, update costs, maintenance counters and cache
counters of the in-process sharded anonymizers (which themselves match
the single-pyramid implementations, see
``test_sharding_equivalence.py``).  Every test drives an in-process
fleet and a parallel fleet through identical operation streams and
compares full fingerprints, across shards ∈ {1, 2, 4, 8} and both
anonymizer kinds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.anonymizer import PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point
from repro.sharding import make_sharded
from repro.utils.rng import ensure_rng
from tests.conftest import UNIT

HEIGHT = 5
SHARD_COUNTS = (1, 2, 4, 8)
NUM_USERS = 24


def _script(seed: int, steps: int = 80):
    """A deterministic mixed operation stream over ``NUM_USERS`` users."""
    rng = ensure_rng(seed)
    ops = []
    for uid in range(NUM_USERS):
        ops.append(
            (
                "register",
                uid,
                Point(float(rng.random()), float(rng.random())),
                PrivacyProfile(k=int(rng.integers(1, 10))),
            )
        )
    for _ in range(steps):
        choice = float(rng.random())
        uid = int(rng.integers(NUM_USERS))
        if choice < 0.45:
            ops.append(
                ("move", uid, Point(float(rng.random()), float(rng.random())))
            )
        elif choice < 0.85:
            ops.append(("cloak", uid))
        else:
            ops.append(
                ("profile", uid, PrivacyProfile(k=int(rng.integers(1, 12))))
            )
    return ops


def _cloak_bytes(anonymizer, uid):
    try:
        region = anonymizer.cloak(uid)
    except ProfileUnsatisfiableError:
        return "unsatisfiable"
    return (region.region.as_tuple(), region.achieved_k, region.cells)


def _drive(kind: str, ops, crash_at: int | None = None) -> None:
    """Replay ``ops`` lockstep on in-process and parallel fleets."""
    pairs = []
    try:
        for n in SHARD_COUNTS:
            inproc = make_sharded(UNIT, height=HEIGHT, num_shards=n, kind=kind)
            parallel = make_sharded(
                UNIT, height=HEIGHT, num_shards=n, kind=kind, parallel=True
            )
            pairs.append((inproc, parallel))
        for step, op in enumerate(ops):
            if crash_at is not None and step == crash_at:
                for _inproc, parallel in pairs:
                    parallel.crash_worker(step % parallel.num_shards)
            if op[0] == "register":
                _, uid, point, profile = op
                for inproc, parallel in pairs:
                    inproc.register(uid, point, profile)
                    parallel.register(uid, point, profile)
            elif op[0] == "move":
                _, uid, point = op
                costs = set()
                for inproc, parallel in pairs:
                    costs.add(inproc.update(uid, point))
                    costs.add(parallel.update(uid, point))
                assert len(costs) == 1, f"update cost diverged at {step}"
            elif op[0] == "profile":
                _, uid, profile = op
                for inproc, parallel in pairs:
                    inproc.set_profile(uid, profile)
                    parallel.set_profile(uid, profile)
            else:  # cloak
                _, uid = op
                cloaks = set()
                for inproc, parallel in pairs:
                    cloaks.add(_cloak_bytes(inproc, uid))
                    cloaks.add(_cloak_bytes(parallel, uid))
                assert len(cloaks) == 1, f"cloak diverged at step {step}"
        for inproc, parallel in pairs:
            inproc.check_invariants()
            parallel.check_invariants()
            if kind == "basic" or crash_at is None:
                # Basic counters are parent-side and survive any crash;
                # adaptive counters live in the workers, so a heal that
                # rebuilds worker 0 legitimately resets its history-
                # dependent tallies (answers above still had to match).
                assert dataclasses.asdict(parallel.stats) == (
                    dataclasses.asdict(inproc.stats)
                )
            assert parallel.num_users == inproc.num_users
            assert parallel.shard_occupancy() == inproc.shard_occupancy()
            if kind == "basic" and crash_at is None:
                # Cache counters live in the workers and ride the wire;
                # a heal rebuilds fresh caches, so only uncrashed runs
                # compare them.
                assert parallel.cache_stats() == inproc.cache_stats()
            if kind == "adaptive" and crash_at is None:
                assert parallel.num_maintained_cells == (
                    inproc.num_maintained_cells
                )
    finally:
        for _inproc, parallel in pairs:
            parallel.close()


class TestSeededEquivalence:
    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_mixed_stream_is_byte_identical(self, kind) -> None:
        _drive(kind, _script(seed=11))

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_equivalence_survives_a_worker_crash(self, kind) -> None:
        # Kill a worker mid-stream on every parallel fleet; the healed
        # replacement must keep answering byte-identically.
        _drive(kind, _script(seed=23, steps=40), crash_at=30)


class TestBatchedPaths:
    """The batched entry points must equal their one-at-a-time loops."""

    def test_cloak_many_matches_sequential_cloaks(self) -> None:
        ops = _script(seed=7, steps=0)
        fleet = make_sharded(
            UNIT, height=HEIGHT, num_shards=4, kind="basic", parallel=True
        )
        reference = make_sharded(UNIT, height=HEIGHT, num_shards=4, kind="basic")
        try:
            for op in ops:
                _, uid, point, profile = op
                fleet.register(uid, point, profile)
                reference.register(uid, point, profile)
            uids = [uid % NUM_USERS for uid in range(2 * NUM_USERS)]
            batched = fleet.cloak_many(uids)
            singles = [reference.cloak(uid) for uid in uids]
            assert [
                (r.region.as_tuple(), r.achieved_k, r.cells) for r in batched
            ] == [
                (r.region.as_tuple(), r.achieved_k, r.cells) for r in singles
            ]
        finally:
            fleet.close()

    def test_update_batch_matches_sequential_updates(self) -> None:
        ops = _script(seed=9, steps=0)
        rng = ensure_rng(31)
        fleet = make_sharded(
            UNIT, height=HEIGHT, num_shards=4, kind="basic", parallel=True
        )
        reference = make_sharded(UNIT, height=HEIGHT, num_shards=4, kind="basic")
        try:
            for op in ops:
                _, uid, point, profile = op
                fleet.register(uid, point, profile)
                reference.register(uid, point, profile)
            moves = [
                (
                    int(rng.integers(NUM_USERS)),
                    Point(float(rng.random()), float(rng.random())),
                )
                for _ in range(60)
            ]
            batched = fleet.update_batch(moves)
            singles = [reference.update(uid, point) for uid, point in moves]
            assert batched == singles
            assert dataclasses.asdict(fleet.stats) == (
                dataclasses.asdict(reference.stats)
            )
        finally:
            fleet.close()
