"""casperlint over the real repository.

These are the gate tests the CI lint job mirrors:

* ``src/repro`` + ``tools`` are clean under the default configuration
  (every finding fixed, not baselined);
* the committed baseline is consistent (no stale entries);
* the privacy boundary actually trips: a hypothetical exact-location
  import inside ``repro.processor`` is caught by CSP001, both directly
  and through a trusted helper module.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, LintConfig, Project, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def repo_project() -> Project:
    return Project.load(REPO_ROOT, ("src/repro", "tools"))


def repo_config() -> LintConfig:
    return LintConfig.from_pyproject(REPO_ROOT)


def test_repo_is_clean_under_default_config() -> None:
    result = run_lint(repo_project(), repo_config())
    baseline = Baseline.load(REPO_ROOT / repo_config().baseline_path)
    match = baseline.match(result.findings)
    assert match.new == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in match.new
    )


def test_committed_baseline_has_no_stale_entries() -> None:
    result = run_lint(repo_project(), repo_config())
    baseline = Baseline.load(REPO_ROOT / repo_config().baseline_path)
    match = baseline.match(result.findings)
    assert match.stale == []


def test_repo_scan_covers_the_package_and_tools() -> None:
    project = repo_project()
    assert "repro.processor.knn" in project.modules
    assert "repro.anonymizer.basic" in project.modules
    assert "tools.bench" in project.modules


def test_injected_exact_location_import_is_caught() -> None:
    """ISSUE acceptance: `from repro.workloads import ...` inside
    src/repro/processor/ must trip CSP001."""
    project = repo_project()
    project.add_virtual_module(
        "repro.processor._evil",
        "from repro.workloads import random_queries\n"
        "def peek():\n"
        "    return random_queries\n",
        rel_path="src/repro/processor/_evil.py",
    )
    result = run_lint(project, repo_config())
    hits = [
        f
        for f in result.findings
        if f.rule == "CSP001" and f.path == "src/repro/processor/_evil.py"
    ]
    assert len(hits) == 1
    assert "repro.workloads" in hits[0].message


def test_injected_anonymizer_internal_import_is_caught() -> None:
    project = repo_project()
    project.add_virtual_module(
        "repro.server._peek",
        "from repro.anonymizer.basic import BasicAnonymizer\n",
        rel_path="src/repro/server/_peek.py",
    )
    result = run_lint(project, repo_config())
    assert any(
        f.rule == "CSP001" and f.path == "src/repro/server/_peek.py"
        for f in result.findings
    )


def test_injected_transitive_leak_is_caught() -> None:
    """A trusted helper that touches workloads taints its importers."""
    project = repo_project()
    project.add_virtual_module(
        "repro.utils._leak",
        "import repro.workloads\n",
        rel_path="src/repro/utils/_leak.py",
    )
    project.add_virtual_module(
        "repro.processor._evil2",
        "import repro.utils._leak\n",
        rel_path="src/repro/processor/_evil2.py",
    )
    result = run_lint(project, repo_config())
    hits = [
        f
        for f in result.findings
        if f.rule == "CSP001" and f.path == "src/repro/processor/_evil2.py"
    ]
    assert len(hits) == 1
    assert "repro.utils._leak -> repro.workloads" in hits[0].message


def test_safe_names_still_cross_the_boundary() -> None:
    """The sanctioned channel must stay open: CloakedRegion/PrivacyProfile
    imports in a processor module are not violations."""
    project = repo_project()
    project.add_virtual_module(
        "repro.processor._ok",
        "from repro.anonymizer import CloakedRegion, PrivacyProfile\n",
        rel_path="src/repro/processor/_ok.py",
    )
    result = run_lint(project, repo_config())
    assert not any(
        f.path == "src/repro/processor/_ok.py" for f in result.findings
    )


def test_facade_suppression_is_justified_and_unique() -> None:
    """Exactly twelve inline suppressions exist in the tree: three
    CSP001 in the Casper facade (the trusted anonymizer wiring, the
    sharded runtime, and the typing-only resilience-runtime import),
    all with the same trusted-facade justification, two CSP006 in the
    worker pool (an exception serialized into an RE_ERROR wire reply
    the parent re-raises, and the reap-everything teardown path), one
    CSP010 in the front door (the remaining ``_apply`` dispatch after
    the chaos ``hang`` op is intercepted and awaited), and six CSP004
    in the adaptive invariant audits — the single anonymizer's
    ``check_invariants`` and the shared fleet audit in
    ``sharding/invariants.py`` (the gate
    table is asserted to be a *bit-copy* of the user records —
    epsilon-tolerant comparison would mask exactly the drift the audit
    exists to catch)."""
    result = run_lint(repo_project(), repo_config())
    assert result.suppressed == 12
    facade = (REPO_ROOT / "src/repro/server/casper.py").read_text()
    assert facade.count("casperlint: ignore[CSP001] trusted facade") == 3
    workers = (REPO_ROOT / "src/repro/sharding/workers.py").read_text()
    assert workers.count("casperlint: ignore[CSP006]") == 2
    frontdoor = (REPO_ROOT / "src/repro/sharding/frontdoor.py").read_text()
    assert frontdoor.count("casperlint: ignore[CSP010]") == 1
    adaptive = (REPO_ROOT / "src/repro/anonymizer/adaptive.py").read_text()
    assert adaptive.count("casperlint: ignore[CSP004] bit-copy audit") == 3
    sharded = (REPO_ROOT / "src/repro/sharding/invariants.py").read_text()
    assert sharded.count("casperlint: ignore[CSP004] bit-copy audit") == 3


def test_repo_is_clean_under_the_dataflow_rules() -> None:
    """ISSUE acceptance: CSP009-CSP013 run repo-clean (findings fixed,
    never baselined) and actually analyzed the parallel runtime."""
    config = repo_config()
    result = run_lint(repo_project(), config)
    assert not any(
        f.rule in config.never_baseline for f in result.findings
    ), "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}"
        for f in result.findings
        if f.rule in config.never_baseline
    )
    assert {"CSP009", "CSP010", "CSP011", "CSP012", "CSP013"} <= set(
        result.rules_run
    )


def test_injected_async_blocking_call_is_caught() -> None:
    """A time.sleep inside a hypothetical async handler trips CSP010."""
    project = repo_project()
    project.add_virtual_module(
        "repro.sharding._lazyloop",
        "import time\n"
        "async def handle() -> None:\n"
        "    time.sleep(0.1)\n",
        rel_path="src/repro/sharding/_lazyloop.py",
    )
    result = run_lint(project, repo_config())
    assert any(
        f.rule == "CSP010" and f.path == "src/repro/sharding/_lazyloop.py"
        for f in result.findings
    )


def test_injected_pickle_import_outside_boundary_is_caught() -> None:
    """Raw pickle outside pickle_boundary_modules trips CSP011."""
    project = repo_project()
    project.add_virtual_module(
        "repro.server._rawpickle",
        "import pickle\n",
        rel_path="src/repro/server/_rawpickle.py",
    )
    result = run_lint(project, repo_config())
    assert any(
        f.rule == "CSP011" and f.path == "src/repro/server/_rawpickle.py"
        for f in result.findings
    )


def test_injected_dead_opcode_is_caught() -> None:
    """An OP_ constant with no decoder branch trips CSP013."""
    project = repo_project()
    project.add_virtual_module(
        "repro.messages.ghost",
        "OP_GHOST = 99\n",
        rel_path="src/repro/messages/ghost.py",
    )
    result = run_lint(project, repo_config())
    assert any(
        f.rule == "CSP013"
        and f.path == "src/repro/messages/ghost.py"
        and "OP_GHOST" in f.message
        for f in result.findings
    )


def test_spatial_indexes_satisfy_the_contract_rule() -> None:
    """CSP003 sees every concrete index and none violates the contract."""
    project = repo_project()
    result = run_lint(project, repo_config())
    assert not any(f.rule == "CSP003" for f in result.findings)
    # sanity: the rule is not trivially passing because it found no classes
    import ast

    subclasses = []
    for name in (
        "repro.spatial.rtree",
        "repro.spatial.grid",
        "repro.spatial.quadtree",
        "repro.spatial.kdtree",
        "repro.spatial.bruteforce",
    ):
        info = project.modules[name]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef) and any(
                getattr(b, "id", None) == "SpatialIndex" for b in node.bases
            ):
                subclasses.append(node.name)
    assert len(subclasses) >= 5
