"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed
end-to-end (their ``main()`` is imported and run) so documentation code
cannot rot silently.
"""

from __future__ import annotations

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in ALL_EXAMPLES}
    assert {
        "quickstart",
        "store_finder",
        "buddy_finder",
        "traffic_dashboard",
        "privacy_tradeoff",
        "continuous_monitor",
        "privacy_audit",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path: pathlib.Path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", ["quickstart", "buddy_finder"])
def test_fast_examples_run(name: str, capsys):
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
