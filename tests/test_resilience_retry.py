"""Tests for RetryPolicy (repro.resilience.retry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.retry import RetryPolicy


def fixed_rng(value: float = 0.0) -> np.random.Generator:
    class _Fixed:
        def random(self):
            return value

    return _Fixed()  # duck-typed: backoff only calls .random()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -0.5},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1, np.random.default_rng(0))


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0, jitter=0.0)
        rng = fixed_rng()
        delays = [policy.backoff(n, rng) for n in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5, jitter=0.0)
        assert policy.backoff(5, fixed_rng()) == pytest.approx(2.5)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=10.0, jitter=0.5)
        rng = np.random.default_rng(7)
        for n in range(50):
            delay = policy.backoff(0, rng)
            assert 1.0 <= delay < 1.5

    def test_deterministic_given_seeded_stream(self):
        policy = RetryPolicy()
        a = [policy.backoff(n, np.random.default_rng(3)) for n in range(3)]
        b = [policy.backoff(n, np.random.default_rng(3)) for n in range(3)]
        assert a == b

    def test_schedule_yields_max_attempts_minus_one_delays(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(list(policy.schedule(np.random.default_rng(0)))) == 3

    def test_none_policy_is_single_shot(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert list(policy.schedule(np.random.default_rng(0))) == []
