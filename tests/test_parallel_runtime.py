"""Lifecycle, supervision and transport tests for the process pool.

Covers what the equivalence suite does not: the ``WorkerPool``
supervisor itself, hang-timeout detection and healing, exception-safe
shutdown through the ``Casper`` facade, and the asyncio socket front
door speaking the same frames as the pipes.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.server import Casper
from repro.sharding import make_sharded
from repro.sharding.frontdoor import ShardFrontDoor
from repro.sharding.wire import (
    KIND_NACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    encode_frame,
    decode_response,
    op_cloak,
    op_hang,
    op_ping,
    op_register,
)
from repro.messages import ShardEnvelope
from tests.conftest import UNIT

PROFILE = PrivacyProfile(k=2)


def _populate(anonymizer, n: int = 12) -> None:
    for uid in range(n):
        anonymizer.register(
            uid, Point((uid % 4) / 4 + 0.05, (uid // 4 % 4) / 4 + 0.05), PROFILE
        )


class TestWorkerPool:
    def test_spawn_kill_and_shutdown_are_idempotent(self) -> None:
        fleet = make_sharded(UNIT, height=4, num_shards=2, parallel=True)
        pool = fleet._pool
        try:
            assert pool.num_workers == 2
            assert pool.alive(0) and pool.alive(1)
            pool.kill(0)
            assert not pool.alive(0)
            pool.kill(0)  # idempotent
            with pytest.raises(RuntimeError, match="no live worker"):
                pool.conn(0)
            pool.spawn(0)
            assert pool.alive(0)
        finally:
            fleet.close()
        assert not pool.alive(0) and not pool.alive(1)
        pool.shutdown()  # safe to repeat

    def test_close_reaps_every_process(self) -> None:
        before = len(multiprocessing.active_children())
        fleet = make_sharded(UNIT, height=4, num_shards=4, parallel=True)
        _populate(fleet)
        assert fleet.ping()
        assert len(multiprocessing.active_children()) == before + 4
        fleet.close()
        fleet.close()  # idempotent
        assert len(multiprocessing.active_children()) == before

    def test_operations_after_close_raise(self) -> None:
        fleet = make_sharded(UNIT, height=4, num_shards=2, parallel=True)
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.register(1, Point(0.5, 0.5), PROFILE)


class TestHangDetection:
    def test_hung_worker_is_declared_dead_and_healed(self) -> None:
        from repro.sharding.workers import ParallelShardedAnonymizer

        fleet = ParallelShardedAnonymizer(
            UNIT, height=4, num_shards=2, hang_timeout=0.4
        )
        try:
            _populate(fleet)
            reference = fleet.cloak(5)
            # A worker stuck longer than the hang timeout is killed and
            # rebuilt; the op itself reports no result (None), reads
            # re-issued after the heal answer normally.
            fleet._enqueue(0, op_hang(30.0), "ack")
            results = fleet._flush_shard(0)
            assert results == [None]
            assert fleet.ping()
            healed = fleet.cloak(5)
            assert healed == reference
        finally:
            fleet.close()


class TestCasperFacade:
    def test_context_manager_closes_the_pool(self) -> None:
        before = len(multiprocessing.active_children())
        with Casper(UNIT, pyramid_height=5, shards=2, parallel=True) as casper:
            casper.register_user(1, Point(0.3, 0.3), PROFILE)
            casper.register_user(2, Point(0.31, 0.32), PROFILE)
            assert casper.cloak_for(1).achieved_k >= 2
            assert len(multiprocessing.active_children()) == before + 2
        assert len(multiprocessing.active_children()) == before

    def test_close_runs_even_when_the_body_raises(self) -> None:
        before = len(multiprocessing.active_children())
        with pytest.raises(RuntimeError, match="boom"):
            with Casper(UNIT, pyramid_height=5, shards=2, parallel=True):
                raise RuntimeError("boom")
        assert len(multiprocessing.active_children()) == before

    def test_parallel_conflicts_with_anonymizer_instances(self) -> None:
        from repro.anonymizer import BasicAnonymizer

        instance = BasicAnonymizer(UNIT, height=5)
        with pytest.raises(ValueError, match="parallel"):
            Casper(UNIT, anonymizer=instance, parallel=True)

    def test_close_without_parallel_is_a_no_op(self) -> None:
        casper = Casper(UNIT, pyramid_height=5)
        casper.register_user(1, Point(0.5, 0.5), PROFILE)
        casper.close()
        casper.close()


class TestFrontDoor:
    """The socket transport speaks the identical frame protocol."""

    @staticmethod
    async def _roundtrip(address, frames):
        reader, writer = await asyncio.open_connection(*address)
        decoder = FrameDecoder()
        replies = []
        try:
            for frame in frames:
                writer.write(frame)
                await writer.drain()
                while True:
                    data = await asyncio.wait_for(reader.read(65536), 5.0)
                    assert data, "server closed mid-exchange"
                    done = decoder.feed(data)
                    if done:
                        replies.extend(done)
                        break
        finally:
            writer.close()
            await writer.wait_closed()
        return replies

    def test_register_and_cloak_over_tcp(self) -> None:
        anonymizer = make_sharded(UNIT, height=5, num_shards=1, kind="basic")
        reference = make_sharded(UNIT, height=5, num_shards=1, kind="basic")
        for uid in range(8):
            reference.register(uid, Point(0.4 + uid / 100, 0.5), PROFILE)

        async def scenario():
            async with ShardFrontDoor(anonymizer) as door:
                ops = [
                    op_register(uid, Point(0.4 + uid / 100, 0.5), PROFILE)
                    for uid in range(8)
                ]
                request = encode_frame(
                    KIND_REQUEST, 1, [ShardEnvelope(0, op) for op in ops]
                )
                cloak = encode_frame(
                    KIND_REQUEST, 2, [ShardEnvelope(0, op_cloak(3))]
                )
                return await self._roundtrip(door.address, [request, cloak])

        first, second = asyncio.run(scenario())
        assert first.kind == KIND_RESPONSE and first.seq == 1
        assert all(
            decode_response(e.payload) == ("ack",) for e in first.envelopes
        )
        name, region = decode_response(second.envelopes[0].payload)
        assert name == "cloak"
        assert region == reference.cloak(3)

    def test_duplicate_sequence_replays_the_cached_reply(self) -> None:
        anonymizer = make_sharded(UNIT, height=5, num_shards=1, kind="basic")

        async def scenario():
            async with ShardFrontDoor(anonymizer) as door:
                ping = encode_frame(
                    KIND_REQUEST, 9, [ShardEnvelope(0, op_ping())]
                )
                return await self._roundtrip(door.address, [ping, ping])

        first, second = asyncio.run(scenario())
        # Same seq twice: the reply is replayed, the op not re-applied.
        assert first == second and first.seq == 9

    def test_corrupt_stream_gets_a_nack_and_a_close(self) -> None:
        anonymizer = make_sharded(UNIT, height=5, num_shards=1, kind="basic")

        async def scenario():
            async with ShardFrontDoor(anonymizer) as door:
                reader, writer = await asyncio.open_connection(*door.address)
                try:
                    writer.write(b"GARBAGEGARBAGEGARBAGE")
                    await writer.drain()
                    data = await asyncio.wait_for(reader.read(65536), 5.0)
                    frames = FrameDecoder().feed(data)
                    eof = await asyncio.wait_for(reader.read(65536), 5.0)
                finally:
                    writer.close()
                    await writer.wait_closed()
                return frames, eof

        frames, eof = asyncio.run(scenario())
        assert len(frames) == 1
        assert frames[0].kind == KIND_NACK
        assert eof == b""  # desynchronized peers must reconnect
