"""Tests for the evaluation harness: result containers and experiments.

Each experiment runs at a miniature scale and is checked for structural
sanity plus — where a run this small is statistically stable — the
paper's qualitative trends.
"""

from __future__ import annotations

import math

import pytest

from repro.evaluation.experiments import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
)
from repro.evaluation.experiments.common import PAPER, SMALL, TINY, active_scale
from repro.evaluation.results import ExperimentResult, Series


class TestResultContainers:
    def test_add_series_validates_length(self):
        result = ExperimentResult("F", "t", "x", "y", [1, 2, 3])
        with pytest.raises(ValueError):
            result.add_series("s", [1.0, 2.0])

    def test_series_by_label(self):
        result = ExperimentResult("F", "t", "x", "y", [1, 2])
        result.add_series("alpha", [1.0, 2.0])
        assert result.series_by_label("alpha").values == [1.0, 2.0]
        with pytest.raises(KeyError):
            result.series_by_label("beta")

    def test_format_table_contains_everything(self):
        result = ExperimentResult(
            "Figure X", "demo", "size", "seconds", [10, 20], notes="hello"
        )
        result.add_series("fast", [0.001, 0.002])
        result.add_series("slow", [1234.5, 2000.0])
        table = result.format_table()
        assert "Figure X" in table
        assert "size" in table and "fast" in table and "slow" in table
        assert "hello" in table
        assert "1,234" in table  # thousands formatting
        assert "0.001000" in table  # sub-unit formatting

    def test_series_coerces_floats(self):
        s = Series("s", [1, 2])
        assert s.values == [1.0, 2.0]

    def test_scale_presets(self, monkeypatch):
        monkeypatch.delenv("CASPER_BENCH_SCALE", raising=False)
        assert active_scale() is SMALL
        monkeypatch.setenv("CASPER_BENCH_SCALE", "paper")
        assert active_scale() is PAPER
        monkeypatch.setenv("CASPER_BENCH_SCALE", "tiny")
        assert active_scale() is TINY
        monkeypatch.setenv("CASPER_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            active_scale()


TINY_KW = dict(num_users=600, num_cloaks=80, trace_ticks=1)


class TestAnonymizerExperiments:
    def test_fig10_structure_and_trends(self):
        panels = run_fig10(heights=(4, 6, 8), **TINY_KW)
        assert set(panels) == {"a", "b", "c", "d"}
        # Panel b: basic update cost grows with height.
        basic_updates = panels["b"].series_by_label("basic").values
        assert basic_updates[0] < basic_updates[-1]
        # Panel b: adaptive is cheaper than basic at the tallest pyramid.
        adaptive_updates = panels["b"].series_by_label("adaptive").values
        assert adaptive_updates[-1] < basic_updates[-1]
        # Panel c: accuracy ratios >= 1 and improve with height for the
        # relaxed group.
        relaxed = panels["c"].series[0].values
        assert all(v >= 1.0 for v in relaxed if not math.isnan(v))
        assert relaxed[-1] <= relaxed[0]
        # Panel d: area accuracy approaches 1 from above.
        for series in panels["d"].series:
            clean = [v for v in series.values if not math.isnan(v)]
            assert all(v >= 1.0 - 1e-9 for v in clean)
            assert clean[-1] <= clean[0]

    def test_fig11_structure(self):
        panels = run_fig11(user_counts=(300, 900), height=7, num_cloaks=80,
                           trace_ticks=1)
        assert set(panels) == {"a", "b"}
        for panel in panels.values():
            assert {s.label for s in panel.series} == {"basic", "adaptive"}
        # Adaptive maintenance stays below basic at every size.
        basic = panels["b"].series_by_label("basic").values
        adaptive = panels["b"].series_by_label("adaptive").values
        assert all(a <= b * 1.5 for a, b in zip(adaptive, basic))

    def test_fig12_structure_and_trends(self):
        panels = run_fig12(
            num_users=800, k_groups=((1, 10), (100, 150)), height=8,
            num_cloaks=80, trace_ticks=1,
        )
        # Basic cloaking cost grows with stricter k.
        basic = panels["a"].series_by_label("basic").values
        assert basic[-1] >= basic[0]
        # Adaptive update cost falls for stricter users.
        adaptive_updates = panels["b"].series_by_label("adaptive").values
        assert adaptive_updates[-1] <= adaptive_updates[0]


class TestProcessorExperiments:
    def test_fig13_trends(self):
        panels = run_fig13(target_counts=(400, 800), num_users=800, num_queries=25)
        sizes4 = panels["a"].series_by_label("4 filters").values
        sizes1 = panels["a"].series_by_label("1 filter").values
        # Four filters shrink the candidate list...
        assert all(s4 < s1 for s4, s1 in zip(sizes4, sizes1))
        # ...and candidate size grows with target cardinality.
        assert sizes4[-1] > sizes4[0]

    def test_fig14_trends(self):
        panels = run_fig14(target_counts=(400, 800), num_users=800, num_queries=25)
        sizes4 = panels["a"].series_by_label("4 filters").values
        sizes1 = panels["a"].series_by_label("1 filter").values
        assert all(s4 < s1 for s4, s1 in zip(sizes4, sizes1))
        # Private-data processing: 4 filters costs more time than 1.
        t4 = panels["b"].series_by_label("4 filters").values
        t1 = panels["b"].series_by_label("1 filter").values
        assert sum(t4) > sum(t1)

    def test_fig15_trends(self):
        panels = run_fig15(num_targets=800, query_cells=(4, 256), num_queries=25)
        for series in panels["a"].series:
            assert series.values[-1] > series.values[0]  # bigger query, more candidates

    def test_fig16_trends(self):
        panels = run_fig16(
            num_targets=500, data_cells=(4, 64), num_users=800, num_queries=20
        )
        sizes4 = panels["a"].series_by_label("4 filters").values
        sizes1 = panels["a"].series_by_label("1 filter").values
        assert all(s4 <= s1 for s4, s1 in zip(sizes4, sizes1))

    def test_fig17_structure_and_trends(self):
        panels = run_fig17(
            num_users=800, num_targets=400, num_queries=20,
            small_groups=((1, 10), (20, 30)),
            large_groups=((1, 10), (100, 150)),
        )
        assert set(panels) == {"a", "b"}
        panel_b = panels["b"]
        labels = {s.label for s in panel_b.series}
        assert "public transmission" in labels
        # Transmission grows with stricter k for public data.
        trans = panel_b.series_by_label("public transmission").values
        assert trans[-1] > trans[0]
        # Anonymizer time is a small share everywhere.
        anon = panel_b.series_by_label("public anonymizer").values
        proc = panel_b.series_by_label("public processing").values
        assert all(a < p for a, p in zip(anon, proc))
