"""Tests for the workload generators."""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.workloads import (
    PAPER_AMIN_FRACTION_RANGE,
    PAPER_K_RANGE,
    build_scenario,
    cell_region,
    profiles_for_k_range,
    query_regions_of_cells,
    random_query_points,
    uniform_points,
    uniform_private_regions,
    uniform_profiles,
)

UNIT = Rect(0, 0, 1, 1)


class TestTargets:
    def test_uniform_points_within_bounds(self):
        targets = uniform_points(200, UNIT, seed=0)
        assert len(targets) == 200
        assert all(UNIT.contains_point(p) for p in targets.values())
        assert set(targets) == {f"T{i + 1}" for i in range(200)}

    def test_uniform_points_deterministic(self):
        assert uniform_points(50, UNIT, seed=3) == uniform_points(50, UNIT, seed=3)

    def test_uniform_points_validation(self):
        with pytest.raises(ValueError):
            uniform_points(-1, UNIT)

    def test_cell_region_area(self):
        region = cell_region(Point(0.5, 0.5), 64, UNIT, pyramid_height=9)
        expected = 64 * UNIT.area / 4**9
        assert region.area == pytest.approx(expected)

    def test_cell_region_shifted_inside_bounds(self):
        # A center on the border: the region shifts inward, keeping area.
        region = cell_region(Point(0.0, 0.0), 256, UNIT, pyramid_height=9)
        assert UNIT.contains_rect(region)
        assert region.area == pytest.approx(256 * UNIT.area / 4**9)

    def test_cell_region_validation(self):
        with pytest.raises(ValueError):
            cell_region(Point(0.5, 0.5), 0, UNIT, 9)

    def test_uniform_private_regions_cells_in_range(self):
        regions = uniform_private_regions(
            300, UNIT, pyramid_height=9, cells_range=(1, 64), seed=1
        )
        cell = UNIT.area / 4**9
        sizes = [r.area / cell for r in regions.values()]
        assert min(sizes) >= 0.9  # shifted regions keep their area
        assert max(sizes) <= 64.1
        assert 20 < statistics.mean(sizes) < 45  # uniform over [1, 64]
        assert all(UNIT.contains_rect(r) for r in regions.values())

    def test_uniform_private_regions_validation(self):
        with pytest.raises(ValueError):
            uniform_private_regions(10, UNIT, cells_range=(0, 64))
        with pytest.raises(ValueError):
            uniform_private_regions(10, UNIT, cells_range=(64, 1))


class TestProfiles:
    def test_uniform_profiles_ranges(self):
        profiles = uniform_profiles(500, UNIT, seed=0)
        k_lo, k_hi = PAPER_K_RANGE
        f_lo, f_hi = PAPER_AMIN_FRACTION_RANGE
        assert all(k_lo <= p.k <= k_hi for p in profiles)
        assert all(
            f_lo * UNIT.area <= p.a_min <= f_hi * UNIT.area for p in profiles
        )

    def test_uniform_profiles_cover_range(self):
        profiles = uniform_profiles(2000, UNIT, seed=1)
        ks = {p.k for p in profiles}
        assert min(ks) == 1
        assert max(ks) == 50

    def test_uniform_profiles_validation(self):
        with pytest.raises(ValueError):
            uniform_profiles(10, UNIT, k_range=(0, 5))
        with pytest.raises(ValueError):
            uniform_profiles(10, UNIT, a_min_fraction_range=(0.1, 0.01))

    def test_profiles_for_k_range(self):
        profiles = profiles_for_k_range(300, (150, 200), seed=2)
        assert all(150 <= p.k <= 200 for p in profiles)
        assert all(p.a_min == 0.0 for p in profiles)

    def test_scaled_amin_for_non_unit_bounds(self):
        big = Rect(0, 0, 10, 10)
        profiles = uniform_profiles(100, big, seed=3)
        f_lo, f_hi = PAPER_AMIN_FRACTION_RANGE
        assert all(
            f_lo * big.area <= p.a_min <= f_hi * big.area for p in profiles
        )


class TestQueries:
    def test_query_regions_have_requested_cells(self):
        regions = query_regions_of_cells(20, 1024, UNIT, pyramid_height=9, seed=0)
        cell = UNIT.area / 4**9
        for r in regions:
            assert r.area / cell == pytest.approx(1024, rel=0.01)
            assert UNIT.contains_rect(r)

    def test_random_query_points_in_bounds(self):
        pts = random_query_points(100, UNIT, seed=5)
        assert len(pts) == 100
        assert all(UNIT.contains_point(p) for p in pts)


class TestScenario:
    def test_build_scenario_shape(self):
        scenario = build_scenario(200, seed=0)
        assert scenario.num_users == 200
        assert len(scenario.positions()) == 200
        assert scenario.network.is_connected()

    def test_scenario_deterministic(self):
        a = build_scenario(100, seed=9)
        b = build_scenario(100, seed=9)
        assert a.positions() == b.positions()
        assert a.profiles == b.profiles

    def test_register_all_and_step(self):
        from repro.anonymizer import BasicAnonymizer

        scenario = build_scenario(150, seed=1)
        anonymizer = BasicAnonymizer(scenario.bounds, height=6)
        scenario.register_all(anonymizer)
        assert anonymizer.num_users == 150
        updates = scenario.step()
        assert len(updates) == 150

    def test_profile_ranges_respected(self):
        scenario = build_scenario(300, k_range=(10, 20), seed=2)
        assert all(10 <= p.k <= 20 for p in scenario.profiles)
