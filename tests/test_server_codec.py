"""Tests for the 64-byte wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.processor import CandidateList
from repro.server.codec import (
    RECORD_SIZE,
    decode_candidate_list,
    decode_record,
    encode_candidate_list,
    encode_record,
)


class TestRecordCodec:
    def test_record_is_exactly_64_bytes(self):
        payload = encode_record("station-42", Rect(0.1, 0.2, 0.3, 0.4))
        assert len(payload) == RECORD_SIZE == 64

    def test_roundtrip(self):
        oid, region = decode_record(encode_record("abc", Rect(0.1, 0.2, 0.3, 0.4)))
        assert oid == "abc"
        assert region == Rect(0.1, 0.2, 0.3, 0.4)

    def test_point_region_roundtrip(self):
        oid, region = decode_record(encode_record(7, Rect.point(Point(0.5, 0.5))))
        assert oid == "7"  # ids travel as strings
        assert region.is_degenerate()
        assert region.center == Point(0.5, 0.5)

    def test_long_oid_rejected(self):
        with pytest.raises(ValueError):
            encode_record("x" * 25, Rect(0, 0, 1, 1))

    def test_exactly_24_byte_oid_ok(self):
        oid = "y" * 24
        decoded, _region = decode_record(encode_record(oid, Rect(0, 0, 1, 1)))
        assert decoded == oid

    def test_utf8_oid(self):
        oid, _region = decode_record(encode_record("café-7", Rect(0, 0, 1, 1)))
        assert oid == "café-7"

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            decode_record(b"\x00" * 63)

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_record("a", Rect(0, 0, 1, 1)))
        payload[:4] = b"XXXX"
        with pytest.raises(ValueError):
            decode_record(bytes(payload))

    @given(
        x0=st.floats(-1e3, 1e3, allow_nan=False),
        y0=st.floats(-1e3, 1e3, allow_nan=False),
        w=st.floats(0, 10, allow_nan=False),
        h=st.floats(0, 10, allow_nan=False),
    )
    def test_property_roundtrip_exact_floats(self, x0, y0, w, h):
        region = Rect(x0, y0, x0 + w, y0 + h)
        _oid, decoded = decode_record(encode_record("t", region))
        # f64 roundtrips are bit-exact.
        assert decoded == region


class TestCandidateListCodec:
    def make_list(self, n: int) -> CandidateList:
        items = tuple(
            (f"t{i}", Rect(0.01 * i, 0.01 * i, 0.01 * i + 0.005, 0.01 * i + 0.005))
            for i in range(n)
        )
        return CandidateList(
            items=items, search_region=Rect(0, 0, 1, 1), num_filters=4
        )

    def test_roundtrip(self):
        original = self.make_list(10)
        decoded = decode_candidate_list(encode_candidate_list(original))
        assert decoded.items == original.items
        assert decoded.num_filters == 4

    def test_empty_list(self):
        decoded = decode_candidate_list(encode_candidate_list(self.make_list(0)))
        assert len(decoded) == 0

    def test_payload_size_matches_transmission_model(self):
        """The body of the serialized list is exactly the byte count the
        Figure 17 model charges: 64 bytes per record."""
        cl = self.make_list(37)
        payload = encode_candidate_list(cl)
        header_size = len(encode_candidate_list(self.make_list(0)))
        assert len(payload) - header_size == 37 * RECORD_SIZE

    def test_truncated_payload_rejected(self):
        payload = encode_candidate_list(self.make_list(3))
        with pytest.raises(ValueError):
            decode_candidate_list(payload[:-1])
        with pytest.raises(ValueError):
            decode_candidate_list(payload[:5])

    def test_bad_list_magic_rejected(self):
        payload = bytearray(encode_candidate_list(self.make_list(1)))
        payload[:4] = b"XXXX"
        with pytest.raises(ValueError):
            decode_candidate_list(bytes(payload))

    def test_decoded_list_supports_refinement(self):
        cl = self.make_list(20)
        decoded = decode_candidate_list(encode_candidate_list(cl))
        assert decoded.refine_nearest(Point(0.0, 0.0)) == "t0"
