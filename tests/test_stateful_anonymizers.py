"""Stateful property testing of the two anonymizers.

Hypothesis drives arbitrary interleavings of register / move /
deregister / profile-change operations against the basic and adaptive
anonymizers *simultaneously*, asserting after every step that

* both structures pass their internal consistency checks,
* both report identical cell populations for any queried region,
* cloaking (when satisfiable) meets the profile on both, with the
  achieved k equal to the true region population.

This is the deepest correctness net in the suite: the adaptive
anonymizer's split/merge machinery has to agree with the trivially
correct complete pyramid on every reachable state.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.anonymizer import AdaptiveAnonymizer, BasicAnonymizer, PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
HEIGHT = 5

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
ks = st.integers(1, 30)
a_mins = st.sampled_from([0.0, 0.001, 0.01, 0.1])


class AnonymizerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.basic = BasicAnonymizer(UNIT, HEIGHT)
        self.adaptive = AdaptiveAnonymizer(UNIT, HEIGHT)
        self.points: dict[int, Point] = {}
        self.profiles: dict[int, PrivacyProfile] = {}
        self.next_uid = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @rule(x=coords, y=coords, k=ks, a_min=a_mins)
    def register(self, x: float, y: float, k: int, a_min: float) -> None:
        uid = self.next_uid
        self.next_uid += 1
        point = Point(x, y)
        profile = PrivacyProfile(k=k, a_min=a_min)
        self.basic.register(uid, point, profile)
        self.adaptive.register(uid, point, profile)
        self.points[uid] = point
        self.profiles[uid] = profile

    @precondition(lambda self: bool(self.points))
    @rule(data=st.data(), x=coords, y=coords)
    def move(self, data, x: float, y: float) -> None:
        uid = data.draw(st.sampled_from(sorted(self.points)), label="uid")
        point = Point(x, y)
        self.basic.update(uid, point)
        self.adaptive.update(uid, point)
        self.points[uid] = point

    @precondition(lambda self: bool(self.points))
    @rule(data=st.data())
    def deregister(self, data) -> None:
        uid = data.draw(st.sampled_from(sorted(self.points)), label="uid")
        self.basic.deregister(uid)
        self.adaptive.deregister(uid)
        del self.points[uid]
        del self.profiles[uid]

    @precondition(lambda self: bool(self.points))
    @rule(data=st.data(), k=ks, a_min=a_mins)
    def change_profile(self, data, k: int, a_min: float) -> None:
        uid = data.draw(st.sampled_from(sorted(self.points)), label="uid")
        profile = PrivacyProfile(k=k, a_min=a_min)
        self.basic.set_profile(uid, profile)
        self.adaptive.set_profile(uid, profile)
        self.profiles[uid] = profile

    @precondition(lambda self: bool(self.points))
    @rule(data=st.data())
    def cloak(self, data) -> None:
        uid = data.draw(st.sampled_from(sorted(self.points)), label="uid")
        profile = self.profiles[uid]
        point = self.points[uid]
        for anonymizer in (self.basic, self.adaptive):
            try:
                region = anonymizer.cloak(uid)
            except ProfileUnsatisfiableError:
                # Then the whole population must genuinely be too small
                # or the area requirement exceeds the space.
                assert (
                    len(self.points) < profile.k
                    or profile.a_min > UNIT.area + 1e-12
                )
                continue
            assert region.region.contains_point(point)
            assert region.achieved_k >= profile.k
            assert region.area >= profile.a_min - 1e-12
            # achieved_k uses half-open cell-assignment membership (a
            # point on a shared border belongs to the upper-right cell),
            # so the oracle counts the same way.
            level = region.cells[0].level
            cell_set = set(region.cells)
            true_population = sum(
                1 for p in self.points.values()
                if anonymizer.grid.cell_of(p, level) in cell_set
            )
            assert region.achieved_k == true_population

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def structures_consistent(self) -> None:
        if not hasattr(self, "basic"):
            return
        self.basic.check_invariants()
        self.adaptive.check_invariants()
        assert self.basic.num_users == self.adaptive.num_users == len(self.points)

    @invariant()
    def counts_agree_on_maintained_cells(self) -> None:
        if not hasattr(self, "basic"):
            return
        # Every maintained adaptive cell's count must equal the basic
        # pyramid's count for the same cell.
        for cell in list(self.adaptive._cells):
            assert self.adaptive.cell_count(cell) == self.basic.cell_count(cell)


AnonymizerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestAnonymizerMachine = AnonymizerMachine.TestCase
