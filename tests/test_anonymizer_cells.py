"""Tests for pyramid cell arithmetic (repro.anonymizer.cells)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymizer.cells import CellGrid, CellId
from repro.errors import OutOfBoundsError
from repro.geometry import Point, Rect

UNIT = Rect(0, 0, 1, 1)


@st.composite
def cell_ids(draw, max_level: int = 8) -> CellId:
    level = draw(st.integers(0, max_level))
    side = 1 << level
    return CellId(level, draw(st.integers(0, side - 1)), draw(st.integers(0, side - 1)))


class TestCellId:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellId(-1, 0, 0)
        with pytest.raises(ValueError):
            CellId(1, 2, 0)
        with pytest.raises(ValueError):
            CellId(0, 0, 1)

    def test_public_constructor_still_validates(self):
        """Hot-path ancestor walks construct via the trusted internal
        path that skips ``__post_init__``; this pins the public surface:
        any ``CellId(...)`` built from external input must keep raising
        on out-of-range indices."""
        # The trusted path exists and produces ids equal to public ones.
        assert CellId._trusted(2, 3, 1) == CellId(2, 3, 1)
        # Derived ids from trusted-path walks stay within range, so
        # equality/hash semantics are unchanged.
        cell = CellId(3, 5, 2)
        assert cell.parent() == CellId(2, 2, 1)
        assert cell in cell.parent().children()
        # And the public constructor did not lose its guard.
        for bad in ((1, 2, 0), (2, 0, 4), (-1, 0, 0), (0, 1, 0)):
            with pytest.raises(ValueError):
                CellId(*bad)

    def test_root(self):
        root = CellId(0, 0, 0)
        assert root.is_root
        with pytest.raises(ValueError):
            root.parent()
        with pytest.raises(ValueError):
            root.horizontal_neighbor()

    def test_parent_child_roundtrip(self):
        cell = CellId(3, 5, 2)
        assert all(child.parent() == cell for child in cell.children())

    def test_children_distinct_and_cover(self):
        cell = CellId(2, 1, 3)
        children = cell.children()
        assert len(set(children)) == 4
        grid = CellGrid(UNIT, 8)
        union = children[0]
        rect = grid.cell_rect(children[0])
        for child in children[1:]:
            rect = rect.union(grid.cell_rect(child))
        assert rect == grid.cell_rect(cell)

    def test_neighbors_share_parent(self):
        cell = CellId(4, 6, 9)
        h = cell.horizontal_neighbor()
        v = cell.vertical_neighbor()
        assert h.parent() == cell.parent()
        assert v.parent() == cell.parent()
        # Horizontal neighbour: same row; vertical: same column.
        assert h.iy == cell.iy and h.ix != cell.ix
        assert v.ix == cell.ix and v.iy != cell.iy

    def test_neighbor_involution(self):
        cell = CellId(5, 17, 20)
        assert cell.horizontal_neighbor().horizontal_neighbor() == cell
        assert cell.vertical_neighbor().vertical_neighbor() == cell

    def test_siblings(self):
        cell = CellId(2, 0, 0)
        sibs = cell.siblings()
        assert len(set(sibs)) == 3
        assert all(s.parent() == cell.parent() for s in sibs)

    def test_ancestor(self):
        cell = CellId(6, 40, 33)
        assert cell.ancestor(6) == cell
        assert cell.ancestor(0) == CellId(0, 0, 0)
        assert cell.ancestor(5) == cell.parent()
        with pytest.raises(ValueError):
            cell.ancestor(7)

    def test_is_ancestor_of(self):
        cell = CellId(2, 1, 1)
        descendant = CellId(5, 8 + 3, 8 + 5)  # inside (1,1) quadrant at level 2
        assert cell.is_ancestor_of(descendant)
        assert cell.is_ancestor_of(cell)
        assert not cell.is_ancestor_of(CellId(5, 0, 0))

    @given(cell_ids(max_level=6))
    def test_children_partition_parent(self, cell: CellId):
        grid = CellGrid(UNIT, 8)
        children = cell.children()
        total = sum(grid.cell_rect(c).area for c in children)
        assert total == pytest.approx(grid.cell_rect(cell).area)


class TestCellGrid:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellGrid(UNIT, -1)
        with pytest.raises(ValueError):
            CellGrid(Rect(0, 0, 0, 1), 4)

    def test_cell_area_quarters_per_level(self):
        grid = CellGrid(UNIT, 6)
        for level in range(6):
            assert grid.cell_area(level + 1) == pytest.approx(
                grid.cell_area(level) / 4
            )
        assert grid.cell_area(0) == pytest.approx(UNIT.area)

    def test_cell_of_point_basic(self):
        grid = CellGrid(UNIT, 3)
        assert grid.cell_of(Point(0.1, 0.1)) == CellId(3, 0, 0)
        assert grid.cell_of(Point(0.9, 0.9)) == CellId(3, 7, 7)
        assert grid.cell_of(Point(0.1, 0.9), level=1) == CellId(1, 0, 1)

    def test_cell_of_point_on_border_clamped(self):
        grid = CellGrid(UNIT, 2)
        assert grid.cell_of(Point(1.0, 1.0)) == CellId(2, 3, 3)
        assert grid.cell_of(Point(0.0, 0.0)) == CellId(2, 0, 0)

    def test_cell_of_out_of_bounds_raises(self):
        grid = CellGrid(UNIT, 2)
        with pytest.raises(OutOfBoundsError):
            grid.cell_of(Point(1.5, 0.5))

    def test_cell_of_invalid_level_raises(self):
        grid = CellGrid(UNIT, 2)
        with pytest.raises(ValueError):
            grid.cell_of(Point(0.5, 0.5), level=5)

    def test_cell_rect_contains_its_points(self):
        grid = CellGrid(UNIT, 4)
        p = Point(0.37, 0.83)
        cell = grid.cell_of(p)
        assert grid.cell_rect(cell).contains_point(p)

    def test_pair_rect_is_half_parent(self):
        grid = CellGrid(UNIT, 4)
        cell = CellId(3, 2, 5)
        pair = grid.pair_rect(cell, cell.horizontal_neighbor())
        assert pair.area == pytest.approx(2 * grid.cell_area(3))

    def test_path_to_root(self):
        grid = CellGrid(UNIT, 4)
        path = grid.path_to_root(CellId(4, 9, 3))
        assert len(path) == 5
        assert path[0] == CellId(4, 9, 3)
        assert path[-1] == CellId(0, 0, 0)
        for deeper, shallower in zip(path, path[1:]):
            assert deeper.parent() == shallower

    def test_common_ancestor_level(self):
        grid = CellGrid(UNIT, 4)
        a = CellId(4, 0, 0)
        assert grid.common_ancestor_level(a, a) == 4
        b = CellId(4, 1, 0)  # sibling
        assert grid.common_ancestor_level(a, b) == 3
        c = CellId(4, 15, 15)  # opposite corner
        assert grid.common_ancestor_level(a, c) == 0
        with pytest.raises(ValueError):
            grid.common_ancestor_level(a, CellId(3, 0, 0))

    @given(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.integers(0, 8),
    )
    def test_cell_of_consistent_with_ancestor(self, x, y, level):
        grid = CellGrid(UNIT, 8)
        p = Point(x, y)
        deepest = grid.cell_of(p)
        assert grid.cell_of(p, level) == deepest.ancestor(level)

    @given(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False))
    def test_cell_rect_roundtrip(self, x, y):
        grid = CellGrid(UNIT, 8)
        p = Point(x, y)
        cell = grid.cell_of(p)
        assert grid.cell_rect(cell).contains_point(p, tol=1e-9)

    def test_non_square_bounds(self):
        grid = CellGrid(Rect(0, 0, 2, 1), 2)
        rect = grid.cell_rect(CellId(2, 0, 0))
        assert rect.width == pytest.approx(0.5)
        assert rect.height == pytest.approx(0.25)
        assert grid.cell_area(2) == pytest.approx(2.0 / 16)
