"""Property tests for the resilience subsystem (ISSUE 4 acceptance).

Two properties hold for *any* fault plan, not just the canned scenarios:

1. **Privacy under chaos** — whatever the faults do, the pipeline never
   emits a cloak below the operating user's ``(k, A_min)``; every query
   either answers or fails with an explicit degraded-mode error.
2. **Determinism** — the same plan over the same workload reproduces
   the fault trace and the whole chaos report byte-for-byte.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import ChaosWorkload, FaultPlan, FaultInjector, run_chaos

prob = st.floats(min_value=0.0, max_value=0.5)

fault_plans = st.builds(
    FaultPlan,
    name=st.just("property"),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop=prob,
    duplicate=prob,
    delay=prob,
    delay_ticks=st.integers(min_value=1, max_value=4),
    reorder=prob,
    corrupt=prob,
    crash_period=st.sampled_from([0, 0, 7, 19]),
    lose_user=st.floats(min_value=0.0, max_value=0.1),
)

TINY = ChaosWorkload(users=8, targets=6, steps=24, continuous_queries=2)


@settings(max_examples=12)
@given(plan=fault_plans)
def test_any_fault_plan_degrades_availability_never_privacy(plan):
    report = run_chaos(plan, TINY)
    # 1. No silent privacy violation, ever.
    assert report.privacy_violations == 0
    # 2. Every query is accounted for: answered or explicitly degraded.
    slo = report.slo
    assert slo["queries_answered"] + slo["queries_degraded"] == slo["queries_total"]


@settings(max_examples=6)
@given(plan=fault_plans)
def test_same_seed_reproduces_the_report_byte_for_byte(plan):
    assert run_chaos(plan, TINY).to_json() == run_chaos(plan, TINY).to_json()


@settings(max_examples=20)
@given(
    plan=fault_plans,
    messages=st.lists(st.binary(min_size=1, max_size=80), min_size=1, max_size=40),
)
def test_injector_trace_is_a_pure_function_of_seed_and_traffic(plan, messages):
    def drive() -> tuple[str, list[list[bytes]]]:
        injector = FaultInjector(plan)
        batches = []
        for i, payload in enumerate(messages):
            deliveries = injector.transmit(f"update:u{i % 3}", payload)
            batches.append([d.payload for d in deliveries])
            injector.next_op()
        return injector.trace_json(), batches

    trace_a, batches_a = drive()
    trace_b, batches_b = drive()
    assert trace_a == trace_b
    assert batches_a == batches_b


@settings(max_examples=20)
@given(
    plan=fault_plans,
    payload=st.binary(min_size=1, max_size=120),
)
def test_deliveries_are_copies_of_sent_traffic_or_one_bit_off(plan, payload):
    """The injector never invents traffic: every delivered payload is a
    sent payload, or a sent payload with exactly one bit flipped."""
    injector = FaultInjector(plan)
    sent = [bytes([i]) + payload for i in range(10)]
    delivered = []
    for message in sent:
        delivered.extend(d.payload for d in injector.transmit("c", message))
    for got in delivered:
        if got in sent:
            continue
        assert any(
            len(got) == len(original)
            and sum(bin(a ^ b).count("1") for a, b in zip(got, original)) == 1
            for original in sent
        )
