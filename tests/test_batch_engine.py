"""Batch query engine: output must be item-for-item identical to the
per-query processor functions, for every query type and policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.processor import (
    AnyOverlap,
    BatchQueryEngine,
    BatchRequest,
    FractionOverlap,
    private_knn_over_private,
    private_knn_over_public,
    private_nn_over_private,
    private_nn_over_public,
    private_range_over_private,
    private_range_over_public,
)
from repro.server.casper import Casper
from repro.spatial import RTreeIndex
from tests.conftest import UNIT, random_points, random_rects


@pytest.fixture
def indexes(rng):
    public = RTreeIndex()
    for oid, point in enumerate(random_points(rng, 250)):
        public.insert_point(f"p{oid}", point)
    private = RTreeIndex()
    for oid, rect in enumerate(random_rects(rng, 250, max_side=0.05)):
        private.insert(f"u{oid}", rect)
    return public, private


def _areas(rng, n=6):
    return random_rects(rng, n, max_side=0.2)


def _assert_same(batch_result, expected):
    assert batch_result.items == expected.items
    assert batch_result.search_region == expected.search_region
    assert batch_result.num_filters == expected.num_filters
    assert batch_result.filters == expected.filters


def test_batch_matches_per_query_functions(indexes, rng):
    public, private = indexes
    engine = BatchQueryEngine(public, private)
    policy = FractionOverlap(0.25)
    requests, expected = [], []
    for area in _areas(rng):
        for num_filters in (1, 2, 4):
            requests.append(
                BatchRequest("nn_public", area, num_filters=num_filters)
            )
            expected.append(private_nn_over_public(public, area, num_filters))
            requests.append(
                BatchRequest("nn_private", area, num_filters=num_filters)
            )
            expected.append(private_nn_over_private(private, area, num_filters))
        for num_filters in (1, 4):
            requests.append(
                BatchRequest("knn_public", area, k=5, num_filters=num_filters)
            )
            expected.append(
                private_knn_over_public(public, area, 5, num_filters)
            )
            requests.append(
                BatchRequest(
                    "knn_private", area, k=3, num_filters=num_filters,
                    policy=policy,
                )
            )
            expected.append(
                private_knn_over_private(
                    private, area, 3, num_filters, policy=policy
                )
            )
        requests.append(BatchRequest("range_public", area, radius=0.1))
        expected.append(private_range_over_public(public, area, 0.1))
        requests.append(
            BatchRequest("range_private", area, radius=0.1, policy=policy)
        )
        expected.append(private_range_over_private(private, area, 0.1, policy))
    results = engine.run(requests)
    assert len(results) == len(expected)
    for got, want in zip(results, expected):
        _assert_same(got, want)


def test_duplicate_requests_computed_once(indexes, rng):
    public, private = indexes
    engine = BatchQueryEngine(public, private)
    area = _areas(rng, 1)[0]
    requests = [BatchRequest("nn_public", area)] * 10
    results = engine.run(requests)
    assert engine.requests_seen == 10
    assert engine.requests_computed == 1
    assert engine.dedup_rate == pytest.approx(0.9)
    # Deduplicated answers are literally the same frozen object.
    assert all(r is results[0] for r in results)
    _assert_same(results[0], private_nn_over_public(public, area))


def test_shared_area_different_policies_share_extension(indexes, rng):
    public, private = indexes
    engine = BatchQueryEngine(public, private)
    area = _areas(rng, 1)[0]
    loose, strict = AnyOverlap(), FractionOverlap(0.5)
    results = engine.run(
        [
            BatchRequest("nn_private", area, policy=None),
            BatchRequest("nn_private", area, policy=loose),
            BatchRequest("nn_private", area, policy=strict),
        ]
    )
    _assert_same(results[0], private_nn_over_private(private, area))
    _assert_same(results[1], private_nn_over_private(private, area, policy=loose))
    _assert_same(results[2], private_nn_over_private(private, area, policy=strict))
    # All three share one A_EXT.
    assert (
        results[0].search_region
        == results[1].search_region
        == results[2].search_region
    )


def test_runs_are_isolated_from_index_mutations(indexes, rng):
    public, private = indexes
    engine = BatchQueryEngine(public, private)
    area = _areas(rng, 1)[0]
    first = engine.run([BatchRequest("nn_public", area)])[0]
    public.insert_point("late", area.center)
    second = engine.run([BatchRequest("nn_public", area)])[0]
    _assert_same(second, private_nn_over_public(public, area))
    assert "late" in second.oids()
    assert "late" not in first.oids()


def test_invalid_requests_rejected(indexes):
    public, private = indexes
    with pytest.raises(ValueError):
        BatchRequest("teleport", UNIT)
    with pytest.raises(ValueError):
        BatchRequest("knn_public", UNIT, k=0)
    with pytest.raises(ValueError):
        BatchRequest("range_public", UNIT, radius=-1.0)
    engine = BatchQueryEngine(public_index=public)  # no private index
    with pytest.raises(ValueError):
        engine.run([BatchRequest("nn_private", UNIT)])


def test_empty_batch(indexes):
    public, private = indexes
    assert BatchQueryEngine(public, private).run([]) == []


def test_casper_query_batch_matches_facade(rng):
    casper = Casper(UNIT, pyramid_height=6, anonymizer="basic")
    np_rng = np.random.default_rng(7)
    casper.add_public_targets(
        {
            f"station-{i}": Point(float(x), float(y))
            for i, (x, y) in enumerate(np_rng.random((150, 2)))
        }
    )
    from repro.anonymizer import PrivacyProfile

    for uid, point in enumerate(random_points(rng, 60)):
        casper.register_user(uid, point, PrivacyProfile(k=4))
    specs = (
        [(uid, "nn_public") for uid in range(20)]
        + [(uid, "knn_public", 3) for uid in range(20, 40)]
        + [(uid, "range_public", 0.15) for uid in range(40, 60)]
    )
    batched = casper.query_batch(specs)
    assert len(batched) == 60
    for (uid, kind, *param), result in zip(specs, batched):
        if kind == "nn_public":
            single = casper.query_nearest_public(uid)
        elif kind == "knn_public":
            single = casper.server.nn_public(result.cloak.region)  # same cloak
            assert result.answer == result.candidates.refine_k_nearest(
                casper.anonymizer.location_of(uid), param[0]
            )
            continue
        else:
            single = casper.query_range_public(uid, param[0])
        assert result.candidates.items == single.candidates.items
        assert result.answer == single.answer


def test_casper_query_batch_rejects_private_kinds():
    casper = Casper(UNIT, pyramid_height=5)
    from repro.anonymizer import PrivacyProfile

    casper.register_user(0, Point(0.5, 0.5), PrivacyProfile(k=1))
    casper.add_public_target("t", Point(0.1, 0.1))
    with pytest.raises(ValueError):
        casper.query_batch([(0, "nn_private")])
    assert casper.query_batch([]) == []
