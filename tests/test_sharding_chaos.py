"""Chaos coverage for the sharded runtime: a single crashed shard is a
survivable fault, never a privacy event."""

from __future__ import annotations

import pytest

from repro.resilience import ChaosWorkload, get_scenario, run_chaos

SHARDED = ChaosWorkload(
    users=16, targets=10, steps=120, continuous_queries=3, shards=4
)


class TestShardCrashScenario:
    def test_registered_and_in_ci(self) -> None:
        from repro.resilience import CI_SCENARIOS, SCENARIOS

        assert "shard-crash" in SCENARIOS
        assert "shard-crash" in CI_SCENARIOS
        assert SCENARIOS["shard-crash"].shard_crash_period > 0

    def test_survivors_keep_answering_and_privacy_holds(self) -> None:
        report = run_chaos(get_scenario("shard-crash"), SHARDED)
        assert report.ok
        assert report.privacy_violations == 0
        runtime = report.runtime
        assert runtime["fault_counts"]["shard_crash"] > 0
        counters = runtime["counters"]
        assert counters["shard_recoveries"] == runtime["fault_counts"]["shard_crash"]
        slo = report.slo
        assert slo["queries_answered"] > 0
        assert slo["availability"] > 0.5
        assert report.workload["shards"] == 4

    def test_purged_users_heal_through_reregistration(self) -> None:
        # A long run with frequent crashes purges at least one user who
        # registered after the snapshot; the harness still ends with a
        # consistent fleet (checked inside run_chaos) and zero privacy
        # violations, which is only possible if the purged users healed.
        plan = get_scenario("shard-crash")
        report = run_chaos(plan, SHARDED)
        assert report.runtime["counters"]["users_purged"] >= 0
        assert report.ok

    def test_report_is_byte_deterministic(self) -> None:
        plan = get_scenario("shard-crash")
        assert (
            run_chaos(plan, SHARDED).to_json()
            == run_chaos(plan, SHARDED).to_json()
        )

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_both_anonymizer_kinds_survive(self, kind) -> None:
        workload = ChaosWorkload(
            users=12, targets=8, steps=60, continuous_queries=2,
            shards=4, anonymizer=kind,
        )
        report = run_chaos(get_scenario("shard-crash"), workload)
        assert report.ok, kind

    def test_unsharded_deployment_degrades_to_full_restarts(self) -> None:
        # shard_crash faults against a single-pyramid anonymizer fall
        # back to whole-process crash/restore — still zero violations.
        unsharded = ChaosWorkload(
            users=12, targets=8, steps=60, continuous_queries=2, shards=1
        )
        report = run_chaos(get_scenario("shard-crash"), unsharded)
        assert report.ok
        counters = report.runtime["counters"]
        assert counters["shard_recoveries"] == 0
        assert counters["recoveries"] >= report.runtime["fault_counts"]["shard_crash"]

    def test_other_scenarios_run_sharded(self) -> None:
        for name in ("drop-heavy", "crash-restart"):
            report = run_chaos(get_scenario(name), SHARDED)
            assert report.ok, name
