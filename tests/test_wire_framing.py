"""Tests for the shard wire protocol's framing layer.

Extends the single-envelope corruption contract of
``test_messages_consolidated.py`` to the batched frame format: any
single corrupted byte anywhere in a frame must be rejected before an
envelope is interpreted, partial reads must reassemble into the exact
frames that were sent, and the operation/response payload codecs must
round-trip bit-exactly (the parallel runtime's byte-identical
equivalence rests on the doubles surviving the wire unchanged).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymizer import PrivacyProfile
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.geometry import Point, Rect
from repro.messages import ShardEnvelope
from repro.sharding.wire import (
    FRAME_HEADER_SIZE,
    FRAME_VERSION,
    Frame,
    FrameDecoder,
    KIND_NACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    WireError,
    decode_frame,
    decode_op,
    decode_response,
    encode_frame,
    op_cell_count,
    op_cloak,
    op_cloak_location,
    op_deregister,
    op_move,
    op_register,
    op_set_profile,
    response_cloak,
    response_cost,
    response_error,
)

envelopes_strategy = st.lists(
    st.tuples(st.integers(0, 65535), st.binary(max_size=64)),
    max_size=12,
)
kinds_strategy = st.sampled_from([KIND_REQUEST, KIND_RESPONSE, KIND_NACK])


def build(kind: int, seq: int, raw: list[tuple[int, bytes]]) -> bytes:
    return encode_frame(
        kind, seq, [ShardEnvelope(shard, payload) for shard, payload in raw]
    )


class TestFrameRoundTrip:
    @given(
        kind=kinds_strategy,
        seq=st.integers(0, 2**32 - 1),
        raw=envelopes_strategy,
    )
    def test_batched_round_trip(self, kind, seq, raw) -> None:
        frame = decode_frame(build(kind, seq, raw))
        assert frame.kind == kind
        assert frame.seq == seq
        assert [(e.shard, e.payload) for e in frame.envelopes] == raw

    def test_empty_batch_round_trips(self) -> None:
        frame = decode_frame(build(KIND_RESPONSE, 7, []))
        assert frame == Frame(KIND_RESPONSE, 7, ())

    def test_encode_rejects_bad_kind(self) -> None:
        with pytest.raises(WireError, match="kind"):
            encode_frame(99, 1, [])

    def test_encode_rejects_out_of_range_seq(self) -> None:
        with pytest.raises(WireError, match="sequence"):
            encode_frame(KIND_REQUEST, 2**32, [])
        with pytest.raises(WireError, match="sequence"):
            encode_frame(KIND_REQUEST, -1, [])

    def test_encode_rejects_oversized_batch(self) -> None:
        batch = [ShardEnvelope(0, b"")] * 2**16
        with pytest.raises(WireError, match="too many envelopes"):
            encode_frame(KIND_REQUEST, 1, batch)


class TestFrameCorruption:
    def test_every_single_byte_corruption_is_rejected(self) -> None:
        # Exhaustive: every byte position x a handful of flip masks.
        # The CRC trailer covers header and payload, and the CRC bytes
        # themselves mismatch when flipped, so no single-byte change
        # may ever decode.
        wire = build(
            KIND_REQUEST,
            3,
            [(0, op_move(11, Point(0.25, 0.75))), (5, op_cloak("alice"))],
        )
        for position in range(len(wire)):
            for flip in (0x01, 0x80, 0xFF):
                corrupted = bytearray(wire)
                corrupted[position] ^= flip
                with pytest.raises(WireError):
                    decode_frame(bytes(corrupted))

    def test_truncation_is_rejected(self) -> None:
        wire = build(KIND_REQUEST, 3, [(1, b"op")])
        for cut in range(len(wire)):
            with pytest.raises(WireError):
                decode_frame(wire[:cut])

    def test_error_messages_name_the_failure(self) -> None:
        wire = build(KIND_RESPONSE, 9, [(2, b"payload")])
        with pytest.raises(WireError, match="too short"):
            decode_frame(wire[:10])
        with pytest.raises(WireError, match="magic"):
            decode_frame(b"XXXX" + wire[4:])
        with pytest.raises(WireError, match="length field"):
            decode_frame(wire + b"\x00")
        bad_version = bytearray(wire)
        bad_version[4] = FRAME_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(bad_version))
        bad_kind = bytearray(wire)
        bad_kind[5] = 42
        with pytest.raises(WireError, match="kind"):
            decode_frame(bytes(bad_kind))
        bad_crc = bytearray(wire)
        bad_crc[-1] ^= 0xFF
        with pytest.raises(WireError, match="CRC"):
            decode_frame(bytes(bad_crc))

    def test_envelope_count_mismatch_fails_the_crc_first(self) -> None:
        # Inflating the count field is caught by the CRC before the
        # payload walk ever trusts it.
        wire = bytearray(build(KIND_REQUEST, 1, [(0, b"x")]))
        struct.pack_into("<H", wire, 6, 2)
        with pytest.raises(WireError, match="CRC"):
            decode_frame(bytes(wire))


class TestFrameDecoder:
    @given(
        raw_frames=st.lists(
            st.tuples(
                kinds_strategy,
                st.integers(0, 2**32 - 1),
                envelopes_strategy,
            ),
            min_size=1,
            max_size=5,
        ),
        chunk_size=st.integers(1, 19),
    )
    def test_chunked_reassembly(self, raw_frames, chunk_size) -> None:
        stream = b"".join(build(*frame) for frame in raw_frames)
        decoder = FrameDecoder()
        collected: list[Frame] = []
        for start in range(0, len(stream), chunk_size):
            collected.extend(decoder.feed(stream[start : start + chunk_size]))
        assert decoder.pending == 0
        assert [(f.kind, f.seq) for f in collected] == [
            (kind, seq) for kind, seq, _ in raw_frames
        ]
        for frame, (_, _, raw) in zip(collected, raw_frames):
            assert [(e.shard, e.payload) for e in frame.envelopes] == raw

    def test_partial_frame_stays_pending(self) -> None:
        wire = build(KIND_REQUEST, 1, [(0, b"hello")])
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-1]) == []
        assert decoder.pending == len(wire) - 1
        frames = decoder.feed(wire[-1:])
        assert len(frames) == 1
        assert decoder.pending == 0

    def test_desynchronized_stream_raises(self) -> None:
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="magic"):
            decoder.feed(b"JUNKJUNKJUNKJUNKJUNK")

    def test_back_to_back_frames_in_one_read(self) -> None:
        first = build(KIND_REQUEST, 1, [(0, b"a")])
        second = build(KIND_RESPONSE, 2, [(1, b"b"), (2, b"c")])
        frames = FrameDecoder().feed(first + second)
        assert [f.seq for f in frames] == [1, 2]
        assert len(frames[1].envelopes) == 2


class TestOperationCodec:
    @given(
        uid=st.one_of(
            st.integers(-(2**63), 2**63 - 1),
            st.text(max_size=32),
        ),
        x=st.floats(0.0, 1.0, allow_nan=False),
        y=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_move_round_trips_uid_and_doubles_exactly(self, uid, x, y) -> None:
        name, got_uid, point = decode_op(op_move(uid, Point(x, y)))
        assert name == "move"
        assert got_uid == uid and type(got_uid) is type(uid)
        # Bit-exact, not approximately equal: byte-identical equivalence
        # between the in-process and parallel runtimes depends on it.
        assert struct.pack("<d", point.x) == struct.pack("<d", x)
        assert struct.pack("<d", point.y) == struct.pack("<d", y)

    def test_register_and_profile_ops_round_trip(self) -> None:
        profile = PrivacyProfile(k=17, a_min=0.0125)
        op = op_register("bob", Point(0.1, 0.9), profile)
        assert decode_op(op) == ("register", "bob", Point(0.1, 0.9), profile)
        assert decode_op(op_set_profile(4, profile)) == (
            "set_profile", 4, profile,
        )
        assert decode_op(op_deregister(4)) == ("deregister", 4)
        assert decode_op(op_cloak(4)) == ("cloak", 4)
        assert decode_op(op_cloak_location(Point(0.3, 0.4), profile)) == (
            "cloak_location", Point(0.3, 0.4), profile,
        )
        assert decode_op(op_cell_count(CellId(3, 5, 6))) == (
            "cell_count", CellId(3, 5, 6),
        )

    def test_bool_uid_is_rejected(self) -> None:
        with pytest.raises(TypeError, match="int or str"):
            op_cloak(True)

    def test_unknown_opcode_raises(self) -> None:
        with pytest.raises(WireError, match="opcode"):
            decode_op(b"\xff")
        with pytest.raises(WireError, match="empty"):
            decode_op(b"")


class TestResponseCodec:
    def test_cloak_response_round_trips_exactly(self) -> None:
        region = CloakedRegion(
            Rect(0.1, 0.2, 0.30000000000000004, 0.7),
            achieved_k=25,
            cells=(CellId(4, 1, 2), CellId(4, 1, 3)),
        )
        name, got = decode_response(response_cloak(region))
        assert name == "cloak"
        assert got == region
        assert struct.pack("<d", got.region.x_max) == struct.pack(
            "<d", region.region.x_max
        )

    def test_cost_count_and_error_round_trip(self) -> None:
        assert decode_response(response_cost(12)) == ("cost", 12)
        assert decode_response(response_error("boom")) == ("error", "boom")
        with pytest.raises(WireError, match="opcode"):
            decode_response(b"\x00")

    def test_header_size_constant_matches_the_struct(self) -> None:
        wire = build(KIND_NACK, 1, [])
        assert len(wire) == FRAME_HEADER_SIZE + 4
