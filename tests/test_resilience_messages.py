"""Tests for the update wire format and the response-codec checksum.

The resilience failure model only works if *every* single-byte
corruption on either channel is detected: a flipped coordinate applied
silently would poison the anonymizer, a flipped candidate id would
poison an answer.  Both codecs carry a CRC-32 for exactly that.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.processor import CandidateList
from repro.resilience.messages import (
    UPDATE_RECORD_SIZE,
    LocationUpdate,
    decode_update,
    encode_update,
)
from repro.server.codec import decode_candidate_list, encode_candidate_list

UPDATE = LocationUpdate("u042", 7, Point(0.25, 0.75), PrivacyProfile(5, 0.01))


class TestUpdateCodec:
    def test_record_is_exactly_64_bytes(self):
        assert len(encode_update(UPDATE)) == UPDATE_RECORD_SIZE == 64

    def test_roundtrip(self):
        decoded = decode_update(encode_update(UPDATE))
        assert decoded == UPDATE

    def test_long_uid_rejected(self):
        with pytest.raises(ValueError):
            encode_update(
                LocationUpdate("u" * 21, 0, Point(0, 0), PrivacyProfile())
            )

    def test_exactly_20_byte_uid_roundtrips(self):
        update = LocationUpdate("u" * 20, 0, Point(0, 0), PrivacyProfile())
        assert decode_update(encode_update(update)).uid == "u" * 20

    def test_seq_out_of_uint32_range_rejected(self):
        with pytest.raises(ValueError):
            encode_update(LocationUpdate("u", 2**32, Point(0, 0), PrivacyProfile()))
        with pytest.raises(ValueError):
            encode_update(LocationUpdate("u", -1, Point(0, 0), PrivacyProfile()))

    def test_truncated_record_rejected(self):
        with pytest.raises(ValueError):
            decode_update(encode_update(UPDATE)[:-1])

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_update(UPDATE))
        payload[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode_update(bytes(payload))

    def test_every_single_byte_corruption_is_detected(self):
        clean = encode_update(UPDATE)
        for offset in range(UPDATE_RECORD_SIZE):
            corrupted = bytearray(clean)
            corrupted[offset] ^= 0x01
            with pytest.raises(ValueError):
                decode_update(bytes(corrupted))

    @given(
        uid=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=20,
        ),
        seq=st.integers(min_value=0, max_value=2**32 - 1),
        x=st.floats(allow_nan=False, allow_infinity=False, width=32),
        y=st.floats(allow_nan=False, allow_infinity=False, width=32),
        k=st.integers(min_value=1, max_value=10_000),
        a_min=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_roundtrip_property(self, uid, seq, x, y, k, a_min):
        update = LocationUpdate(
            uid, seq, Point(float(x), float(y)), PrivacyProfile(k, float(a_min))
        )
        assert decode_update(encode_update(update)) == update


class TestResponseChecksum:
    def make_candidates(self) -> CandidateList:
        return CandidateList(
            items=(
                ("t001", Rect(0.1, 0.1, 0.2, 0.2)),
                ("t002", Rect(0.3, 0.3, 0.4, 0.4)),
            ),
            search_region=Rect(0.0, 0.0, 0.5, 0.5),
            num_filters=2,
        )

    def test_roundtrip_with_checksum(self):
        candidates = self.make_candidates()
        assert decode_candidate_list(
            encode_candidate_list(candidates)
        ).items == candidates.items

    def test_every_single_byte_corruption_is_detected(self):
        payload = encode_candidate_list(self.make_candidates())
        for offset in range(len(payload)):
            corrupted = bytearray(payload)
            corrupted[offset] ^= 0x10
            with pytest.raises(ValueError):
                decode_candidate_list(bytes(corrupted))

    def test_legacy_payload_without_checksum_still_decodes(self):
        """crc == 0 marks a pre-checksum payload; it must stay readable."""
        payload = bytearray(encode_candidate_list(self.make_candidates()))
        payload[12:20] = b"\x00" * 8  # zero the crc slot
        decoded = decode_candidate_list(bytes(payload))
        assert len(decoded.items) == 2
