"""Unit tests for repro.geometry.point."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPointBasics:
    def test_distance_matches_hypot(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == pytest.approx(25.0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(0.5, -0.5) == Point(1.5, 0.5)

    def test_as_tuple_and_iter(self):
        p = Point(3.0, 7.0)
        assert p.as_tuple() == (3.0, 7.0)
        x, y = p
        assert (x, y) == (3.0, 7.0)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_almost_equals_tolerance(self):
        assert Point(0, 0).almost_equals(Point(1e-13, -1e-13))
        assert not Point(0, 0).almost_equals(Point(1e-3, 0))

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0  # type: ignore[misc]


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry(self, a: Point, b: Point):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points)
    def test_distance_nonnegative(self, a: Point, b: Point):
        assert a.distance_to(b) >= 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a: Point, b: Point, c: Point):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_squared_distance_consistent(self, a: Point, b: Point):
        assert math.sqrt(a.squared_distance_to(b)) == pytest.approx(
            a.distance_to(b), abs=1e-9
        )

    @given(points, points)
    def test_midpoint_is_equidistant(self, a: Point, b: Point):
        m = a.midpoint(b)
        assert m.distance_to(a) == pytest.approx(m.distance_to(b), abs=1e-6)
