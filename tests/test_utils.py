"""Tests for the utils package (rng, timer, units) and the error types."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import (
    CasperError,
    DuplicateUserError,
    EmptyDatasetError,
    InvalidProfileError,
    OutOfBoundsError,
    ProfileUnsatisfiableError,
    UnknownUserError,
)
from repro.utils import (
    Accumulator,
    Stopwatch,
    ensure_rng,
    format_count,
    format_seconds,
    spawn_rngs,
    transmission_seconds,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_deterministic(self):
        children_a = spawn_rngs(7, 3)
        children_b = spawn_rngs(7, 3)
        assert len(children_a) == 3
        for a, b in zip(children_a, children_b):
            assert a.random() == b.random()
        # Streams differ from each other.
        values = {ensure_rng(7).random()} | {c.random() for c in spawn_rngs(7, 3)}
        assert len(values) > 1


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_reusable(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed >= first


class TestAccumulator:
    def test_streaming_stats(self):
        acc = Accumulator()
        acc.extend([1.0, 2.0, 3.0])
        assert acc.count == 3
        assert acc.mean == pytest.approx(2.0)
        assert acc.minimum == 1.0
        assert acc.maximum == 3.0

    def test_empty_mean_is_zero(self):
        assert Accumulator().mean == 0.0

    def test_merge(self):
        a = Accumulator()
        a.extend([1.0, 2.0])
        b = Accumulator()
        b.extend([10.0])
        a.merge(b)
        assert a.count == 3
        assert a.maximum == 10.0
        assert a.mean == pytest.approx(13.0 / 3)


class TestUnits:
    def test_transmission_seconds_paper_model(self):
        # 1000 x 64 B records over 100 Mbps: 512000 bits / 1e8 bps.
        assert transmission_seconds(1000) == pytest.approx(5.12e-3)

    def test_transmission_zero_records(self):
        assert transmission_seconds(0) == 0.0

    def test_transmission_validation(self):
        with pytest.raises(ValueError):
            transmission_seconds(-1)
        with pytest.raises(ValueError):
            transmission_seconds(1, record_bytes=0)
        with pytest.raises(ValueError):
            transmission_seconds(1, bandwidth_mbps=0)

    def test_format_seconds_units(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0025).endswith("ms")
        assert format_seconds(2.5e-6).endswith("us")

    def test_format_count(self):
        assert format_count(42) == "42"
        assert format_count(42.5) == "42.50"
        assert format_count(12_300) == "12.3K"


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(UnknownUserError, CasperError)
        assert issubclass(UnknownUserError, KeyError)
        assert issubclass(DuplicateUserError, ValueError)
        assert issubclass(InvalidProfileError, ValueError)
        assert issubclass(OutOfBoundsError, CasperError)
        assert issubclass(ProfileUnsatisfiableError, CasperError)
        assert issubclass(EmptyDatasetError, CasperError)

    def test_unknown_user_carries_uid(self):
        err = UnknownUserError("u42")
        assert err.uid == "u42"
        assert "u42" in str(err)

    def test_duplicate_user_carries_uid(self):
        err = DuplicateUserError(7)
        assert err.uid == 7

    def test_one_except_catches_all(self):
        for exc in (
            UnknownUserError("x"),
            DuplicateUserError("x"),
            InvalidProfileError("bad"),
            ProfileUnsatisfiableError("no"),
            OutOfBoundsError("out"),
            EmptyDatasetError("empty"),
        ):
            with pytest.raises(CasperError):
                raise exc
