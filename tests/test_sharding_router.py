"""Unit tests for the deterministic spatial shard router."""

from __future__ import annotations

import pytest

from repro.anonymizer.cells import CellId
from repro.sharding import ShardRouter, morton_cell, morton_rank


class TestMorton:
    def test_roundtrip_every_cell_of_small_levels(self) -> None:
        for level in range(4):
            seen = set()
            for ix in range(2**level):
                for iy in range(2**level):
                    rank = morton_rank(CellId(level, ix, iy))
                    assert 0 <= rank < 4**level
                    assert morton_cell(rank, level) == CellId(level, ix, iy)
                    seen.add(rank)
            assert len(seen) == 4**level

    def test_siblings_share_contiguous_rank_block(self) -> None:
        # The four children of any cell occupy one aligned rank quad —
        # the property that keeps shard blocks spatially clustered.
        for parent_rank in range(16):
            parent = morton_cell(parent_rank, 2)
            child_ranks = sorted(morton_rank(c) for c in parent.children())
            assert child_ranks == [
                4 * parent_rank,
                4 * parent_rank + 1,
                4 * parent_rank + 2,
                4 * parent_rank + 3,
            ]


class TestShardRouter:
    @pytest.mark.parametrize(
        ("num_shards", "spine_level"),
        [(1, 0), (2, 1), (3, 1), (4, 1), (5, 2), (8, 2), (16, 2), (17, 3)],
    )
    def test_spine_level_is_minimal(self, num_shards: int, spine_level: int) -> None:
        router = ShardRouter(num_shards, height=6)
        assert router.spine_level == spine_level
        assert 4**spine_level >= num_shards
        assert spine_level == 0 or 4 ** (spine_level - 1) < num_shards

    def test_rejects_bad_shapes(self) -> None:
        with pytest.raises(ValueError):
            ShardRouter(0, height=4)
        with pytest.raises(ValueError):
            ShardRouter(5, height=1)  # needs spine level 2 > height

    def test_blocks_partition_exactly(self) -> None:
        router = ShardRouter(5, height=6)
        claimed: list[CellId] = []
        for shard in range(router.num_shards):
            blocks = router.blocks_of(shard)
            assert blocks, "every shard owns at least one block"
            assert all(b.level == router.spine_level for b in blocks)
            claimed.extend(blocks)
        assert len(claimed) == len(set(claimed)) == router.num_blocks

    def test_block_counts_balanced(self) -> None:
        for num_shards in (2, 3, 5, 7, 8):
            router = ShardRouter(num_shards, height=6)
            sizes = [len(router.blocks_of(s)) for s in range(num_shards)]
            assert max(sizes) - min(sizes) <= 1

    def test_ownership_follows_the_block(self) -> None:
        router = ShardRouter(4, height=5)
        for ix in range(8):
            for iy in range(8):
                cell = CellId(3, ix, iy)
                assert router.shard_of(cell) == router.shard_of(
                    cell.ancestor(router.spine_level)
                )
                assert router.owner_of(cell) == router.shard_of(cell)

    def test_spine_cells_have_no_owner(self) -> None:
        router = ShardRouter(5, height=6)  # spine levels 0 and 1
        root = CellId(0, 0, 0)
        assert router.is_spine(root)
        assert router.owner_of(root) is None
        with pytest.raises(ValueError):
            router.shard_of(CellId(1, 1, 0))
        assert not router.is_spine(CellId(2, 3, 1))

    def test_same_parent_neighbours_below_spine_never_cross(self) -> None:
        router = ShardRouter(4, height=5)  # spine level 1
        for ix in range(4):
            for iy in range(4):
                parent = CellId(2, ix, iy)
                owners = {router.shard_of(c) for c in parent.children()}
                assert len(owners) == 1

    def test_crosses_boundary(self) -> None:
        router = ShardRouter(4, height=5)  # spine level 1
        assert router.crosses_boundary(0)
        assert not router.crosses_boundary(1)
        assert not router.crosses_boundary(3)
        single = ShardRouter(1, height=5)  # no spine at all
        assert not single.crosses_boundary(0)

    def test_routing_is_deployment_independent(self) -> None:
        a = ShardRouter(6, height=5)
        b = ShardRouter(6, height=5)
        cells = [CellId(3, ix, iy) for ix in range(8) for iy in range(8)]
        assert [a.owner_of(c) for c in cells] == [b.owner_of(c) for c in cells]
