"""Stress and edge-case tests for the R-tree beyond the shared contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.spatial import BruteForceIndex, RTreeIndex
from tests.conftest import random_points, random_rects


class TestRTreeStress:
    def test_interleaved_ops_match_oracle(self, rng):
        rtree = RTreeIndex(max_entries=5)
        oracle = BruteForceIndex()
        live = set()
        next_id = 0
        for step in range(1200):
            roll = rng.random()
            if roll < 0.55 or not live:
                r = random_rects(rng, 1, max_side=0.05)[0]
                rtree.insert(next_id, r)
                oracle.insert(next_id, r)
                live.add(next_id)
                next_id += 1
            elif roll < 0.85:
                victim = int(rng.choice(list(live)))
                rtree.remove(victim)
                oracle.remove(victim)
                live.discard(victim)
            else:
                # Move (reinsert with the same id).
                victim = int(rng.choice(list(live)))
                r = random_rects(rng, 1, max_side=0.05)[0]
                rtree.insert(victim, r)
                oracle.insert(victim, r)
            if step % 200 == 0:
                rtree.check_invariants()
                q = Point(float(rng.random()), float(rng.random()))
                assert rtree.k_nearest(q, 5) == oracle.k_nearest(q, 5)
        rtree.check_invariants()
        region = Rect(0.25, 0.25, 0.75, 0.75)
        assert set(rtree.range_search(region)) == set(oracle.range_search(region))

    def test_drain_to_empty_and_refill(self, rng):
        rtree = RTreeIndex(max_entries=4)
        points = random_points(rng, 300)
        for i, p in enumerate(points):
            rtree.insert_point(i, p)
        for i in range(300):
            rtree.remove(i)
        assert len(rtree) == 0
        rtree.check_invariants()
        for i, p in enumerate(points[:50]):
            rtree.insert_point(i, p)
        rtree.check_invariants()
        assert len(rtree) == 50

    def test_collinear_points(self):
        """Degenerate geometry: all entries on one line still split fine."""
        rtree = RTreeIndex(max_entries=4)
        for i in range(100):
            rtree.insert_point(i, Point(i / 100.0, 0.5))
        rtree.check_invariants(strict_fill=True)
        assert rtree.nearest(Point(0.345, 0.5)) in (34, 35)

    def test_bulk_load_single_entry(self):
        rtree = RTreeIndex()
        rtree.bulk_load({"only": Rect.point(Point(0.5, 0.5))})
        assert rtree.nearest(Point(0, 0)) == "only"
        rtree.check_invariants()

    def test_bulk_load_sizes_around_node_capacity(self, rng):
        """STR packing edge cases: exactly M, M+1, M^2, M^2+1 entries."""
        for n in (16, 17, 256, 257):
            points = random_points(rng, n)
            rtree = RTreeIndex(max_entries=16)
            rtree.bulk_load({i: Rect.point(p) for i, p in enumerate(points)})
            rtree.check_invariants()
            oracle = BruteForceIndex()
            for i, p in enumerate(points):
                oracle.insert_point(i, p)
            q = Point(0.5, 0.5)
            assert rtree.k_nearest(q, min(5, n)) == oracle.k_nearest(q, min(5, n))

    def test_large_overlapping_rects(self, rng):
        """Heavily overlapping entries (worst case for R-trees) stay
        correct."""
        rects = [
            Rect(0.0, 0.0, float(rng.uniform(0.5, 1.0)), float(rng.uniform(0.5, 1.0)))
            for _ in range(120)
        ]
        rtree = RTreeIndex(max_entries=4)
        oracle = BruteForceIndex()
        for i, r in enumerate(rects):
            rtree.insert(i, r)
            oracle.insert(i, r)
        rtree.check_invariants()
        q = Point(0.9, 0.9)
        got = rtree.nearest(q)
        want = oracle.nearest(q)
        assert rtree.rect_of(got).min_distance_to_point(q) == pytest.approx(
            oracle.rect_of(want).min_distance_to_point(q)
        )

    def test_max_distance_nn_with_ties(self):
        rtree = RTreeIndex(max_entries=4)
        # Four symmetric rects: all the same max distance from center.
        rtree.insert("a", Rect(0.0, 0.0, 0.2, 0.2))
        rtree.insert("b", Rect(0.8, 0.0, 1.0, 0.2))
        rtree.insert("c", Rect(0.0, 0.8, 0.2, 1.0))
        rtree.insert("d", Rect(0.8, 0.8, 1.0, 1.0))
        winner = rtree.nearest_by_max_distance(Point(0.5, 0.5))
        assert winner in ("a", "b", "c", "d")


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove"]),
            st.floats(0, 1, allow_nan=False),
            st.floats(0, 1, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_rtree_vs_oracle_under_op_sequences(ops):
    rtree = RTreeIndex(max_entries=4)
    oracle = BruteForceIndex()
    live: list[int] = []
    next_id = 0
    for op, x, y in ops:
        if op == "insert" or not live:
            rtree.insert_point(next_id, Point(x, y))
            oracle.insert_point(next_id, Point(x, y))
            live.append(next_id)
            next_id += 1
        else:
            victim = live.pop(int(x * len(live)) % len(live))
            rtree.remove(victim)
            oracle.remove(victim)
    rtree.check_invariants()
    if live:
        q = Point(0.5, 0.5)
        assert rtree.k_nearest(q, min(3, len(live))) == oracle.k_nearest(
            q, min(3, len(live))
        )
