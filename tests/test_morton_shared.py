"""Bit-equality pin for the shared Morton module.

``repro.morton`` is the single definition site for every Z-order helper
previously copied between ``repro.anonymizer.soa`` and
``repro.sharding.router``.  These tests pin the interleave convention
(``ix`` at even bit positions, ``iy`` at odd) against a straight-loop
reference, verify every speed tier (vectorized magic masks, 16-bit
lookup table, pure-int compact) agrees bit for bit, and assert the old
import paths re-export the *same* objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer.cells import CellId
from repro.morton import (
    cell_of_morton,
    morton_cell,
    morton_decode,
    morton_encode,
    morton_of_cell,
    morton_of_xy,
    morton_rank,
)


def reference_interleave(ix: int, iy: int, bits: int) -> int:
    """The written-out spec: bit ``b`` of ``ix`` lands at position
    ``2b``, bit ``b`` of ``iy`` at position ``2b + 1``."""
    code = 0
    for bit in range(bits):
        code |= ((ix >> bit) & 1) << (2 * bit)
        code |= ((iy >> bit) & 1) << (2 * bit + 1)
    return code


def _sample_coords(level: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    side = 1 << level
    corners = [(0, 0), (side - 1, 0), (0, side - 1), (side - 1, side - 1)]
    random = [
        (int(rng.integers(side)), int(rng.integers(side))) for _ in range(32)
    ]
    return corners + random


@pytest.mark.parametrize("level", [0, 1, 2, 5, 9, 13, 16])
def test_scalar_encodes_match_reference(level: int) -> None:
    rng = np.random.default_rng(level)
    for ix, iy in _sample_coords(level, rng):
        expected = reference_interleave(ix, iy, max(level, 1))
        assert morton_of_xy(ix, iy) == expected
        cell = CellId(level, ix, iy) if level else CellId(0, 0, 0)
        if level:
            assert morton_of_cell(cell) == expected
            assert morton_rank(cell) == expected


@pytest.mark.parametrize("level", [1, 3, 7, 13])
def test_scalar_decodes_round_trip(level: int) -> None:
    rng = np.random.default_rng(100 + level)
    for ix, iy in _sample_coords(level, rng):
        m = reference_interleave(ix, iy, level)
        assert cell_of_morton(level, m) == CellId(level, ix, iy)
        assert morton_cell(m, level) == CellId(level, ix, iy)


def test_vectorized_matches_scalar() -> None:
    rng = np.random.default_rng(7)
    ix = rng.integers(0, 1 << 16, size=512).astype(np.int64)
    iy = rng.integers(0, 1 << 16, size=512).astype(np.int64)
    codes = morton_encode(ix, iy)
    for i in range(len(ix)):
        assert int(codes[i]) == morton_of_xy(int(ix[i]), int(iy[i]))
    dix, diy = morton_decode(codes)
    assert np.array_equal(dix, ix)
    assert np.array_equal(diy, iy)


def test_rank_and_cell_are_inverses_at_every_level() -> None:
    for level in range(0, 7):
        for rank in range(4**level if level < 4 else 256):
            cell = morton_cell(rank, level)
            assert cell.level == level
            assert morton_rank(cell) == rank


def test_old_import_paths_reexport_identically() -> None:
    from repro import morton
    from repro.anonymizer import soa
    from repro.sharding import router

    assert soa.morton_encode is morton.morton_encode
    assert soa.morton_decode is morton.morton_decode
    assert soa.morton_of_cell is morton.morton_of_cell
    assert soa.morton_of_xy is morton.morton_of_xy
    assert soa.cell_of_morton is morton.cell_of_morton
    assert router.morton_rank is morton.morton_rank
    assert router.morton_cell is morton.morton_cell

    from repro.sharding import morton_cell as pkg_cell
    from repro.sharding import morton_rank as pkg_rank

    assert pkg_rank is morton.morton_rank
    assert pkg_cell is morton.morton_cell
