"""Tests for the adaptive (incomplete pyramid) location anonymizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import AdaptiveAnonymizer, CellId, PrivacyProfile
from repro.errors import DuplicateUserError, ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect
from tests.conftest import UNIT, random_points


def populated(
    n: int = 200, height: int = 6, seed: int = 0, k_max: int = 20
) -> AdaptiveAnonymizer:
    rng = np.random.default_rng(seed)
    an = AdaptiveAnonymizer(UNIT, height=height)
    for i, p in enumerate(random_points(rng, n)):
        an.register(i, p, PrivacyProfile(k=int(rng.integers(1, k_max))))
    return an


class TestStructureAdaptation:
    def test_starts_with_root_only(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        assert an.num_maintained_cells == 1

    def test_relaxed_users_deepen_the_pyramid(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        rng = np.random.default_rng(0)
        for i, p in enumerate(random_points(rng, 200)):
            an.register(i, p, PrivacyProfile(k=1))
        # Fully relaxed users are satisfiable at the deepest level, so
        # the structure must have split substantially.
        assert an.num_maintained_cells > 50
        an.check_invariants()

    def test_strict_users_keep_pyramid_shallow(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        rng = np.random.default_rng(1)
        for i, p in enumerate(random_points(rng, 60)):
            an.register(i, p, PrivacyProfile(k=50))
        # k=50 with 60 users: at most one split level makes sense.
        assert an.num_maintained_cells <= 1 + 4 + 16
        an.check_invariants()

    def test_strict_users_fewer_cells_than_relaxed(self):
        rng = np.random.default_rng(2)
        points = random_points(rng, 300)
        relaxed = AdaptiveAnonymizer(UNIT, height=7)
        strict = AdaptiveAnonymizer(UNIT, height=7)
        for i, p in enumerate(points):
            relaxed.register(i, p, PrivacyProfile(k=1))
            strict.register(i, p, PrivacyProfile(k=100))
        assert strict.num_maintained_cells < relaxed.num_maintained_cells

    def test_merge_on_departures(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        rng = np.random.default_rng(3)
        points = random_points(rng, 200)
        for i, p in enumerate(points):
            an.register(i, p, PrivacyProfile(k=2))
        grown = an.num_maintained_cells
        for i in range(190):
            an.deregister(i)
        an.check_invariants()
        assert an.num_maintained_cells < grown
        assert an.stats.merges > 0

    def test_profile_change_can_trigger_restructure(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        rng = np.random.default_rng(4)
        points = random_points(rng, 100)
        # Everyone strict: shallow structure.
        for i, p in enumerate(points):
            an.register(i, p, PrivacyProfile(k=90))
        shallow = an.num_maintained_cells
        # One user relaxes completely: their region splits down.
        an.set_profile(0, PrivacyProfile(k=1))
        an.check_invariants()
        assert an.num_maintained_cells > shallow

    def test_height_limit_respected(self):
        an = AdaptiveAnonymizer(UNIT, height=2)
        rng = np.random.default_rng(5)
        for i, p in enumerate(random_points(rng, 500)):
            an.register(i, p, PrivacyProfile(k=1))
        an.check_invariants()
        assert all(cell.level <= 2 for cell in an._cells)


class TestMaintenance:
    def test_register_duplicate_raises(self):
        an = AdaptiveAnonymizer(UNIT, height=4)
        an.register("u", Point(0.5, 0.5), PrivacyProfile())
        with pytest.raises(DuplicateUserError):
            an.register("u", Point(0.5, 0.5), PrivacyProfile())

    def test_unknown_user_raises(self):
        an = AdaptiveAnonymizer(UNIT, height=4)
        with pytest.raises(UnknownUserError):
            an.update("ghost", Point(0.5, 0.5))
        with pytest.raises(UnknownUserError):
            an.cloak("ghost")
        with pytest.raises(UnknownUserError):
            an.deregister("ghost")

    def test_update_within_leaf_costs_nothing(self):
        an = AdaptiveAnonymizer(UNIT, height=6)
        an.register("u", Point(0.1, 0.1), PrivacyProfile(k=10))
        cost = an.update("u", Point(0.8, 0.8))
        # Single strict user: the root is the only cell, no counters move.
        assert cost == 0

    def test_counts_consistent_after_churn(self, rng):
        an = populated(150, height=6)
        for step in range(400):
            uid = int(rng.integers(150))
            x, y = rng.random(2)
            an.update(uid, Point(float(x), float(y)))
            if step % 50 == 0:
                an.check_invariants()
        an.check_invariants()

    def test_churn_with_registrations_and_departures(self, rng):
        an = populated(100, height=6, seed=7)
        next_uid = 100
        for step in range(200):
            roll = rng.random()
            if roll < 0.2:
                an.register(
                    next_uid,
                    Point(float(rng.random()), float(rng.random())),
                    PrivacyProfile(k=int(rng.integers(1, 30))),
                )
                next_uid += 1
            elif roll < 0.4 and an.num_users > 10:
                registered = [u for u in range(next_uid) if u in an]
                an.deregister(int(rng.choice(registered)))
            else:
                registered = [u for u in range(next_uid) if u in an]
                uid = int(rng.choice(registered))
                an.update(uid, Point(float(rng.random()), float(rng.random())))
        an.check_invariants()

    def test_cheaper_updates_than_basic_for_strict_profiles(self):
        """The headline claim of Section 4.2: with strict profiles the
        adaptive structure avoids deep counter maintenance."""
        from repro.anonymizer import BasicAnonymizer

        rng = np.random.default_rng(8)
        points = random_points(rng, 300)
        basic = BasicAnonymizer(UNIT, height=8)
        adaptive = AdaptiveAnonymizer(UNIT, height=8)
        for i, p in enumerate(points):
            basic.register(i, p, PrivacyProfile(k=150))
            adaptive.register(i, p, PrivacyProfile(k=150))
        basic.stats.reset()
        adaptive.stats.reset()
        moves = [
            (int(rng.integers(300)), Point(float(rng.random()), float(rng.random())))
            for _ in range(500)
        ]
        for uid, p in moves:
            basic.update(uid, p)
        for uid, p in moves:
            adaptive.update(uid, p)
        assert (
            adaptive.stats.updates_per_location_update
            < basic.stats.updates_per_location_update
        )


class TestCloaking:
    def test_cloak_contains_user_and_satisfies_profile(self):
        an = populated(300, height=6, seed=9)
        for uid in range(0, 300, 13):
            region = an.cloak(uid)
            profile = an.profile_of(uid)
            assert region.region.contains_point(an.location_of(uid))
            assert region.achieved_k >= profile.k
            assert region.area >= profile.a_min - 1e-12

    def test_achieved_k_matches_true_population(self):
        an = populated(250, height=6, seed=10)
        for uid in range(0, 250, 23):
            region = an.cloak(uid)
            assert an.users_in_rect(region.region) == region.achieved_k

    def test_cloak_location_unregistered(self):
        an = populated(300, height=6, seed=11)
        region = an.cloak_location(Point(0.25, 0.25), PrivacyProfile(k=10))
        assert region.achieved_k >= 10
        assert region.region.contains_point(Point(0.25, 0.25))

    def test_unsatisfiable_raises(self):
        an = AdaptiveAnonymizer(UNIT, height=4)
        an.register("u1", Point(0.5, 0.5), PrivacyProfile(k=50))
        with pytest.raises(ProfileUnsatisfiableError):
            an.cloak("u1")

    def test_cloak_starts_from_maintained_leaf(self):
        """The adaptive speedup: the cloak's Algorithm 1 starting cell is
        the maintained leaf, far above the pyramid bottom for strict
        users."""
        an = AdaptiveAnonymizer(UNIT, height=8)
        rng = np.random.default_rng(12)
        for i, p in enumerate(random_points(rng, 100)):
            an.register(i, p, PrivacyProfile(k=90))
        leaf = an.leaf_for_point(an.location_of(0))
        assert leaf.level < 4  # strict profiles keep the cut shallow

    def test_satisfaction_equivalent_to_basic(self):
        """Both anonymizers must satisfy the same profiles on the same
        population (the paper reports identical accuracy)."""
        from repro.anonymizer import BasicAnonymizer

        rng = np.random.default_rng(13)
        points = random_points(rng, 200)
        profiles = [PrivacyProfile(k=int(rng.integers(1, 40))) for _ in points]
        basic = BasicAnonymizer(UNIT, height=6)
        adaptive = AdaptiveAnonymizer(UNIT, height=6)
        for i, p in enumerate(points):
            basic.register(i, p, profiles[i])
            adaptive.register(i, p, profiles[i])
        for uid in range(0, 200, 7):
            rb = basic.cloak(uid)
            ra = adaptive.cloak(uid)
            assert rb.achieved_k >= profiles[uid].k
            assert ra.achieved_k >= profiles[uid].k
