"""Tests for CandidateList and the probabilistic overlap policies."""

from __future__ import annotations

import pytest

from repro.geometry import Point, Rect
from repro.processor import (
    AnyOverlap,
    CandidateList,
    ContainmentOnly,
    FractionOverlap,
)


def make_list(items, region=Rect(0, 0, 1, 1), nf=4) -> CandidateList:
    return CandidateList(items=tuple(items), search_region=region, num_filters=nf)


class TestCandidateList:
    def test_len_contains_oids(self):
        cl = make_list([("a", Rect.point(Point(0.1, 0.1))), ("b", Rect.point(Point(0.9, 0.9)))])
        assert len(cl) == 2
        assert "a" in cl and "c" not in cl
        assert cl.oids() == ["a", "b"]

    def test_refine_nearest_point_data(self):
        cl = make_list(
            [
                ("far", Rect.point(Point(0.9, 0.9))),
                ("near", Rect.point(Point(0.2, 0.2))),
            ]
        )
        assert cl.refine_nearest(Point(0.1, 0.1)) == "near"

    def test_refine_nearest_rankings_differ_for_rects(self):
        # "wide" is optimistically nearest (min) but pessimistically
        # farthest (max).
        wide = Rect(0.0, 0.0, 0.6, 0.6)
        small = Rect(0.3, 0.3, 0.35, 0.35)
        cl = make_list([("wide", wide), ("small", small)])
        u = Point(0.0, 0.0)
        assert cl.refine_nearest(u, by="min") == "wide"
        assert cl.refine_nearest(u, by="max") == "small"

    def test_refine_nearest_center(self):
        a = Rect(0.0, 0.0, 0.2, 0.2)  # center (0.1, 0.1)
        b = Rect(0.5, 0.5, 0.7, 0.7)  # center (0.6, 0.6)
        cl = make_list([("a", a), ("b", b)])
        assert cl.refine_nearest(Point(0.55, 0.55), by="center") == "b"

    def test_refine_invalid_ranking(self):
        cl = make_list([("a", Rect.point(Point(0, 0)))])
        with pytest.raises(ValueError):
            cl.refine_nearest(Point(0, 0), by="median")

    def test_refine_empty_raises(self):
        cl = make_list([])
        with pytest.raises(ValueError):
            cl.refine_nearest(Point(0, 0))

    def test_refine_within(self):
        cl = make_list(
            [
                ("in", Rect.point(Point(0.1, 0.1))),
                ("out", Rect.point(Point(0.9, 0.9))),
            ]
        )
        assert cl.refine_within(Point(0.0, 0.0), 0.2) == ["in"]

    def test_transmission_time_matches_model(self):
        cl = make_list([(i, Rect.point(Point(0, 0))) for i in range(1000)])
        # 1000 records * 64 B * 8 bits / 100 Mbps = 5.12e-3 s.
        assert cl.transmission_time() == pytest.approx(5.12e-3)

    def test_transmission_time_custom_channel(self):
        cl = make_list([(1, Rect.point(Point(0, 0)))])
        assert cl.transmission_time(record_bytes=128, bandwidth_mbps=1) == (
            pytest.approx(128 * 8 / 1e6)
        )


class TestOverlapPolicies:
    REGION = Rect(0, 0, 1, 1)

    def test_any_overlap(self):
        policy = AnyOverlap()
        assert policy.admits(Rect(0.9, 0.9, 1.5, 1.5), self.REGION)
        assert not policy.admits(Rect(1.2, 1.2, 1.5, 1.5), self.REGION)

    def test_fraction_overlap_threshold(self):
        policy = FractionOverlap(0.5)
        half_in = Rect(0.5, 0.0, 1.5, 1.0)
        assert policy.admits(half_in, self.REGION)
        mostly_out = Rect(0.9, 0.0, 1.9, 1.0)
        assert not policy.admits(mostly_out, self.REGION)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FractionOverlap(0.0)
        with pytest.raises(ValueError):
            FractionOverlap(1.5)

    def test_containment_only(self):
        policy = ContainmentOnly()
        assert policy.admits(Rect(0.2, 0.2, 0.4, 0.4), self.REGION)
        assert not policy.admits(Rect(0.9, 0.9, 1.1, 1.1), self.REGION)

    def test_inclusion_probability(self):
        policy = AnyOverlap()
        half_in = Rect(0.5, 0.0, 1.5, 1.0)
        assert policy.inclusion_probability(half_in, self.REGION) == pytest.approx(0.5)
