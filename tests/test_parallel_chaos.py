"""Chaos over the real transport: worker crashes on live processes.

The ``worker-crash`` scenario drives a ``parallel=True`` deployment —
actual OS processes, frames on real pipes — while the baseline stays
in-process, so a matching answer stream witnesses cross-runtime
equivalence under injected partial failure.  The ladder's contract is
unchanged: degrade availability, never privacy.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.resilience import (
    SCENARIOS,
    ChaosWorkload,
    FaultPlan,
    get_scenario,
    run_chaos,
)

PARALLEL = ChaosWorkload(
    users=10, targets=8, steps=60, continuous_queries=3, shards=4,
    parallel=True,
)


class TestWorkerCrashScenario:
    def test_registered_with_a_worker_crash_cadence(self) -> None:
        plan = SCENARIOS["worker-crash"]
        assert plan.worker_crash_period > 0
        assert not plan.is_quiet

    def test_plan_validation_rejects_negative_period(self) -> None:
        with pytest.raises(ValueError):
            FaultPlan(name="bad", seed=1, worker_crash_period=-1)

    def test_privacy_and_gate_hold_over_real_processes(self) -> None:
        report = run_chaos(get_scenario("worker-crash"), PARALLEL)
        assert report.ok
        assert report.privacy_violations == 0
        assert report.runtime["fault_counts"]["worker_crash"] > 0
        assert report.runtime["counters"]["worker_crashes"] > 0
        slo = report.slo
        assert slo["queries_answered"] > 0
        assert json.loads(report.to_json())["workload"]["parallel"] is True

    def test_report_is_byte_deterministic(self) -> None:
        plan = get_scenario("worker-crash")
        assert (
            run_chaos(plan, PARALLEL).to_json()
            == run_chaos(plan, PARALLEL).to_json()
        )

    def test_no_orphans_even_with_crashes(self) -> None:
        before = len(multiprocessing.active_children())
        run_chaos(get_scenario("worker-crash"), PARALLEL)
        assert len(multiprocessing.active_children()) == before

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_both_anonymizer_kinds_survive(self, kind) -> None:
        workload = ChaosWorkload(
            users=10, targets=8, steps=40, continuous_queries=3, shards=2,
            parallel=True, anonymizer=kind,
        )
        report = run_chaos(get_scenario("worker-crash"), workload)
        assert report.ok, kind
        assert report.privacy_violations == 0


class TestParallelUnderOtherScenarios:
    def test_wire_faults_hit_the_real_frame_stream(self) -> None:
        # drop/corrupt/reorder now act on genuine pipe bytes; the
        # stop-and-wait retransmission must still converge to matching
        # answers.
        for name in ("drop-heavy", "reorder"):
            report = run_chaos(get_scenario(name), PARALLEL)
            assert report.ok, name
            assert report.privacy_violations == 0
