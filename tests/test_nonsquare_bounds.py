"""End-to-end behaviour on a non-square service area.

The experiments all use the unit square, but nothing in Casper requires
it — county bounding boxes rarely oblige. These tests run the full
stack on a 2:1 service area to pin down that cell arithmetic, cloaking,
query processing and aggregates all honour general rectangles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import (
    AdaptiveAnonymizer,
    BasicAnonymizer,
    CellId,
    PrivacyProfile,
)
from repro.geometry import Point, Rect
from repro.processor import private_nn_over_public
from repro.server import Casper, MobileClient
from repro.spatial import RTreeIndex

WIDE = Rect(0.0, 0.0, 2.0, 1.0)


def wide_points(rng, n):
    return [
        Point(float(x), float(y))
        for x, y in zip(rng.uniform(0, 2, n), rng.uniform(0, 1, n))
    ]


class TestAnonymizersOnWideBounds:
    @pytest.mark.parametrize("cls", [BasicAnonymizer, AdaptiveAnonymizer])
    def test_cloaks_satisfy_profiles(self, cls, rng):
        an = cls(WIDE, height=6)
        points = wide_points(rng, 300)
        for i, p in enumerate(points):
            an.register(i, p, PrivacyProfile(k=int(rng.integers(1, 25))))
        an.check_invariants()
        for uid in range(0, 300, 13):
            region = an.cloak(uid)
            assert region.region.contains_point(points[uid])
            assert region.achieved_k >= an.profile_of(uid).k
            assert WIDE.contains_rect(region.region)

    def test_cells_inherit_aspect_ratio(self):
        an = BasicAnonymizer(WIDE, height=3)
        rect = an.grid.cell_rect(CellId(3, 0, 0))
        assert rect.width == pytest.approx(2.0 / 8)
        assert rect.height == pytest.approx(1.0 / 8)

    def test_amin_is_absolute_area(self, rng):
        an = BasicAnonymizer(WIDE, height=6)
        points = wide_points(rng, 200)
        for i, p in enumerate(points):
            an.register(i, p, PrivacyProfile(k=1))
        an.register("me", Point(1.0, 0.5), PrivacyProfile(k=1, a_min=0.5))
        region = an.cloak("me")
        assert region.area >= 0.5

    def test_pair_region_shapes(self, rng):
        """Sibling-pair cloaks on wide bounds are 4:1 or 1:1 rectangles
        (2:1 cells joined along either axis)."""
        an = BasicAnonymizer(WIDE, height=5)
        points = wide_points(rng, 400)
        for i, p in enumerate(points):
            an.register(i, p, PrivacyProfile(k=12))
        seen_pair = False
        for uid in range(200):
            region = an.cloak(uid)
            if len(region.cells) == 2:
                seen_pair = True
                ratio = region.region.width / region.region.height
                assert ratio == pytest.approx(4.0) or ratio == pytest.approx(1.0)
        assert seen_pair


class TestProcessorOnWideBounds:
    def test_inclusiveness_holds(self, rng):
        points = wide_points(rng, 400)
        index = RTreeIndex()
        index.bulk_load({i: Rect.point(p) for i, p in enumerate(points)})
        for _ in range(20):
            x = float(rng.uniform(0, 1.7))
            y = float(rng.uniform(0, 0.8))
            area = Rect(x, y, x + 0.3, y + 0.2)
            cl = private_nn_over_public(index, area, 4)
            for u in list(area.vertices()) + [area.center]:
                truth = min(
                    range(len(points)), key=lambda i: points[i].squared_distance_to(u)
                )
                assert truth in cl.oids()


class TestFullStackOnWideBounds:
    def test_casper_round_trip(self, rng):
        casper = Casper(WIDE, pyramid_height=6)
        casper.add_public_targets(
            {f"t{i}": p for i, p in enumerate(wide_points(rng, 150))}
        )
        for i, p in enumerate(wide_points(rng, 200)):
            casper.register_user(i, p, PrivacyProfile(k=int(rng.integers(1, 15))))
        me = MobileClient(casper, "me", Point(1.3, 0.4), PrivacyProfile(k=10))
        result = me.nearest_public()
        targets = dict(casper.server.public_index.items())
        truth = min(
            targets,
            key=lambda oid: targets[oid].min_distance_to_point(me.location),
        )
        assert targets[result.answer].min_distance_to_point(
            me.location
        ) == pytest.approx(targets[truth].min_distance_to_point(me.location))

    def test_density_mass_conserved(self, rng):
        casper = Casper(WIDE, pyramid_height=6)
        for i, p in enumerate(wide_points(rng, 150)):
            casper.register_user(i, p, PrivacyProfile(k=5))
        dmap = casper.density_map(resolution=8)
        assert dmap.total_expected == pytest.approx(150.0, abs=1e-6)
