"""Cross-implementation tests for the spatial indexes.

Every accelerated index (R-tree, grid, quadtree) is checked against the
brute-force oracle on identical data — the "index equivalence" invariant
of DESIGN.md that underpins the paper's claim of query-processor
independence from the underlying access method.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError, OutOfBoundsError
from repro.geometry import Point, Rect
from repro.spatial import (
    BruteForceIndex,
    GridIndex,
    QuadTreeIndex,
    RTreeIndex,
    SpatialIndex,
)
from tests.conftest import UNIT, random_points, random_rects


def make_all_indexes() -> list[SpatialIndex]:
    return [
        BruteForceIndex(),
        RTreeIndex(max_entries=8),
        GridIndex(UNIT, resolution=16),
        QuadTreeIndex(UNIT, leaf_capacity=4),
    ]


ACCELERATED = ["rtree", "grid", "quadtree"]


def make_index(kind: str) -> SpatialIndex:
    if kind == "rtree":
        return RTreeIndex(max_entries=8)
    if kind == "grid":
        return GridIndex(UNIT, resolution=16)
    if kind == "quadtree":
        return QuadTreeIndex(UNIT, leaf_capacity=4)
    raise ValueError(kind)


class TestBasicContract:
    @pytest.mark.parametrize("kind", ACCELERATED + ["brute"])
    def test_empty_index_raises_on_nearest(self, kind):
        idx = BruteForceIndex() if kind == "brute" else make_index(kind)
        with pytest.raises(EmptyDatasetError):
            idx.nearest(Point(0.5, 0.5))

    @pytest.mark.parametrize("kind", ACCELERATED + ["brute"])
    def test_insert_contains_remove(self, kind):
        idx = BruteForceIndex() if kind == "brute" else make_index(kind)
        idx.insert_point("a", Point(0.1, 0.1))
        assert "a" in idx
        assert len(idx) == 1
        assert idx.rect_of("a") == Rect.point(Point(0.1, 0.1))
        idx.remove("a")
        assert "a" not in idx
        assert len(idx) == 0

    @pytest.mark.parametrize("kind", ACCELERATED + ["brute"])
    def test_reinsert_same_oid_replaces(self, kind):
        idx = BruteForceIndex() if kind == "brute" else make_index(kind)
        idx.insert_point("a", Point(0.1, 0.1))
        idx.insert_point("a", Point(0.9, 0.9))
        assert len(idx) == 1
        assert idx.nearest(Point(1, 1)) == "a"
        assert idx.rect_of("a").center == Point(0.9, 0.9)

    @pytest.mark.parametrize("kind", ACCELERATED + ["brute"])
    def test_remove_unknown_raises(self, kind):
        idx = BruteForceIndex() if kind == "brute" else make_index(kind)
        with pytest.raises(KeyError):
            idx.remove("missing")

    def test_k_nonpositive_raises(self):
        idx = BruteForceIndex()
        idx.insert_point(1, Point(0.5, 0.5))
        with pytest.raises(ValueError):
            idx.k_nearest(Point(0, 0), 0)

    def test_k_larger_than_size_returns_all(self):
        idx = BruteForceIndex()
        for i in range(3):
            idx.insert_point(i, Point(0.1 * i, 0.1 * i))
        assert len(idx.k_nearest(Point(0, 0), 10)) == 3


class TestOracleEquivalence:
    @pytest.mark.parametrize("kind", ACCELERATED)
    def test_knn_matches_brute_force_points(self, kind, rng):
        points = random_points(rng, 400)
        oracle = BruteForceIndex()
        idx = make_index(kind)
        for i, p in enumerate(points):
            oracle.insert_point(i, p)
            idx.insert_point(i, p)
        for q in random_points(rng, 25):
            for k in (1, 3, 10):
                assert idx.k_nearest(q, k) == oracle.k_nearest(q, k)

    @pytest.mark.parametrize("kind", ACCELERATED)
    def test_range_matches_brute_force_points(self, kind, rng):
        points = random_points(rng, 400)
        oracle = BruteForceIndex()
        idx = make_index(kind)
        for i, p in enumerate(points):
            oracle.insert_point(i, p)
            idx.insert_point(i, p)
        for r in random_rects(rng, 20, max_side=0.4):
            assert set(idx.range_search(r)) == set(oracle.range_search(r))

    @pytest.mark.parametrize("kind", ACCELERATED)
    def test_rect_entries_match_brute_force(self, kind, rng):
        rects = random_rects(rng, 300, max_side=0.08)
        oracle = BruteForceIndex()
        idx = make_index(kind)
        for i, r in enumerate(rects):
            oracle.insert(i, r)
            idx.insert(i, r)
        for q in random_points(rng, 20):
            assert idx.nearest(q) == oracle.nearest(q) or (
                idx.rect_of(idx.nearest(q)).min_distance_to_point(q)
                == pytest.approx(
                    oracle.rect_of(oracle.nearest(q)).min_distance_to_point(q)
                )
            )
        for r in random_rects(rng, 20, max_side=0.3):
            assert set(idx.range_search(r)) == set(oracle.range_search(r))

    @pytest.mark.parametrize("kind", ACCELERATED)
    def test_max_distance_nn_matches(self, kind, rng):
        rects = random_rects(rng, 200, max_side=0.1)
        oracle = BruteForceIndex()
        idx = make_index(kind)
        for i, r in enumerate(rects):
            oracle.insert(i, r)
            idx.insert(i, r)
        for q in random_points(rng, 25):
            got = idx.nearest_by_max_distance(q)
            want = oracle.nearest_by_max_distance(q)
            assert idx.rect_of(got).max_distance_to_point(q) == pytest.approx(
                oracle.rect_of(want).max_distance_to_point(q)
            )

    @pytest.mark.parametrize("kind", ACCELERATED)
    def test_equivalence_survives_deletions(self, kind, rng):
        points = random_points(rng, 300)
        oracle = BruteForceIndex()
        idx = make_index(kind)
        for i, p in enumerate(points):
            oracle.insert_point(i, p)
            idx.insert_point(i, p)
        removed = rng.choice(len(points), size=150, replace=False)
        for i in removed:
            oracle.remove(int(i))
            idx.remove(int(i))
        for q in random_points(rng, 15):
            assert idx.k_nearest(q, 5) == oracle.k_nearest(q, 5)


class TestRTreeStructure:
    def test_invariants_after_inserts(self, rng):
        idx = RTreeIndex(max_entries=6)
        for i, p in enumerate(random_points(rng, 500)):
            idx.insert_point(i, p)
        idx.check_invariants(strict_fill=True)

    def test_invariants_after_deletes(self, rng):
        idx = RTreeIndex(max_entries=6)
        points = random_points(rng, 500)
        for i, p in enumerate(points):
            idx.insert_point(i, p)
        for i in range(0, 500, 3):
            idx.remove(i)
        idx.check_invariants()
        assert len(idx) == 500 - len(range(0, 500, 3))

    def test_bulk_load_invariants_and_queries(self, rng):
        points = random_points(rng, 1000)
        entries = {i: Rect.point(p) for i, p in enumerate(points)}
        idx = RTreeIndex(max_entries=16)
        idx.bulk_load(entries)
        idx.check_invariants()
        oracle = BruteForceIndex()
        oracle.bulk_load(entries)
        q = Point(0.5, 0.5)
        assert idx.k_nearest(q, 20) == oracle.k_nearest(q, 20)

    def test_bulk_load_empty(self):
        idx = RTreeIndex()
        idx.bulk_load({})
        assert len(idx) == 0

    def test_bulk_load_then_dynamic_updates(self, rng):
        points = random_points(rng, 200)
        idx = RTreeIndex(max_entries=8)
        idx.bulk_load({i: Rect.point(p) for i, p in enumerate(points)})
        for i, p in enumerate(random_points(rng, 100)):
            idx.insert_point(200 + i, p)
        for i in range(0, 200, 2):
            idx.remove(i)
        idx.check_invariants()
        assert len(idx) == 200

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RTreeIndex(max_entries=2)
        with pytest.raises(ValueError):
            RTreeIndex(max_entries=8, min_entries=5)

    def test_duplicate_points_allowed(self):
        idx = RTreeIndex(max_entries=4)
        for i in range(50):
            idx.insert_point(i, Point(0.5, 0.5))
        idx.check_invariants()
        assert len(idx.range_search(Rect(0.4, 0.4, 0.6, 0.6))) == 50


class TestGridIndex:
    def test_out_of_bounds_point_raises(self):
        grid = GridIndex(UNIT, 8)
        with pytest.raises(OutOfBoundsError):
            grid.cell_of_point(Point(2, 2))

    def test_cell_rect_tiles_bounds(self):
        grid = GridIndex(UNIT, 4)
        total = sum(grid.cell_rect(i, j).area for i in range(4) for j in range(4))
        assert total == pytest.approx(UNIT.area)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GridIndex(UNIT, 0)
        with pytest.raises(ValueError):
            GridIndex(Rect(0, 0, 0, 1), 4)

    def test_query_point_outside_bounds_still_works(self, rng):
        grid = GridIndex(UNIT, 8)
        oracle = BruteForceIndex()
        for i, p in enumerate(random_points(rng, 100)):
            grid.insert_point(i, p)
            oracle.insert_point(i, p)
        q = Point(1.5, 1.5)  # outside the grid, must still find true NNs
        assert grid.k_nearest(q, 3) == oracle.k_nearest(q, 3)


class TestQuadTree:
    def test_out_of_bounds_insert_raises(self):
        qt = QuadTreeIndex(UNIT)
        with pytest.raises(OutOfBoundsError):
            qt.insert_point("a", Point(1.5, 0.5))

    def test_subdivision_happens(self, rng):
        qt = QuadTreeIndex(UNIT, leaf_capacity=2, max_depth=10)
        for i, p in enumerate(random_points(rng, 100)):
            qt.insert_point(i, p)
        assert qt._root.children is not None

    def test_max_depth_respected(self):
        qt = QuadTreeIndex(UNIT, leaf_capacity=1, max_depth=3)
        # Pile many identical points: without the depth limit this would
        # recurse forever.
        for i in range(20):
            qt.insert_point(i, Point(0.001, 0.001))
        assert len(qt) == 20

    def test_straddling_rect_stays_at_root(self):
        qt = QuadTreeIndex(UNIT, leaf_capacity=1)
        center_straddler = Rect(0.4, 0.4, 0.6, 0.6)
        qt.insert("big", center_straddler)
        for i in range(5):
            qt.insert_point(i, Point(0.1 + 0.01 * i, 0.1))
        assert set(qt.range_search(Rect(0.45, 0.45, 0.55, 0.55))) == {"big"}


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        min_size=1,
        max_size=80,
    ),
    qx=st.floats(min_value=0, max_value=1, allow_nan=False),
    qy=st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_property_all_indexes_agree_on_nn_distance(data, qx, qy):
    """Hypothesis: for arbitrary point sets, all four indexes report a
    nearest neighbor at the same (minimal) distance."""
    q = Point(qx, qy)
    indexes = make_all_indexes()
    for idx in indexes:
        for i, (x, y) in enumerate(data):
            idx.insert_point(i, Point(x, y))
    dists = []
    for idx in indexes:
        oid = idx.nearest(q)
        dists.append(idx.rect_of(oid).min_distance_to_point(q))
    assert max(dists) - min(dists) < 1e-9
