"""Tests for the safe-region private kNN (processor layer).

The contract under test: ``private_knn_with_validity(idx, A, k,
margin=m)`` returns a candidate list that stays *inclusive* — contains
every exact kNN member — for any query point in any cloak contained in
``validity = A expanded by m``.  Hence a client whose cloak drifts
within the validity region refines the stale list to the same exact
answer a fresh query would produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.processor import (
    default_margin,
    private_knn_over_public,
    private_knn_with_validity,
)
from repro.spatial import BruteForceIndex
from tests.conftest import random_points


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def true_knn(points, u: Point, k: int) -> set[int]:
    order = sorted(
        range(len(points)), key=lambda i: points[i].squared_distance_to(u)
    )
    return set(order[:k])


def random_cloak(rng, lo=0.03, hi=0.15) -> Rect:
    w, h = rng.uniform(lo, hi, 2)
    x = float(rng.uniform(0, 1 - w))
    y = float(rng.uniform(0, 1 - h))
    return Rect(x, y, x + float(w), y + float(h))


def points_inside(rng, region: Rect, n: int) -> list[Point]:
    xs = rng.uniform(region.x_min, region.x_max, n)
    ys = rng.uniform(region.y_min, region.y_max, n)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


class TestZeroMargin:
    @pytest.mark.parametrize("num_filters", [1, 4])
    def test_equals_plain_knn(self, rng, num_filters):
        """margin=0 degenerates to the existing private kNN exactly."""
        points = random_points(rng, 300)
        idx = point_index(points)
        for _ in range(10):
            area = random_cloak(rng)
            plain = private_knn_over_public(idx, area, 4, num_filters)
            result = private_knn_with_validity(
                idx, area, 4, num_filters, margin=0.0
            )
            assert set(result.candidates.oids()) == set(plain.oids())
            assert result.validity == area
            assert result.k == result.k_effective == 4
            assert not result.clamped


class TestValidityInclusiveness:
    @pytest.mark.parametrize("k", [1, 3, 8])
    @pytest.mark.parametrize("num_filters", [1, 4])
    def test_inclusive_everywhere_in_validity(self, rng, k, num_filters):
        """The inflated list contains the true kNN of every point of the
        validity region, not just of the original cloak."""
        points = random_points(rng, 350)
        idx = point_index(points)
        for _ in range(8):
            area = random_cloak(rng)
            margin = 0.5 * max(area.width, area.height)
            result = private_knn_with_validity(
                idx, area, k, num_filters, margin=margin
            )
            oids = set(result.candidates.oids())
            validity = result.validity
            assert validity.contains_rect(area)
            for u in points_inside(rng, validity, 40):
                assert true_knn(points, u, k) <= oids

    def test_drifted_cloak_refines_identically(self, rng):
        """The property the monitor relies on: for any drifted cloak
        inside the validity region, refining the stale candidates at the
        client's exact position equals a fresh private kNN refined at
        the same position."""
        points = random_points(rng, 400)
        idx = point_index(points)
        k = 5
        for _ in range(8):
            area = random_cloak(rng)
            margin = default_margin(area, 0.75)
            stale = private_knn_with_validity(idx, area, k, margin=margin)
            validity = stale.validity
            for _ in range(6):
                w = min(0.08, validity.width, validity.height)
                x = float(rng.uniform(validity.x_min, validity.x_max - w))
                y = float(rng.uniform(validity.y_min, validity.y_max - w))
                drifted = Rect(x, y, x + w, y + w)
                assert validity.contains_rect(drifted)
                fresh = private_knn_over_public(idx, drifted, k)
                (u,) = points_inside(rng, drifted, 1)
                assert stale.candidates.refine_k_nearest(
                    u, k
                ) == fresh.refine_k_nearest(u, k)


class TestClampAndWatch:
    def test_k_clamped_to_dataset(self, rng):
        points = random_points(rng, 4)
        idx = point_index(points)
        result = private_knn_with_validity(idx, random_cloak(rng), 10)
        assert result.k == 10
        assert result.k_effective == 4
        assert result.clamped
        assert set(result.candidates.oids()) == {0, 1, 2, 3}

    def test_watch_region_covers_validity_and_discs(self, rng):
        """Every anchor's witness disc bbox sits inside the watch
        region: a target landing outside it can never change any answer
        for a cloak inside the validity region."""
        points = random_points(rng, 300)
        idx = point_index(points)
        area = random_cloak(rng)
        result = private_knn_with_validity(idx, area, 3, margin=0.02)
        assert result.watch_region.contains_rect(area)
        for v in area.vertices():
            d = sorted(p.distance_to(v) for p in points)[2]
            disc = Rect(v.x - d, v.y - d, v.x + d, v.y + d)
            assert result.watch_region.contains_rect(disc)

    def test_inserting_outside_watch_never_changes_answers(self, rng):
        points = random_points(rng, 250)
        idx = point_index(points)
        area = Rect(0.42, 0.42, 0.5, 0.5)
        k = 3
        result = private_knn_with_validity(idx, area, k, margin=0.01)
        watch = result.watch_region
        outside = [
            p
            for p in random_points(rng, 500)
            if not watch.contains_point(p)
        ]
        assume_some = outside[:20]
        for u in points_inside(rng, result.validity, 15):
            before = sorted(
                range(len(points)),
                key=lambda i: points[i].squared_distance_to(u),
            )[:k]
            worst = max(points[i].distance_to(u) for i in before)
            for q in assume_some:
                assert q.distance_to(u) >= worst


class TestValidation:
    def test_empty_dataset(self, rng):
        with pytest.raises(EmptyDatasetError):
            private_knn_with_validity(BruteForceIndex(), random_cloak(rng), 1)

    def test_bad_k_and_margin(self, rng):
        idx = point_index(random_points(rng, 10))
        area = random_cloak(rng)
        with pytest.raises(ValueError):
            private_knn_with_validity(idx, area, 0)
        with pytest.raises(ValueError):
            private_knn_with_validity(idx, area, 2, margin=-0.1)

    def test_default_margin(self):
        cloak = Rect(0.0, 0.0, 0.2, 0.1)
        assert default_margin(cloak) == pytest.approx(1.5 * 0.2)
        assert default_margin(cloak, 0.5) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            default_margin(cloak, -1.0)


@settings(max_examples=30)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 6),
    margin_factor=st.floats(0.0, 2.0, allow_nan=False),
)
def test_inclusiveness_property(seed, k, margin_factor):
    """Property sweep: for random datasets, cloaks and margins, the
    candidate list is inclusive at random points of the validity region."""
    rng = np.random.default_rng(seed)
    points = random_points(rng, 120)
    idx = point_index(points)
    area = random_cloak(rng)
    margin = margin_factor * max(area.width, area.height)
    result = private_knn_with_validity(idx, area, k, margin=margin)
    oids = set(result.candidates.oids())
    for u in points_inside(rng, result.validity, 12):
        assert true_knn(points, u, k) <= oids
