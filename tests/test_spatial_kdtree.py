"""Tests specific to the kd-tree index (oracle equivalence + rebuild
machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.spatial import BruteForceIndex, KDTreeIndex
from tests.conftest import random_points, random_rects


def pair(rng, n=300):
    points = random_points(rng, n)
    kd = KDTreeIndex()
    bf = BruteForceIndex()
    for i, p in enumerate(points):
        kd.insert_point(i, p)
        bf.insert_point(i, p)
    return kd, bf


class TestKDTree:
    def test_rejects_rect_entries(self):
        kd = KDTreeIndex()
        with pytest.raises(ValueError):
            kd.insert("r", Rect(0, 0, 0.1, 0.1))
        assert "r" not in kd  # failed insert leaves no residue
        with pytest.raises(ValueError):
            kd.bulk_load({"r": Rect(0, 0, 0.1, 0.1)})

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            KDTreeIndex(rebuild_fraction=0.0)
        with pytest.raises(ValueError):
            KDTreeIndex(rebuild_fraction=2.0)

    def test_knn_matches_oracle(self, rng):
        kd, bf = pair(rng)
        for q in random_points(rng, 25):
            for k in (1, 5, 20):
                assert kd.k_nearest(q, k) == bf.k_nearest(q, k)

    def test_range_matches_oracle(self, rng):
        kd, bf = pair(rng)
        for region in random_rects(rng, 25, max_side=0.4):
            assert set(kd.range_search(region)) == set(bf.range_search(region))

    def test_bulk_load_matches_oracle(self, rng):
        points = random_points(rng, 500)
        entries = {i: Rect.point(p) for i, p in enumerate(points)}
        kd = KDTreeIndex()
        kd.bulk_load(entries)
        bf = BruteForceIndex()
        bf.bulk_load(entries)
        q = Point(0.4, 0.4)
        assert kd.k_nearest(q, 15) == bf.k_nearest(q, 15)

    def test_deletions_tombstone_then_rebuild(self, rng):
        kd, bf = pair(rng, n=200)
        for i in range(0, 200, 2):
            kd.remove(i)
            bf.remove(i)
        q = Point(0.5, 0.5)
        assert kd.k_nearest(q, 10) == bf.k_nearest(q, 10)
        # Enough churn must have triggered at least one rebuild: the
        # internal tombstone set cannot exceed the rebuild threshold.
        assert len(kd._tombstones) <= max(8, 0.25 * kd._tree_size) + 1

    def test_reinsert_after_delete(self, rng):
        kd = KDTreeIndex()
        kd.insert_point("a", Point(0.1, 0.1))
        kd.remove("a")
        kd.insert_point("a", Point(0.9, 0.9))
        assert kd.nearest(Point(1, 1)) == "a"
        assert kd.rect_of("a").center == Point(0.9, 0.9)

    def test_interleaved_churn_matches_oracle(self, rng):
        kd = KDTreeIndex(rebuild_fraction=0.1)
        bf = BruteForceIndex()
        live = {}
        next_id = 0
        for step in range(600):
            roll = rng.random()
            if roll < 0.6 or not live:
                p = Point(float(rng.random()), float(rng.random()))
                kd.insert_point(next_id, p)
                bf.insert_point(next_id, p)
                live[next_id] = p
                next_id += 1
            else:
                victim = int(rng.choice(list(live)))
                kd.remove(victim)
                bf.remove(victim)
                del live[victim]
        q = Point(0.3, 0.3)
        assert kd.k_nearest(q, 10) == bf.k_nearest(q, 10)
        region = Rect(0.2, 0.2, 0.7, 0.7)
        assert set(kd.range_search(region)) == set(bf.range_search(region))

    def test_duplicate_coordinates(self):
        kd = KDTreeIndex()
        for i in range(50):
            kd.insert_point(i, Point(0.5, 0.5))
        assert len(kd.range_search(Rect(0.4, 0.4, 0.6, 0.6))) == 50
        assert len(kd.k_nearest(Point(0, 0), 50)) == 50

    def test_works_behind_query_processor(self, rng):
        from repro.processor import private_nn_over_public

        points = random_points(rng, 300)
        kd = KDTreeIndex()
        bf = BruteForceIndex()
        for i, p in enumerate(points):
            kd.insert_point(i, p)
            bf.insert_point(i, p)
        area = Rect(0.4, 0.4, 0.55, 0.55)
        assert set(private_nn_over_public(kd, area, 4).oids()) == set(
            private_nn_over_public(bf, area, 4).oids()
        )
