"""Tests for the road network and the network-based moving-object generator."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Point, Rect
from repro.mobility import (
    Trace,
    ARTERIAL,
    HIGHWAY,
    LOCAL,
    NetworkGenerator,
    RoadClass,
    RoadNetwork,
    generate_trace,
    synthetic_county_map,
)


def tiny_network() -> RoadNetwork:
    """A 2x2 square of arterials with one highway diagonal."""
    net = RoadNetwork()
    a = net.add_node(Point(0, 0))
    b = net.add_node(Point(1, 0))
    c = net.add_node(Point(1, 1))
    d = net.add_node(Point(0, 1))
    net.add_edge(a, b, ARTERIAL)
    net.add_edge(b, c, ARTERIAL)
    net.add_edge(c, d, ARTERIAL)
    net.add_edge(d, a, ARTERIAL)
    net.add_edge(a, c, HIGHWAY)
    return net


class TestRoadNetwork:
    def test_add_node_and_edge(self):
        net = tiny_network()
        assert net.num_nodes == 4
        assert net.num_edges == 5

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        with pytest.raises(ValueError):
            net.add_edge(a, a, LOCAL)

    def test_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node(Point(0, 0))
        with pytest.raises(ValueError):
            net.add_edge(0, 7, LOCAL)

    def test_coincident_nodes_rejected(self):
        net = RoadNetwork()
        a = net.add_node(Point(0.5, 0.5))
        b = net.add_node(Point(0.5, 0.5))
        with pytest.raises(ValueError):
            net.add_edge(a, b, LOCAL)

    def test_road_class_speed_positive(self):
        with pytest.raises(ValueError):
            RoadClass("bad", 0.0)

    def test_edge_other(self):
        net = tiny_network()
        edge = net.edge(0)
        assert edge.other(edge.u) == edge.v
        assert edge.other(edge.v) == edge.u
        with pytest.raises(ValueError):
            edge.other(99)

    def test_point_along_edge(self):
        net = tiny_network()
        # Edge 0 runs from (0,0) to (1,0).
        assert net.point_along_edge(0, 0.0) == Point(0, 0)
        assert net.point_along_edge(0, 0.5) == Point(0.5, 0)
        assert net.point_along_edge(0, 1.0) == Point(1, 0)
        # Clamped beyond the edge.
        assert net.point_along_edge(0, 2.0) == Point(1, 0)

    def test_shortest_path_prefers_highway(self):
        net = tiny_network()
        # a -> c: the diagonal highway (length sqrt(2) at speed 0.05,
        # time ~28.3) beats the two arterial legs (length 2 at 0.03,
        # time ~66.7).
        path = net.shortest_path(0, 2)
        assert len(path) == 1
        assert net.edge(path[0]).road_class is HIGHWAY

    def test_shortest_path_same_node_empty(self):
        net = tiny_network()
        assert net.shortest_path(1, 1) == []

    def test_shortest_path_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(Point(0, 0))
        net.add_node(Point(1, 1))
        with pytest.raises(ValueError):
            net.shortest_path(0, 1)

    def test_travel_time(self):
        net = tiny_network()
        edge = net.edge(0)
        assert edge.travel_time == pytest.approx(edge.length / ARTERIAL.speed)

    def test_is_connected(self):
        net = tiny_network()
        assert net.is_connected()
        net.add_node(Point(0.5, 0.5))
        assert not net.is_connected()

    def test_bounding_box(self):
        assert tiny_network().bounding_box() == Rect(0, 0, 1, 1)

    def test_empty_bounding_box_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork().bounding_box()


class TestSyntheticCountyMap:
    def test_connected_and_sized(self):
        net = synthetic_county_map(seed=0)
        assert net.is_connected()
        assert net.num_nodes > 100
        assert net.num_edges > net.num_nodes  # planar-ish but cyclic

    def test_deterministic_for_seed(self):
        a = synthetic_county_map(seed=7)
        b = synthetic_county_map(seed=7)
        assert a.num_nodes == b.num_nodes
        assert all(
            a.node_position(i) == b.node_position(i) for i in range(a.num_nodes)
        )

    def test_different_seeds_differ(self):
        a = synthetic_county_map(seed=1)
        b = synthetic_county_map(seed=2)
        assert any(
            a.node_position(i) != b.node_position(i)
            for i in range(min(a.num_nodes, b.num_nodes))
        )

    def test_nodes_within_bounds(self):
        bounds = Rect(0, 0, 1, 1)
        net = synthetic_county_map(seed=3, bounds=bounds)
        for i in range(net.num_nodes):
            assert bounds.contains_point(net.node_position(i))

    def test_has_all_road_classes(self):
        net = synthetic_county_map(seed=0)
        names = {e.road_class.name for e in net.edges()}
        assert names == {"highway", "arterial", "local"}

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_county_map(grid_size=1)
        with pytest.raises(ValueError):
            synthetic_county_map(jitter=0.7)


class TestNetworkGenerator:
    def test_population_size(self):
        gen = NetworkGenerator(tiny_network(), 25, seed=0)
        assert len(gen.objects) == 25
        assert len(gen.positions()) == 25

    def test_positions_on_network(self):
        net = tiny_network()
        gen = NetworkGenerator(net, 50, seed=1)
        for _ in range(10):
            gen.step(1.0)
        for oid, p in gen.positions().items():
            obj = gen.objects[oid]
            edge = net.edge(obj.current_edge(net))
            a, b = net.node_position(edge.u), net.node_position(edge.v)
            # Distance from the point to the segment is ~0.
            seg_len = a.distance_to(b)
            cross = abs(
                (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
            ) / seg_len
            assert cross < 1e-9

    def test_objects_actually_move(self):
        gen = NetworkGenerator(tiny_network(), 10, seed=2)
        before = gen.positions()
        gen.step(1.0)
        after = gen.positions()
        moved = sum(1 for oid in before if before[oid] != after[oid])
        assert moved == 10

    def test_step_distance_bounded_by_speed(self):
        net = tiny_network()
        gen = NetworkGenerator(net, 30, seed=3, speed_jitter=0.0)
        max_speed = max(e.road_class.speed for e in net.edges())
        before = gen.positions()
        dt = 1.0
        gen.step(dt)
        after = gen.positions()
        for oid in before:
            # Straight-line displacement can never exceed path distance.
            assert before[oid].distance_to(after[oid]) <= max_speed * dt + 1e-9

    def test_updates_report_all_objects(self):
        gen = NetworkGenerator(tiny_network(), 12, seed=4)
        updates = gen.step(0.5)
        assert sorted(u.uid for u in updates) == list(range(12))
        assert all(u.time == pytest.approx(0.5) for u in updates)

    def test_add_and_remove_objects(self):
        gen = NetworkGenerator(tiny_network(), 5, seed=5)
        new_oid = gen.add_object()
        assert new_oid == 5
        assert len(gen.objects) == 6
        gen.remove_object(0)
        assert len(gen.objects) == 5
        assert 0 not in gen.positions()

    def test_determinism(self):
        a = NetworkGenerator(tiny_network(), 20, seed=9)
        b = NetworkGenerator(tiny_network(), 20, seed=9)
        for _ in range(5):
            ua = a.step(1.0)
            ub = b.step(1.0)
            assert ua == ub

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkGenerator(tiny_network(), -1)
        with pytest.raises(ValueError):
            NetworkGenerator(tiny_network(), 5, speed_jitter=1.5)
        with pytest.raises(ValueError):
            NetworkGenerator(RoadNetwork(), 5)
        gen = NetworkGenerator(tiny_network(), 1)
        with pytest.raises(ValueError):
            gen.step(0.0)

    def test_long_run_stays_in_bbox(self):
        net = synthetic_county_map(seed=11, grid_size=6)
        gen = NetworkGenerator(net, 40, seed=12)
        bbox = net.bounding_box()
        for _ in range(50):
            gen.step(2.0)
        assert all(bbox.contains_point(p, tol=1e-9) for p in gen.positions().values())


class TestTrace:
    def test_generate_trace_shape(self):
        trace = generate_trace(30, 8, seed=0)
        assert trace.num_users == 30
        assert trace.num_ticks == 8
        assert trace.num_updates == 240

    def test_all_updates_time_ordered(self):
        trace = generate_trace(10, 5, seed=1)
        times = [u.time for u in trace.all_updates()]
        assert times == sorted(times)

    def test_trace_on_custom_network(self):
        trace = generate_trace(5, 3, seed=2, network=tiny_network())
        assert trace.num_users == 5


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(25, 4, seed=3)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.initial == trace.initial
        assert loaded.num_ticks == trace.num_ticks
        assert list(loaded.all_updates()) == list(trace.all_updates())

    def test_empty_ticks_roundtrip(self, tmp_path):
        trace = generate_trace(10, 0, seed=4)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_ticks == 0
        assert loaded.num_users == 10

    def test_replay_equivalence(self, tmp_path):
        """Replaying a loaded trace yields identical anonymizer state."""
        from repro.anonymizer import BasicAnonymizer, PrivacyProfile
        from repro.geometry import Rect

        trace = generate_trace(40, 3, seed=5)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        results = []
        for t in (trace, loaded):
            an = BasicAnonymizer(Rect(0, 0, 1, 1), height=5)
            for uid, p in sorted(t.initial.items()):
                an.register(uid, p, PrivacyProfile(k=3))
            for update in t.all_updates():
                an.update(update.uid, update.point)
            results.append([an.cloak(uid).region for uid in range(0, 40, 7)])
        assert results[0] == results[1]
