"""Tests for the runner, ASCII charts, and the CLI entry point."""

from __future__ import annotations

import dataclasses

import pytest

from repro.__main__ import main as cli_main
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.experiments.common import SMALL
from repro.evaluation.results import ExperimentResult
from repro.evaluation.runner import FIGURES, format_report, run_experiments

TINY = dataclasses.replace(
    SMALL,
    num_users=500,
    num_targets=300,
    num_queries=10,
    num_cloaks=50,
    trace_ticks=1,
    user_counts=(200, 400),
    target_counts=(200, 400),
)


class TestRunner:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(10, 18)}

    def test_run_subset(self):
        results = run_experiments(["fig13", "fig15"], TINY)
        assert set(results) == {"fig13", "fig15"}
        assert set(results["fig13"]) == {"a", "b"}

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig99"], TINY)

    def test_format_report_contains_tables_and_charts(self):
        results = run_experiments(["fig15"], TINY)
        report = format_report(results)
        assert "# fig15" in report
        assert "Figure 15a" in report
        assert "|" in report  # chart frame present

    def test_format_report_without_charts(self):
        results = run_experiments(["fig15"], TINY)
        report = format_report(results, charts=False)
        assert "+---" not in report


class TestParallelRunner:
    """``parallel=N`` must be a pure throughput knob: same figures, same
    panels, same bytes (timing panels excepted — they are wall-clock
    measurements and differ between any two runs, serial or not)."""

    @staticmethod
    def _is_timing_panel(panel: ExperimentResult) -> bool:
        label = panel.y_label.lower()
        return "time" in label or "sec" in label

    def test_parallel_identical_to_serial(self):
        names = ["fig13", "fig15"]
        serial = run_experiments(names, TINY)
        parallel = run_experiments(names, TINY, parallel=2)
        assert list(parallel) == names  # request order preserved
        compared = 0
        for name in names:
            assert set(serial[name]) == set(parallel[name])
            for key, panel in serial[name].items():
                if self._is_timing_panel(panel):
                    continue
                assert panel.format_table() == parallel[name][key].format_table()
                compared += 1
        assert compared > 0

    def test_single_figure_runs_inline(self):
        results = run_experiments(["fig15"], TINY, parallel=4)
        assert set(results) == {"fig15"}

    def test_invalid_parallel_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig15"], TINY, parallel=0)

    def test_cli_parallel_flag(self, capsys, monkeypatch):
        monkeypatch.setenv("CASPER_BENCH_SCALE", "tiny")
        assert cli_main(
            ["figures", "fig15", "--parallel", "2", "--no-charts"]
        ) == 0
        assert "fig15" in capsys.readouterr().out


class TestAsciiChart:
    def panel(self) -> ExperimentResult:
        p = ExperimentResult("Fig X", "demo", "n", "seconds", [1, 10, 100])
        p.add_series("alpha", [1.0, 5.0, 9.0])
        p.add_series("beta", [9.0, 5.0, 1.0])
        return p

    def test_chart_structure(self):
        chart = render_chart(self.panel(), width=40, height=8)
        lines = chart.splitlines()
        assert lines[0].startswith("== Fig X")
        assert sum(1 for line in lines if line.endswith("|")) == 8
        assert "o alpha" in chart and "* beta" in chart
        assert "1" in lines[-3]  # x labels rendered

    def test_extreme_markers_at_extreme_rows(self):
        chart = render_chart(self.panel(), width=40, height=8)
        lines = [l for l in chart.splitlines() if l.endswith("|")]
        assert "o" in lines[0] or "*" in lines[0]  # max row occupied
        assert "o" in lines[-1] or "*" in lines[-1]  # min row occupied

    def test_constant_series_does_not_crash(self):
        p = ExperimentResult("F", "flat", "x", "y", [1, 2])
        p.add_series("s", [3.0, 3.0])
        assert "F" in render_chart(p)

    def test_nan_values_skipped(self):
        p = ExperimentResult("F", "nan", "x", "y", [1, 2])
        p.add_series("s", [float("nan"), 2.0])
        assert "F" in render_chart(p)

    def test_all_nan(self):
        p = ExperimentResult("F", "nan", "x", "y", [1])
        p.add_series("s", [float("nan")])
        assert "all NaN" in render_chart(p)

    def test_empty_panel(self):
        p = ExperimentResult("F", "empty", "x", "y", [])
        assert "no data" in render_chart(p)

    def test_single_x_value(self):
        p = ExperimentResult("F", "one", "x", "y", [5])
        p.add_series("s", [2.0])
        assert "F" in render_chart(p)


class TestCli:
    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out

    def test_demo(self, capsys):
        assert cli_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "exact answer" in out

    def test_unknown_figure(self, capsys):
        assert cli_main(["figures", "fig99"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert cli_main([]) == 2
        assert "figures" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        assert cli_main([
            "simulate", "--ticks", "2", "--users", "150",
            "--targets", "100", "--queries", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "tick   0" in out
        assert "density" in out


class TestApiDocsInSync:
    def test_generated_api_docs_match(self):
        """docs/api.md must be regenerated when the public API changes."""
        import pathlib
        import sys

        tools_dir = pathlib.Path(__file__).resolve().parent.parent / "tools"
        sys.path.insert(0, str(tools_dir))
        try:
            import gen_api_docs

            expected = gen_api_docs.generate()
        finally:
            sys.path.remove(str(tools_dir))
        current = gen_api_docs.OUT_PATH.read_text()
        assert current == expected, (
            "docs/api.md is stale; run: python tools/gen_api_docs.py"
        )
