"""Tests for the CI bench-regression gate (tools/bench_gate.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)


def make_report(quick: bool = True, **ratios: float) -> dict:
    base = {
        "cloak": 10.0,
        "knn_private": 8.0,
        "batch": 6.0,
        "shard_scaling": 1.8,
        "shard_parallel": 4.0,
        "pyramid_scale": 30.0,
        "continuous_mobility": 12.0,
    }
    base.update(ratios)
    report: dict = {"quick": quick}
    # A section may carry several gated keys (shard_parallel gates both
    # its cloak and update quotients); every key gets the section value.
    for section, key in bench_gate.GATED_RATIOS:
        report.setdefault(section, {})[key] = base[section]
    return report


class TestCompare:
    def test_identical_reports_pass(self):
        report = make_report()
        lines, failures = bench_gate.compare(report, report, 0.25)
        assert failures == []
        assert len(lines) == len(bench_gate.GATED_RATIOS)

    def test_within_tolerance_passes(self):
        reference = make_report()
        current = make_report(cloak=10.0 * 0.8)  # 20% drop < 25% bound
        _lines, failures = bench_gate.compare(current, reference, 0.25)
        assert failures == []

    def test_regression_beyond_tolerance_fails(self):
        reference = make_report()
        current = make_report(knn_private=8.0 * 0.5)
        _lines, failures = bench_gate.compare(current, reference, 0.25)
        assert len(failures) == 1
        assert "knn_private.speedup regressed" in failures[0]

    def test_missing_ratio_fails(self):
        reference = make_report()
        current = make_report()
        del current["batch"]["speedup"]
        _lines, failures = bench_gate.compare(current, reference, 0.25)
        assert any("batch.speedup: missing" in f for f in failures)

    def test_nonpositive_reference_fails(self):
        reference = make_report(cloak=0.0)
        _lines, failures = bench_gate.compare(make_report(), reference, 0.25)
        assert any("not positive" in f for f in failures)

    def test_improvements_always_pass(self):
        reference = make_report()
        current = make_report(cloak=100.0, knn_private=80.0, batch=60.0)
        _lines, failures = bench_gate.compare(current, reference, 0.25)
        assert failures == []


class TestReferenceSelection:
    def test_quick_report_selects_quick_reference(self):
        assert bench_gate.pick_reference({"quick": True}).name == (
            "BENCH_engine_quick.json"
        )
        assert bench_gate.pick_reference({"quick": False}).name == (
            "BENCH_engine.json"
        )

    def test_committed_references_exist_and_declare_their_workload(self):
        quick = json.loads((REPO_ROOT / "BENCH_engine_quick.json").read_text())
        full = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        assert quick["quick"] is True
        assert full["quick"] is False
        for section, key in bench_gate.GATED_RATIOS:
            assert quick[section][key] > 1.0
            assert full[section][key] > 1.0


class TestMain:
    def write(self, tmp_path: Path, name: str, payload: dict) -> Path:
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_passing_run_exits_0(self, tmp_path, capsys):
        reference = self.write(tmp_path, "ref.json", make_report())
        report = self.write(tmp_path, "report.json", make_report())
        code = bench_gate.main([str(report), "--reference", str(reference)])
        assert code == 0
        assert "bench gate OK" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        reference = self.write(tmp_path, "ref.json", make_report())
        report = self.write(
            tmp_path, "report.json", make_report(batch=6.0 * 0.5)
        )
        code = bench_gate.main([str(report), "--reference", str(reference)])
        assert code == 1
        assert "GATE FAILURE" in capsys.readouterr().err

    def test_quick_flag_mismatch_exits_2(self, tmp_path, capsys):
        reference = self.write(tmp_path, "ref.json", make_report(quick=True))
        report = self.write(tmp_path, "report.json", make_report(quick=False))
        code = bench_gate.main([str(report), "--reference", str(reference)])
        assert code == 2
        assert "workload mismatch" in capsys.readouterr().err

    def test_missing_report_exits_2(self, tmp_path):
        assert bench_gate.main([str(tmp_path / "missing.json")]) == 2

    def test_malformed_report_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        assert bench_gate.main([str(bad)]) == 2

    def test_bad_tolerance_exits_2(self, tmp_path):
        report = self.write(tmp_path, "report.json", make_report())
        assert bench_gate.main([str(report), "--max-slowdown", "1.5"]) == 2

    def test_committed_quick_reference_gates_itself(self, capsys):
        code = bench_gate.main([str(REPO_ROOT / "BENCH_engine_quick.json")])
        assert code == 0
