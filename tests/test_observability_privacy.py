"""Privacy-leak tests for the telemetry egress path.

The observability layer is a second data stream leaving the trusted
anonymizer (the first is the cloaked region itself), so it gets the
same adversarial treatment as the query path: run the *full* Casper
stack — registration, NN/kNN/range queries, batches — with telemetry
enabled, then inspect every exported label value and span attribute as
an attacker would and assert nothing location-shaped made it out.

The static half of the defence (the CSP008 lint rule over call sites)
is exercised in ``test_lint_rules.py`` via the fixtures under
``tests/lint_fixtures/csp008_telemetry/``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.geometry import Point
from repro.observability import (
    TelemetryExport,
    enabled,
    looks_like_coordinates,
)
from repro.server import Casper
from repro.anonymizer import PrivacyProfile
from tests.conftest import UNIT, random_points


def build_casper(kind: str, rng: np.random.Generator) -> Casper:
    casper = Casper(UNIT, pyramid_height=6, anonymizer=kind)
    casper.add_public_targets(
        {f"station-{i}": p for i, p in enumerate(random_points(rng, 120))}
    )
    for uid, point in enumerate(random_points(rng, 150)):
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(2, 12)))
        )
    return casper


def run_workload(casper: Casper) -> list[Point]:
    """Drive every query surface; returns the exact locations used."""
    exact = [casper.anonymizer.location_of(uid) for uid in range(8)]
    for uid in range(4):
        casper.query_nearest_public(uid)
        casper.query_nearest_private(uid)
        casper.query_range_public(uid, radius=0.2)
    casper.query_batch(
        [
            (0, "nn_public"),
            (1, "knn_public", 3),
            (2, "range_public", 0.15),
            (3, "nn_public"),
        ]
    )
    return exact


def iter_label_values(export: TelemetryExport):
    for entry in export.metrics["metrics"]:
        for key, value in entry["labels"]:
            yield f"metric {entry['name']} label {key}", value


def iter_span_attributes(export: TelemetryExport):
    def walk(span):
        for key, value in span["attributes"].items():
            yield f"span {span['name']} attribute {key}", value
        for child in span["children"]:
            yield from walk(child)

    for root in export.spans:
        yield from walk(root)


@pytest.mark.parametrize("kind", ["basic", "adaptive"])
class TestFullStackTelemetryIsLocationFree:
    def _export(self, kind):
        rng = np.random.default_rng(2006)
        with enabled() as session:
            casper = build_casper(kind, rng)
            exact = run_workload(casper)
            export = TelemetryExport.from_observability(session)
        assert len(export.metrics["metrics"]) > 0
        assert len(export.spans) > 0
        return export, exact

    def test_no_label_or_attribute_parses_as_coordinates(self, kind):
        export, _exact = self._export(kind)
        checked = 0
        for where, value in list(iter_label_values(export)) + list(
            iter_span_attributes(export)
        ):
            checked += 1
            assert isinstance(value, (str, int, bool)), (
                f"{where}: {value!r} is {type(value).__name__}, not a "
                "telemetry-safe type"
            )
            assert not isinstance(value, float)
            if isinstance(value, str):
                assert not looks_like_coordinates(value), (
                    f"{where}: {value!r} parses as a coordinate pair"
                )
        assert checked > 0

    def test_no_exact_location_appears_in_either_wire_format(self, kind):
        export, exact = self._export(kind)
        wire = export.to_json() + "\n" + export.to_prometheus()
        for p in exact:
            for rendering in (
                f"{p.x}, {p.y}",
                f"{p.x},{p.y}",
                f"Point({p.x}",
                repr(p.x),
                repr(p.y),
            ):
                assert rendering not in wire, (
                    f"exact location rendering {rendering!r} leaked into "
                    "exported telemetry"
                )

    def test_label_values_are_drawn_from_fixed_vocabulary(self, kind):
        """Every string label is a categorical from the instrumentation
        catalogue — never data-dependent free text an exact location
        could be smuggled through."""
        export, _exact = self._export(kind)
        allowed = {
            "basic",
            "adaptive",
            "hit",
            "miss",
            "eviction",
            "invalidation",
            "computed",
            "deduplicated",
            "public",
            "private",
            "filter_selection",
            "extension",
            "candidates",
            "nn_public",
            "nn_private",
            "knn_public",
            "range_public",
            "range_private",
            "batch_public",
            "run_batch",
            "count_private",
            "possible_nn_private",
            "density_private",
        }
        for where, value in iter_label_values(export):
            if isinstance(value, str):
                assert value in allowed, f"{where}: unexpected label {value!r}"


class TestExportIsTheOnlyEgress:
    def test_prometheus_text_is_coordinate_free(self):
        rng = np.random.default_rng(7)
        with enabled() as session:
            casper = build_casper("adaptive", rng)
            run_workload(casper)
            text = TelemetryExport.from_observability(session).to_prometheus()
        # Label portions must not smuggle coordinate pairs; numeric
        # sample values (one number per line) cannot form a pair.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            label_part = line[line.find("{"): line.rfind("}") + 1]
            assert not looks_like_coordinates(label_part), line

    def test_snapshot_json_roundtrips_after_workload(self):
        rng = np.random.default_rng(11)
        with enabled() as session:
            casper = build_casper("basic", rng)
            run_workload(casper)
            export = TelemetryExport.from_observability(session)
        restored = export.restore_metrics()
        assert restored.snapshot() == export.metrics
        again = json.loads(export.to_json())
        assert again["metrics"] == export.metrics


class TestMetricsCLI:
    def test_metrics_command_emits_valid_json(self, capsys, monkeypatch):
        import repro.__main__ as cli

        monkeypatch.chdir("/root/repo")
        assert cli.main(["metrics", "--example", "quickstart"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert {"metrics", "spans", "slos"} <= set(parsed)
        names = {e["name"] for e in parsed["metrics"]["metrics"]}
        assert "casper_cloak_requests_total" in names

    def test_metrics_command_emits_prometheus(self, capsys, monkeypatch):
        import repro.__main__ as cli

        monkeypatch.chdir("/root/repo")
        assert (
            cli.main(
                ["metrics", "--example", "quickstart", "--format", "prometheus"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE casper_cloak_seconds histogram" in out
        assert not looks_like_coordinates(out.replace("\n", " | "))

    def test_metrics_command_rejects_unknown_example(self, capsys, monkeypatch):
        import repro.__main__ as cli

        monkeypatch.chdir("/root/repo")
        assert cli.main(["metrics", "--example", "no_such_example"]) == 2
        assert "available:" in capsys.readouterr().err
