"""Tests for snapshot/restore, the degradation ladder, and idempotent
updates (repro.resilience.runtime + anonymizer snapshot support).

The contract under test everywhere: *degrade availability, never
privacy* — no rung of the ladder may emit a cloak below the user's
``(k, A_min)``, and every recovery path must leave the anonymizer
internally consistent.
"""

from __future__ import annotations

import pytest

from repro.anonymizer import (
    AdaptiveAnonymizer,
    BasicAnonymizer,
    PrivacyProfile,
)
from repro.errors import (
    DegradedModeError,
    QueryDeliveryError,
    UpdateDeliveryError,
)
from repro.geometry import Point, Rect
from repro.resilience import (
    FaultPlan,
    ResilienceConfig,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.server.casper import Casper

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
QUIET = FaultPlan(name="quiet", seed=0)


def make_anonymizer(kind: str):
    if kind == "basic":
        return BasicAnonymizer(BOUNDS, 5)
    return AdaptiveAnonymizer(BOUNDS, 5)


@pytest.mark.parametrize("kind", ["basic", "adaptive"])
class TestSnapshotRestore:
    def test_restore_rolls_back_registrations_and_moves(self, kind):
        anon = make_anonymizer(kind)
        for i in range(10):
            anon.register(f"u{i}", Point(0.1 + 0.05 * i, 0.5), PrivacyProfile(k=3))
        state = anon.snapshot()
        for i in range(5):
            anon.register(f"extra{i}", Point(0.9, 0.9), PrivacyProfile(k=2))
        anon.update("u0", Point(0.95, 0.95))
        anon.deregister("u9")
        anon.restore(state)
        assert anon.num_users == 10
        assert "extra0" not in anon
        assert "u9" in anon
        assert anon.location_of("u0") == Point(0.1, 0.5)
        anon.check_invariants()

    def test_snapshot_survives_repeated_restores(self, kind):
        anon = make_anonymizer(kind)
        anon.register("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        state = anon.snapshot()
        for _ in range(3):
            anon.register("junk", Point(0.8, 0.8), PrivacyProfile(k=1))
            anon.restore(state)
            assert anon.num_users == 1
            anon.check_invariants()

    def test_restore_rejects_foreign_state(self, kind):
        anon = make_anonymizer(kind)
        with pytest.raises(TypeError):
            anon.restore(object())

    def test_restore_invalidates_the_cloak_cache(self, kind):
        """Regression: a cloak computed before ``restore`` must not be
        served from cache afterwards — the pyramid counts changed."""
        anon = make_anonymizer(kind)
        point = Point(0.1, 0.1)
        for i in range(6):
            anon.register(f"u{i}", point, PrivacyProfile(k=5))
        state = anon.snapshot()
        before = anon.cloak("u0")
        # Mutate: a crowd joins, so a post-restore cloak of the same
        # (cell, profile) key could legitimately differ; then restore.
        for i in range(20):
            anon.register(f"crowd{i}", point, PrivacyProfile(k=2))
        anon.cloak("u0")  # re-populate the cache against the crowd
        anon.restore(state)
        after = anon.cloak("u0")
        fresh = make_anonymizer("basic" if kind == "basic" else "adaptive")
        for i in range(6):
            fresh.register(f"u{i}", point, PrivacyProfile(k=5))
        oracle = fresh.cloak("u0")
        assert after.region == oracle.region == before.region
        assert after.achieved_k == oracle.achieved_k


def resilient_casper(
    plan: FaultPlan,
    *,
    retry: RetryPolicy | None = None,
    config: ResilienceConfig | None = None,
    anonymizer: str = "basic",
) -> tuple[Casper, ResilienceRuntime]:
    runtime = ResilienceRuntime(plan, retry=retry, config=config)
    casper = Casper(BOUNDS, pyramid_height=5, anonymizer=anonymizer, resilience=runtime)
    return casper, runtime


class TestCrashRecovery:
    def test_crash_restores_the_attach_time_snapshot(self):
        casper, runtime = resilient_casper(
            FaultPlan(seed=0, crash_period=1),
            config=ResilienceConfig(snapshot_every=1000),
        )
        casper.register_user("u0", Point(0.5, 0.5), PrivacyProfile(k=1))
        assert "u0" in casper.anonymizer
        runtime.guard()  # crash_period=1: this op crashes and restores
        assert "u0" not in casper.anonymizer  # snapshot predates u0
        assert runtime.counters["recoveries"] == 1
        casper.anonymizer.check_invariants()

    def test_snapshot_cadence_limits_rollback(self):
        casper, runtime = resilient_casper(
            FaultPlan(seed=0, crash_period=5),
            config=ResilienceConfig(snapshot_every=1),
        )
        casper.register_user("u0", Point(0.5, 0.5), PrivacyProfile(k=1))
        for _ in range(4):
            runtime.guard()  # each op snapshots post-registration state
        runtime.guard()  # the 5th op crashes
        assert runtime.counters["recoveries"] == 1
        assert "u0" in casper.anonymizer  # restored from a fresh snapshot

    def test_sequence_table_rolls_back_with_the_state(self):
        """A crash must roll the dedup table back atomically with the
        anonymizer, or replayed updates would be misjudged as stale."""
        casper, runtime = resilient_casper(
            QUIET, config=ResilienceConfig(snapshot_every=1000)
        )
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        runtime._take_snapshot()
        assert runtime.send_update("u0", 1, Point(0.3, 0.3), PrivacyProfile(k=1)) == "applied"
        runtime._restore()
        # After rollback the same sequence number is fresh again.
        assert runtime.send_update("u0", 1, Point(0.4, 0.4), PrivacyProfile(k=1)) == "applied"
        assert casper.anonymizer.location_of("u0") == Point(0.4, 0.4)


class TestIdempotentUpdates:
    def test_duplicate_sequence_is_acknowledged_but_ignored(self):
        casper, runtime = resilient_casper(QUIET)
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        assert runtime.send_update("u0", 1, Point(0.3, 0.3), PrivacyProfile(k=1)) == "applied"
        assert runtime.send_update("u0", 1, Point(0.9, 0.9), PrivacyProfile(k=1)) == "stale"
        assert casper.anonymizer.location_of("u0") == Point(0.3, 0.3)
        assert runtime.counters["duplicates_ignored"] == 1

    def test_older_sequence_never_overwrites_newer_state(self):
        casper, runtime = resilient_casper(QUIET)
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        runtime.send_update("u0", 5, Point(0.5, 0.5), PrivacyProfile(k=1))
        assert runtime.send_update("u0", 3, Point(0.1, 0.1), PrivacyProfile(k=1)) == "stale"
        assert casper.anonymizer.location_of("u0") == Point(0.5, 0.5)

    def test_lost_user_heals_from_the_next_update(self):
        casper, runtime = resilient_casper(QUIET)
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        casper.anonymizer.deregister("u0")  # silent state loss
        outcome = runtime.send_update("u0", 2, Point(0.6, 0.6), PrivacyProfile(k=1))
        assert outcome == "recovered"
        assert "u0" in casper.anonymizer
        assert casper.anonymizer.location_of("u0") == Point(0.6, 0.6)
        assert runtime.counters["recoveries"] == 1

    def test_guard_can_lose_the_operating_user(self):
        casper, runtime = resilient_casper(FaultPlan(seed=0, lose_user=1.0))
        casper.register_user("u0", Point(0.5, 0.5), PrivacyProfile(k=1))
        runtime.guard("u0")
        assert "u0" not in casper.anonymizer
        assert runtime.injector.counts["state_loss"] == 1

    def test_exhausted_retries_raise_update_delivery_error(self):
        casper, runtime = resilient_casper(
            FaultPlan(seed=0, drop=1.0),
            retry=RetryPolicy(max_attempts=3),
        )
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        with pytest.raises(UpdateDeliveryError):
            runtime.send_update("u0", 1, Point(0.3, 0.3), PrivacyProfile(k=1))
        assert runtime.counters["updates_abandoned"] == 1
        assert runtime.counters["retries"] == 2
        assert runtime.virtual_backoff_seconds > 0.0
        # The device's report is lost but the anonymizer state is intact.
        assert casper.anonymizer.location_of("u0") == Point(0.2, 0.2)

    def test_corrupted_update_is_rejected_then_retried(self):
        # corrupt=1.0 flips one bit per transmit; the CRC rejects every
        # copy, so delivery fails cleanly rather than applying garbage.
        casper, runtime = resilient_casper(
            FaultPlan(seed=0, corrupt=1.0),
            retry=RetryPolicy(max_attempts=2),
        )
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        with pytest.raises(UpdateDeliveryError):
            runtime.send_update("u0", 1, Point(0.3, 0.3), PrivacyProfile(k=1))
        assert runtime.counters["corrupt_rejected"] >= 2
        assert casper.anonymizer.location_of("u0") == Point(0.2, 0.2)


class TestResponseChannel:
    def test_quiet_channel_round_trips_candidates(self):
        casper, runtime = resilient_casper(QUIET)
        for i in range(4):
            casper.register_user(f"u{i}", Point(0.3, 0.3), PrivacyProfile(k=2))
        casper.add_public_targets({f"t{i}": Point(0.1 * i, 0.5) for i in range(5)})
        result = casper.query_nearest_public("u0")
        assert result.answer is not None

    def test_all_responses_lost_raises_query_delivery_error(self):
        casper, runtime = resilient_casper(
            FaultPlan(seed=0, drop=1.0), retry=RetryPolicy(max_attempts=2)
        )
        # Registration traffic uses the trusted path, so only the
        # response channel sees the 100% drop.
        for i in range(4):
            casper.register_user(f"u{i}", Point(0.3, 0.3), PrivacyProfile(k=2))
        casper.add_public_targets({"t0": Point(0.8, 0.8)})
        with pytest.raises(QueryDeliveryError):
            casper.query_nearest_public("u0")


class TestDegradationLadder:
    def cluster(self, casper: Casper, n: int, k: int, at: Point) -> None:
        for i in range(n):
            casper.register_user(f"u{i}", at, PrivacyProfile(k=k))

    def test_fresh_cloak_is_remembered(self):
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 6, 3, Point(0.1, 0.1))
        region, mode = runtime.cloak_or_degrade("u0")
        assert mode == "fresh"
        assert region.achieved_k >= 3

    def test_stale_rung_serves_a_revalidated_remembered_cloak(self):
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 6, 3, Point(0.1, 0.1))
        fresh_region, _ = runtime.cloak_or_degrade("u0")
        casper.anonymizer.deregister("u0")  # fresh cloak now impossible
        region, mode = runtime.cloak_or_degrade("u0")
        assert mode == "stale"
        assert region.region == fresh_region.region
        # Revalidated against the live population (u0 is gone).
        assert region.achieved_k >= 3
        assert runtime.fallback_modes["stale"] == 1
        assert runtime.privacy_violations() == []

    def test_escalated_rung_walks_to_a_satisfying_ancestor(self):
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 6, 3, Point(0.1, 0.1))
        runtime.cloak_or_degrade("u0")
        # Everyone else moves to the far corner: the remembered region
        # empties out, but an ancestor cell still covers the crowd.
        for i in range(1, 6):
            casper.anonymizer.update(f"u{i}", Point(0.9, 0.9))
        casper.anonymizer.deregister("u0")
        region, mode = runtime.cloak_or_degrade("u0")
        assert mode == "escalated"
        assert region.achieved_k >= 3
        assert runtime.privacy_violations() == []

    def test_expired_grace_window_skips_the_stale_rung(self):
        casper, runtime = resilient_casper(
            QUIET, config=ResilienceConfig(stale_grace_ops=0)
        )
        self.cluster(casper, 6, 3, Point(0.1, 0.1))
        runtime.cloak_or_degrade("u0")
        runtime.guard()  # ops advance past the zero-width grace window
        casper.anonymizer.deregister("u0")
        _region, mode = runtime.cloak_or_degrade("u0")
        assert mode == "escalated"

    def test_unservable_profile_degrades_explicitly(self):
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 2, 5, Point(0.1, 0.1))  # k=5 with 2 users
        with pytest.raises(DegradedModeError):
            runtime.cloak_or_degrade("u0")
        assert runtime.counters["degraded_operations"] >= 1
        assert runtime.privacy_violations() == []

    def test_storage_cloak_bottoms_out_at_the_full_area(self):
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 2, 5, Point(0.1, 0.1))
        region = runtime.storage_cloak("u0")
        assert region.region == BOUNDS
        assert runtime.fallback_modes.get("cold_start", 0) >= 1
        # The full-area emission is exempt by construction, not ignored.
        assert runtime.privacy_violations() == []

    def test_no_rung_ever_emits_below_the_profile(self):
        """Sweep the ladder scenarios and scan every recorded emission."""
        casper, runtime = resilient_casper(QUIET)
        self.cluster(casper, 8, 4, Point(0.2, 0.2))
        runtime.cloak_or_degrade("u0")
        casper.anonymizer.deregister("u0")
        runtime.cloak_or_degrade("u0")  # stale
        for i in range(1, 8):
            casper.anonymizer.update(f"u{i}", Point(0.85, 0.85))
        runtime.cloak_or_degrade("u0")  # escalated
        assert {e.mode for e in runtime.emissions} >= {"fresh", "stale"}
        assert runtime.privacy_violations() == []


class TestFaultFreePathUnchanged:
    def test_without_resilience_the_trusted_path_is_used(self):
        casper = Casper(BOUNDS, pyramid_height=5, anonymizer="basic")
        assert casper.resilience is None
        casper.register_user("u0", Point(0.2, 0.2), PrivacyProfile(k=1))
        assert casper.submit_location_update(
            "u0", Point(0.4, 0.4), 1, PrivacyProfile(k=1)
        ) == "applied"
        assert casper.anonymizer.location_of("u0") == Point(0.4, 0.4)

    def test_resilient_deployments_require_string_uids(self):
        casper, _runtime = resilient_casper(QUIET)
        casper.anonymizer.register(7, Point(0.2, 0.2), PrivacyProfile(k=1))
        with pytest.raises(TypeError):
            casper.submit_location_update(7, Point(0.4, 0.4), 1, PrivacyProfile(k=1))

    def test_one_runtime_serves_one_casper(self):
        runtime = ResilienceRuntime(QUIET)
        Casper(BOUNDS, pyramid_height=5, anonymizer="basic", resilience=runtime)
        with pytest.raises(RuntimeError):
            Casper(BOUNDS, pyramid_height=5, anonymizer="basic", resilience=runtime)
