"""Tests for the basic (complete pyramid) location anonymizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import BasicAnonymizer, PrivacyProfile
from repro.errors import (
    DuplicateUserError,
    OutOfBoundsError,
    ProfileUnsatisfiableError,
    UnknownUserError,
)
from repro.geometry import Point, Rect
from tests.conftest import UNIT, random_points


def populated(n: int = 200, height: int = 6, seed: int = 0) -> BasicAnonymizer:
    rng = np.random.default_rng(seed)
    an = BasicAnonymizer(UNIT, height=height)
    for i, p in enumerate(random_points(rng, n)):
        an.register(i, p, PrivacyProfile(k=int(rng.integers(1, 20))))
    return an


class TestRegistration:
    def test_register_and_counts(self):
        an = BasicAnonymizer(UNIT, height=3)
        an.register("u1", Point(0.1, 0.1), PrivacyProfile(k=1))
        assert an.num_users == 1
        assert "u1" in an
        cell = an.grid.cell_of(Point(0.1, 0.1))
        assert an.cell_count(cell) == 1
        an.check_invariants()

    def test_duplicate_registration_raises(self):
        an = BasicAnonymizer(UNIT, height=3)
        an.register("u1", Point(0.1, 0.1), PrivacyProfile())
        with pytest.raises(DuplicateUserError):
            an.register("u1", Point(0.2, 0.2), PrivacyProfile())

    def test_register_out_of_bounds_raises(self):
        an = BasicAnonymizer(UNIT, height=3)
        with pytest.raises(OutOfBoundsError):
            an.register("u1", Point(2, 2), PrivacyProfile())

    def test_deregister(self):
        an = BasicAnonymizer(UNIT, height=3)
        an.register("u1", Point(0.1, 0.1), PrivacyProfile())
        an.deregister("u1")
        assert an.num_users == 0
        an.check_invariants()

    def test_deregister_unknown_raises(self):
        an = BasicAnonymizer(UNIT, height=3)
        with pytest.raises(UnknownUserError):
            an.deregister("ghost")

    def test_profile_accessors(self):
        an = BasicAnonymizer(UNIT, height=3)
        profile = PrivacyProfile(k=7, a_min=0.01)
        an.register("u1", Point(0.3, 0.3), profile)
        assert an.profile_of("u1") == profile
        assert an.location_of("u1") == Point(0.3, 0.3)
        an.set_profile("u1", PrivacyProfile(k=2))
        assert an.profile_of("u1").k == 2


class TestUpdates:
    def test_update_within_cell_costs_nothing(self):
        an = BasicAnonymizer(UNIT, height=2)
        an.register("u1", Point(0.01, 0.01), PrivacyProfile())
        cost = an.update("u1", Point(0.02, 0.02))
        assert cost == 0
        assert an.location_of("u1") == Point(0.02, 0.02)

    def test_update_to_sibling_costs_two(self):
        an = BasicAnonymizer(UNIT, height=3)
        an.register("u1", Point(0.01, 0.01), PrivacyProfile())
        # Move to the horizontal sibling cell at the lowest level: only
        # the two lowest-level counters change.
        cost = an.update("u1", Point(0.126 + 0.01, 0.01))
        assert cost == 2
        an.check_invariants()

    def test_update_across_space_costs_full_depth(self):
        height = 5
        an = BasicAnonymizer(UNIT, height=height)
        an.register("u1", Point(0.01, 0.01), PrivacyProfile())
        cost = an.update("u1", Point(0.99, 0.99))
        assert cost == 2 * height  # both branches below the root
        an.check_invariants()

    def test_update_unknown_raises(self):
        an = BasicAnonymizer(UNIT, height=3)
        with pytest.raises(UnknownUserError):
            an.update("ghost", Point(0.5, 0.5))

    def test_counts_consistent_after_many_updates(self, rng):
        an = populated(150, height=5)
        for _ in range(300):
            uid = int(rng.integers(150))
            x, y = rng.random(2)
            an.update(uid, Point(float(x), float(y)))
        an.check_invariants()

    def test_stats_accounting(self):
        an = BasicAnonymizer(UNIT, height=4)
        an.register("u1", Point(0.1, 0.1), PrivacyProfile())
        an.stats.reset()
        an.update("u1", Point(0.9, 0.9))
        an.update("u1", Point(0.9, 0.9))
        assert an.stats.location_updates == 2
        assert an.stats.cell_changes == 1
        assert an.stats.updates_per_location_update == pytest.approx(
            an.stats.counter_updates / 2
        )


class TestCloaking:
    def test_cloak_contains_user(self):
        an = populated(300, height=6)
        for uid in range(0, 300, 17):
            region = an.cloak(uid)
            assert region.region.contains_point(an.location_of(uid))

    def test_cloak_satisfies_profile(self):
        an = populated(300, height=6, seed=1)
        for uid in range(0, 300, 13):
            profile = an.profile_of(uid)
            region = an.cloak(uid)
            assert region.achieved_k >= profile.k
            assert region.area >= profile.a_min - 1e-12

    def test_achieved_k_matches_true_population(self):
        an = populated(250, height=6, seed=2)
        for uid in range(0, 250, 23):
            region = an.cloak(uid)
            assert an.users_in_rect(region.region) == region.achieved_k

    def test_relaxed_user_gets_small_region(self):
        an = populated(400, height=7, seed=3)
        an.register("me", Point(0.5, 0.5), PrivacyProfile(k=1))
        region = an.cloak("me")
        # k=1 is satisfied by the user's own lowest-level cell.
        assert region.level == 7

    def test_amin_respected(self):
        an = populated(200, height=6, seed=4)
        an.register("me", Point(0.5, 0.5), PrivacyProfile(k=1, a_min=0.3))
        region = an.cloak("me")
        assert region.area >= 0.3

    def test_unsatisfiable_raises(self):
        an = BasicAnonymizer(UNIT, height=4)
        an.register("u1", Point(0.5, 0.5), PrivacyProfile(k=50))
        with pytest.raises(ProfileUnsatisfiableError):
            an.cloak("u1")

    def test_cloak_location_unregistered(self):
        an = populated(300, height=6, seed=5)
        region = an.cloak_location(Point(0.25, 0.25), PrivacyProfile(k=10))
        assert region.achieved_k >= 10
        assert region.region.contains_point(Point(0.25, 0.25))

    def test_cloak_unknown_user_raises(self):
        an = BasicAnonymizer(UNIT, height=3)
        with pytest.raises(UnknownUserError):
            an.cloak("ghost")

    def test_cloaked_region_is_data_independent_shape(self):
        """Quality requirement: regions are cells or sibling pairs of the
        pre-defined pyramid partitioning, never data-dependent MBRs."""
        an = populated(300, height=6, seed=6)
        for uid in range(0, 300, 11):
            region = an.cloak(uid)
            assert len(region.cells) in (1, 2)
            expected = an.grid.cell_rect(region.cells[0])
            for cell in region.cells[1:]:
                expected = expected.union(an.grid.cell_rect(cell))
            assert region.region == expected
