"""Tests for private range queries and public queries over private data."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.processor import (
    FractionOverlap,
    private_range_over_private,
    private_range_over_public,
    public_range_count_over_private,
)
from repro.spatial import BruteForceIndex
from tests.conftest import random_points, random_rects


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


class TestPrivateRangeOverPublic:
    def test_negative_radius_rejected(self, rng):
        idx = point_index(random_points(rng, 10))
        with pytest.raises(ValueError):
            private_range_over_public(idx, Rect(0, 0, 0.1, 0.1), -1.0)

    def test_inclusiveness(self, rng):
        """Any target within `radius` of any user position in the area
        must be a candidate."""
        points = random_points(rng, 400)
        idx = point_index(points)
        area = Rect(0.4, 0.4, 0.55, 0.5)
        radius = 0.08
        cl = private_range_over_public(idx, area, radius)
        oids = set(cl.oids())
        for _ in range(40):
            u = Point(
                float(rng.uniform(area.x_min, area.x_max)),
                float(rng.uniform(area.y_min, area.y_max)),
            )
            in_range = {i for i, p in enumerate(points) if p.distance_to(u) <= radius}
            assert in_range <= oids

    def test_minimality_boundary(self, rng):
        """A target just beyond the Minkowski expansion is excluded; one
        just inside is included."""
        idx = point_index(random_points(rng, 50))
        area = Rect(0.4, 0.4, 0.5, 0.5)
        radius = 0.1
        inside = Point(0.5 + radius - 1e-6, 0.45)
        outside = Point(0.5 + radius + 1e-3, 0.45)
        idx.insert_point("inside", inside)
        idx.insert_point("outside", outside)
        cl = private_range_over_public(idx, area, radius)
        assert "inside" in cl.oids()
        assert "outside" not in cl.oids()

    def test_client_refinement(self, rng):
        points = random_points(rng, 300)
        idx = point_index(points)
        area = Rect(0.4, 0.4, 0.5, 0.5)
        radius = 0.07
        cl = private_range_over_public(idx, area, radius)
        u = Point(0.43, 0.47)
        refined = set(cl.refine_within(u, radius))
        truth = {i for i, p in enumerate(points) if p.distance_to(u) <= radius}
        assert refined == truth

    def test_zero_radius(self, rng):
        points = random_points(rng, 100)
        idx = point_index(points)
        area = Rect(0.2, 0.2, 0.4, 0.4)
        cl = private_range_over_public(idx, area, 0.0)
        oids = set(cl.oids())
        truth = {i for i, p in enumerate(points) if area.contains_point(p)}
        assert truth <= oids


class TestPrivateRangeOverPrivate:
    def test_inclusiveness_with_cloaked_targets(self, rng):
        rects = random_rects(rng, 200, max_side=0.06)
        idx = rect_index(rects)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        radius = 0.05
        cl = private_range_over_private(idx, area, radius)
        oids = set(cl.oids())
        for _ in range(30):
            u = Point(
                float(rng.uniform(area.x_min, area.x_max)),
                float(rng.uniform(area.y_min, area.y_max)),
            )
            actual = [
                Point(
                    float(rng.uniform(r.x_min, r.x_max)),
                    float(rng.uniform(r.y_min, r.y_max)),
                )
                for r in rects
            ]
            in_range = {
                i for i, p in enumerate(actual) if p.distance_to(u) <= radius
            }
            assert in_range <= oids

    def test_policy_application(self, rng):
        rects = random_rects(rng, 200, max_side=0.1)
        idx = rect_index(rects)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        full = private_range_over_private(idx, area, 0.05)
        thinned = private_range_over_private(
            idx, area, 0.05, policy=FractionOverlap(0.8)
        )
        assert set(thinned.oids()) <= set(full.oids())


class TestPublicCountOverPrivate:
    def test_bounds_ordering(self, rng):
        rects = random_rects(rng, 300, max_side=0.1)
        idx = rect_index(rects)
        result = public_range_count_over_private(idx, Rect(0.2, 0.2, 0.7, 0.7))
        assert result.minimum <= result.expected <= result.maximum
        assert result.maximum == len(result.candidates)

    def test_true_count_within_bounds(self, rng):
        """For any actual placements, the true count lies in
        [minimum, maximum]."""
        rects = random_rects(rng, 250, max_side=0.08)
        idx = rect_index(rects)
        region = Rect(0.3, 0.3, 0.6, 0.6)
        result = public_range_count_over_private(idx, region)
        for _ in range(30):
            actual = [
                Point(
                    float(rng.uniform(r.x_min, r.x_max)),
                    float(rng.uniform(r.y_min, r.y_max)),
                )
                for r in rects
            ]
            true_count = sum(1 for p in actual if region.contains_point(p))
            assert result.minimum <= true_count <= result.maximum

    def test_expected_estimator_unbiased(self, rng):
        """Monte-Carlo: the mean of true counts over uniform placements
        approaches the expected estimate (uniformity guarantee)."""
        rects = random_rects(rng, 150, max_side=0.1)
        idx = rect_index(rects)
        region = Rect(0.25, 0.25, 0.75, 0.75)
        result = public_range_count_over_private(idx, region)
        trials = 400
        total = 0
        for _ in range(trials):
            actual_in = 0
            for r in rects:
                p = Point(
                    float(rng.uniform(r.x_min, r.x_max)),
                    float(rng.uniform(r.y_min, r.y_max)),
                )
                if region.contains_point(p):
                    actual_in += 1
            total += actual_in
        mc_mean = total / trials
        assert mc_mean == pytest.approx(result.expected, rel=0.05)

    def test_exact_data_gives_exact_count(self, rng):
        """Degenerate (point) private data: min == expected == max."""
        points = random_points(rng, 200)
        idx = rect_index([Rect.point(p) for p in points])
        region = Rect(0.1, 0.1, 0.5, 0.5)
        result = public_range_count_over_private(idx, region)
        truth = sum(1 for p in points if region.contains_point(p))
        assert result.minimum == result.maximum == truth
        assert result.expected == pytest.approx(truth)

    def test_disjoint_region_zero(self, rng):
        rects = [Rect(0.1, 0.1, 0.2, 0.2)]
        idx = rect_index(rects)
        result = public_range_count_over_private(idx, Rect(0.8, 0.8, 0.9, 0.9))
        assert result.maximum == 0
        assert result.expected == 0.0


@settings(max_examples=50, deadline=None)
@given(
    radius=st.floats(0, 0.3, allow_nan=False),
    ux=st.floats(0, 1),
    uy=st.floats(0, 1),
)
def test_property_range_inclusiveness(radius, ux, uy):
    rng = np.random.default_rng(99)
    points = random_points(rng, 120)
    idx = point_index(points)
    area = Rect(0.3, 0.3, 0.6, 0.6)
    cl = private_range_over_public(idx, area, radius)
    u = Point(
        area.x_min + ux * area.width,
        area.y_min + uy * area.height,
    )
    truth = {i for i, p in enumerate(points) if p.distance_to(u) <= radius}
    assert truth <= set(cl.oids())
