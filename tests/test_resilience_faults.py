"""Tests for the deterministic fault injector (repro.resilience.faults)."""

from __future__ import annotations

import pytest

from repro.resilience.faults import Delivery, FaultInjector, FaultPlan

PAYLOAD = b"the quick brown fox jumps over the lazy dog"


class TestFaultPlan:
    def test_defaults_are_quiet(self):
        assert FaultPlan().is_quiet

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 0.1},
            {"duplicate": 0.1},
            {"delay": 0.1},
            {"reorder": 0.1},
            {"corrupt": 0.1},
            {"crash_period": 5},
            {"lose_user": 0.1},
        ],
    )
    def test_any_fault_knob_breaks_quiet(self, kwargs):
        assert not FaultPlan(**kwargs).is_quiet

    @pytest.mark.parametrize("field", ["drop", "duplicate", "delay", "reorder", "corrupt", "lose_user"])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    def test_delay_ticks_and_crash_period_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_ticks=0)
        with pytest.raises(ValueError):
            FaultPlan(crash_period=-1)

    def test_with_seed_preserves_everything_else(self):
        plan = FaultPlan(name="x", seed=1, drop=0.3, delay_ticks=4)
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.name == "x"
        assert reseeded.drop == plan.drop
        assert reseeded.delay_ticks == 4


class TestWireFaults:
    def test_quiet_plan_delivers_everything_verbatim(self):
        injector = FaultInjector(FaultPlan(seed=3))
        for i in range(50):
            deliveries = injector.transmit("update:u0", PAYLOAD + bytes([i]))
            assert deliveries == [Delivery(PAYLOAD + bytes([i]))]
        assert injector.trace == []
        assert injector.faults_injected == 0

    def test_certain_drop_delivers_nothing(self):
        injector = FaultInjector(FaultPlan(seed=0, drop=1.0))
        assert injector.transmit("update:u0", PAYLOAD) == []
        assert [e.kind for e in injector.trace] == ["drop"]
        assert injector.counts["drop"] == 1

    def test_certain_duplicate_delivers_two_copies(self):
        injector = FaultInjector(FaultPlan(seed=0, duplicate=1.0))
        deliveries = injector.transmit("update:u0", PAYLOAD)
        assert [d.payload for d in deliveries] == [PAYLOAD, PAYLOAD]
        assert all(not d.late for d in deliveries)

    def test_certain_corruption_flips_exactly_one_bit(self):
        injector = FaultInjector(FaultPlan(seed=5, corrupt=1.0))
        (delivery,) = injector.transmit("update:u0", PAYLOAD)
        assert delivery.payload != PAYLOAD
        assert len(delivery.payload) == len(PAYLOAD)
        diff = [
            (a ^ b)
            for a, b in zip(delivery.payload, PAYLOAD)
            if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_reorder_holds_one_transmit_and_releases_late(self):
        injector = FaultInjector(FaultPlan(seed=0, reorder=1.0))
        assert injector.transmit("update:u0", b"first") == []
        assert injector.pending("update:u0") == 1
        deliveries = injector.transmit("update:u0", b"second")
        # The held "first" arrives *after* "second" was also held... both
        # transmits reorder, so only the ripe first message is released.
        assert [d.payload for d in deliveries] == [b"first"]
        assert deliveries[0].late

    def test_delay_holds_for_delay_ticks_transmits(self):
        plan = FaultPlan(seed=0, delay=1.0, delay_ticks=2)
        injector = FaultInjector(plan)
        assert injector.transmit("c", b"m1") == []  # held until transmit 3
        assert injector.transmit("c", b"m2") == []  # held until transmit 4
        deliveries = injector.transmit("c", b"m3")  # releases m1
        late = [d for d in deliveries if d.late]
        assert [d.payload for d in late] == [b"m1"]

    def test_released_messages_arrive_after_the_fresh_payload(self):
        # Only the first transmit reorders; the second is clean, so its
        # own payload must precede the released old one.
        injector = FaultInjector(FaultPlan(seed=0, reorder=0.5))
        sequence: list[tuple[bytes, bool]] = []
        for i in range(30):
            for d in injector.transmit("c", b"m%d" % i):
                sequence.append((d.payload, d.late))
        # Whenever a late delivery appears, it must never be the first
        # item of its transmit batch unless the fresh payload was held
        # too — structurally: a late payload always has a smaller index
        # than the fresh one it trails.
        reordered = [p for p, late in sequence if late]
        assert injector.counts["reorder"] >= 1
        # Every reordered message is eventually released late, except any
        # still held after the final transmit.
        assert len(reordered) == injector.counts["reorder"] - injector.pending("c")

    def test_flush_discards_held_messages(self):
        injector = FaultInjector(FaultPlan(seed=0, delay=1.0, delay_ticks=5))
        injector.transmit("response:1", b"stale")
        assert injector.pending("response:1") == 1
        injector.flush("response:1")
        assert injector.pending("response:1") == 0
        # flushing an unknown channel is a no-op
        injector.flush("response:never")

    def test_channels_are_independent(self):
        injector = FaultInjector(FaultPlan(seed=0, reorder=1.0))
        injector.transmit("update:a", b"a1")
        deliveries = injector.transmit("update:b", b"b1")
        # b's first transmit holds its own message; a's held message is
        # not released by b's traffic.
        assert deliveries == []
        assert injector.pending("update:a") == 1
        assert injector.pending("update:b") == 1


class TestAnonymizerFaults:
    def test_crash_schedule_fires_every_period(self):
        injector = FaultInjector(FaultPlan(seed=0, crash_period=3))
        crashes = [injector.next_op() for _ in range(9)]
        assert crashes == [False, False, True] * 3
        assert injector.counts["crash"] == 3

    def test_no_crash_when_period_zero(self):
        injector = FaultInjector(FaultPlan(seed=0))
        assert not any(injector.next_op() for _ in range(100))

    def test_lose_user_draws_from_state_stream(self):
        injector = FaultInjector(FaultPlan(seed=0, lose_user=1.0))
        assert injector.should_lose_user()
        quiet = FaultInjector(FaultPlan(seed=0))
        assert not quiet.should_lose_user()

    def test_record_state_loss_traces(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector.record_state_loss("anonymizer", "user u7")
        assert injector.counts["state_loss"] == 1
        assert injector.trace[-1].detail == "user u7"


class TestDeterminism:
    def test_same_seed_same_trace_bytes(self):
        plan = FaultPlan(
            seed=42, drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2, corrupt=0.2
        )

        def drive(injector: FaultInjector) -> str:
            for i in range(200):
                injector.transmit(f"update:u{i % 7}", PAYLOAD + bytes([i % 251]))
                injector.next_op()
                injector.should_lose_user()
            return injector.trace_json()

        first = drive(FaultInjector(plan))
        second = drive(FaultInjector(plan))
        assert first == second
        assert (
            FaultInjector(plan).trace_digest()
            == FaultInjector(plan).trace_digest()
        )

    def test_different_seed_different_trace(self):
        base = FaultPlan(seed=1, drop=0.5)

        def drive(plan: FaultPlan) -> str:
            injector = FaultInjector(plan)
            for i in range(100):
                injector.transmit("c", bytes([i]))
            return injector.trace_json()

        assert drive(base) != drive(base.with_seed(2))

    def test_wire_and_state_streams_are_independent(self):
        """Adding wire traffic must not perturb the state-loss draws."""
        plan = FaultPlan(seed=9, lose_user=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for i in range(50):
            b.transmit("c", bytes([i]))  # extra wire traffic on b only
        draws_a = [a.should_lose_user() for _ in range(50)]
        draws_b = [b.should_lose_user() for _ in range(50)]
        assert draws_a == draws_b
