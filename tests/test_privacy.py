"""Tests for the adversary models and the anonymity auditor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.privacy import AnonymityAuditor, RegionIntersectionAttack
from repro.server import Casper
from tests.conftest import UNIT, random_points


class TestRegionIntersectionAttack:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegionIntersectionAttack(max_speed=-1)

    def test_single_report_gives_region(self):
        attack = RegionIntersectionAttack(max_speed=0.1)
        region = Rect(0.2, 0.2, 0.4, 0.4)
        assert attack.observe(region, 0.0) == region
        assert attack.narrowing_factor(region) == pytest.approx(1.0)

    def test_stationary_cloak_leaks_nothing(self):
        attack = RegionIntersectionAttack(max_speed=0.1)
        region = Rect(0.2, 0.2, 0.4, 0.4)
        for t in range(5):
            feasible = attack.observe(region, float(t))
        assert feasible == region
        assert attack.narrowing_factor(region) == pytest.approx(1.0)

    def test_shifting_cloaks_narrow_the_feasible_set(self):
        """A slow user whose cloak flips between adjacent cells is
        pinned near the shared boundary."""
        attack = RegionIntersectionAttack(max_speed=0.01)
        left = Rect(0.0, 0.0, 0.25, 0.25)
        right = Rect(0.25, 0.0, 0.5, 0.25)
        attack.observe(left, 0.0)
        feasible = attack.observe(right, 1.0)
        # Feasible: within 0.01 of the left cell AND inside the right
        # cell — a thin strip at the boundary.
        assert feasible.width <= 0.01 + 1e-12
        assert attack.narrowing_factor(right) < 0.1

    def test_unbounded_speed_no_memory(self):
        attack = RegionIntersectionAttack()  # max_speed=inf
        attack.observe(Rect(0.0, 0.0, 0.1, 0.1), 0.0)
        feasible = attack.observe(Rect(0.9, 0.9, 1.0, 1.0), 1.0)
        assert feasible == Rect(0.9, 0.9, 1.0, 1.0)

    def test_infeasible_reports_falsify_linkage(self):
        attack = RegionIntersectionAttack(max_speed=0.01)
        attack.observe(Rect(0.0, 0.0, 0.1, 0.1), 0.0)
        with pytest.raises(ValueError):
            attack.observe(Rect(0.9, 0.9, 1.0, 1.0), 1.0)

    def test_out_of_order_reports_rejected(self):
        attack = RegionIntersectionAttack(max_speed=1.0)
        attack.observe(Rect(0.0, 0.0, 0.5, 0.5), 5.0)
        with pytest.raises(ValueError):
            attack.observe(Rect(0.0, 0.0, 0.5, 0.5), 4.0)

    def test_soundness_against_real_casper_stream(self):
        """Ground truth: the attack's feasible set always contains the
        true position when the motion bound is honest."""
        network = synthetic_county_map(seed=50)
        generator = NetworkGenerator(network, 300, seed=51)
        rng = np.random.default_rng(52)
        casper = Casper(UNIT, pyramid_height=7)
        for uid, point in generator.positions().items():
            casper.register_user(
                uid, point, PrivacyProfile(k=int(rng.integers(5, 25)))
            )
        # Honest L-inf speed bound: max road speed times jitter headroom.
        max_speed = 0.05 * 1.3 + 1e-9
        attack = RegionIntersectionAttack(max_speed=max_speed)
        victim = 0
        attack.observe(casper.anonymizer.cloak(victim).region, 0.0)
        for t in range(1, 8):
            for update in generator.step(1.0):
                casper.update_location(update.uid, update.point)
            region = casper.anonymizer.cloak(victim).region
            attack.observe(region, float(t))
            true_position = casper.anonymizer.location_of(victim)
            assert attack.contains(true_position)


class TestAnonymityAuditor:
    def test_audit_records_and_summary(self, rng):
        auditor = AnonymityAuditor()
        population = {i: p for i, p in enumerate(random_points(rng, 100))}
        record = auditor.audit("u", Rect(0, 0, 1, 1), promised_k=10, population=population)
        assert record.realized_k == 100
        assert record.satisfied
        assert auditor.num_violations == 0
        assert "0 k-violations" in auditor.summary()

    def test_violation_detected(self, rng):
        auditor = AnonymityAuditor()
        population = {i: p for i, p in enumerate(random_points(rng, 5))}
        record = auditor.audit(
            "u", Rect(0, 0, 0.0001, 0.0001), promised_k=10, population=population
        )
        assert not record.satisfied
        assert auditor.num_violations == 1

    def test_casper_stream_has_no_violations(self, rng):
        """End-to-end: the anonymizer's reports always deliver at least
        the promised k against the true population."""
        casper = Casper(UNIT, pyramid_height=7)
        points = {i: p for i, p in enumerate(random_points(rng, 400))}
        promised = {}
        for uid, p in points.items():
            k = int(rng.integers(1, 30))
            promised[uid] = k
            casper.register_user(uid, p, PrivacyProfile(k=k))
        auditor = AnonymityAuditor()
        for uid in range(0, 400, 7):
            region = casper.anonymizer.cloak(uid).region
            auditor.audit(uid, region, promised[uid], points)
        assert auditor.num_violations == 0
        assert auditor.min_realized_k >= 1
        assert auditor.ratio.mean >= 1.0

    def test_empty_auditor(self):
        auditor = AnonymityAuditor()
        assert auditor.min_realized_k == 0
        assert auditor.num_violations == 0
