"""End-to-end tests for the moving-client (safe-region kNN) monitor path.

The central claim: a safe-region monitor that skips re-evaluation while
each client's cloak stays inside its validity region produces refined
exact answers **byte-identical** to a per-tick-recompute oracle — and to
a brute-force kNN at the client's true position — across anonymizer
kinds, pyramid backends and shard counts, while doing far fewer server
evaluations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.geometry import Point, Rect
from repro.observability import enabled
from repro.server import Casper
from repro.workloads import build_commuter_scenario, drive_trace
from tests.conftest import UNIT, random_points

K = 3
NUM_QUERIES = 12


def build_stack(
    scenario,
    targets,
    *,
    anonymizer="adaptive",
    vectorized=None,
    shards=1,
    parallel=False,
    safe_region=True,
    margin_factor=1.5,
):
    casper = Casper(
        UNIT,
        pyramid_height=6,
        anonymizer=anonymizer,
        shards=shards,
        parallel=parallel,
        vectorized=vectorized,
    )
    scenario.register_all(casper)
    casper.add_public_targets(targets)
    monitor = ContinuousQueryMonitor(
        casper, validity_margin_factor=margin_factor
    )
    for uid in range(NUM_QUERIES):
        monitor.register_knn(f"q{uid}", uid, k=K, safe_region=safe_region)
    return casper, monitor


@pytest.fixture(scope="module")
def workload():
    """One recorded commuter trace shared by every configuration."""
    rng = np.random.default_rng(7)
    scenario_seed = 33
    scenario = build_commuter_scenario(80, seed=scenario_seed, k_range=(2, 12))
    ticks = [scenario.step() for _ in range(10)]
    targets = {
        f"t{i}": p for i, p in enumerate(random_points(rng, 120))
    }
    return scenario_seed, ticks, targets


def fresh_scenario(scenario_seed):
    return build_commuter_scenario(80, seed=scenario_seed, k_range=(2, 12))


def brute_knn(targets, u: Point, k: int):
    order = sorted(targets, key=lambda oid: targets[oid].squared_distance_to(u))
    return tuple(sorted(order[:k], key=str))


class TestOracleEquivalence:
    @pytest.mark.parametrize("anonymizer", ["basic", "adaptive"])
    @pytest.mark.parametrize("vectorized", [False, True])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_safe_region_matches_per_tick_oracle(
        self, workload, anonymizer, vectorized, shards
    ):
        scenario_seed, ticks, targets = workload
        _casper_s, safe = build_stack(
            fresh_scenario(scenario_seed),
            targets,
            anonymizer=anonymizer,
            vectorized=vectorized,
            shards=shards,
            safe_region=True,
        )
        _casper_o, oracle = build_stack(
            fresh_scenario(scenario_seed),
            targets,
            anonymizer=anonymizer,
            vectorized=vectorized,
            shards=shards,
            safe_region=False,
        )
        positions = {}
        for batch in ticks:
            moves = [(u.uid, u.point) for u in batch]
            positions.update({u.uid: u.point for u in batch})
            for monitor in (safe, oracle):
                monitor.on_users_moved(moves)
                monitor.flush()
            for uid in range(NUM_QUERIES):
                u = positions[uid]
                refined_safe = safe.candidates_of(f"q{uid}").refine_k_nearest(
                    u, K
                )
                refined_oracle = oracle.candidates_of(
                    f"q{uid}"
                ).refine_k_nearest(u, K)
                assert refined_safe == refined_oracle
                assert (
                    tuple(sorted((str(o) for o in refined_safe)))
                    == tuple(str(o) for o in brute_knn(targets, u, K))
                )
        # The whole point: the safe arm re-queried strictly less.
        assert (
            safe.counters["knn_evaluations"]
            < oracle.counters["knn_evaluations"]
        )

    def test_parallel_runtime_smoke(self, workload):
        scenario_seed, ticks, targets = workload
        casper, safe = build_stack(
            fresh_scenario(scenario_seed),
            targets,
            shards=2,
            parallel=True,
        )
        try:
            _c2, oracle = build_stack(
                fresh_scenario(scenario_seed), targets, safe_region=False
            )
            positions = {}
            for batch in ticks[:5]:
                moves = [(u.uid, u.point) for u in batch]
                positions.update({u.uid: u.point for u in batch})
                for monitor in (safe, oracle):
                    monitor.on_users_moved(moves)
                    monitor.flush()
            for uid in range(NUM_QUERIES):
                u = positions[uid]
                assert safe.candidates_of(f"q{uid}").refine_k_nearest(
                    u, K
                ) == oracle.candidates_of(f"q{uid}").refine_k_nearest(u, K)
        finally:
            casper.close()


class TestSuppressionAccounting:
    def test_counters_and_lifetimes(self, workload):
        scenario_seed, ticks, targets = workload
        _casper, monitor = build_stack(fresh_scenario(scenario_seed), targets)
        report = drive_trace(monitor, ticks)
        assert report.ticks == len(ticks)
        assert report.queries == NUM_QUERIES
        assert monitor.counters["ticks"] == len(ticks)
        # Every flush-scan cloak change was either absorbed or re-queried.
        assert report.suppressed + report.validity_exits >= report.suppressed
        assert report.knn_evaluations == monitor.counters["knn_evaluations"]
        assert 0.0 <= report.requery_rate <= 1.0
        assert report.suppression_ratio >= 1.0
        if report.knn_evaluations:
            assert monitor.mean_validity_lifetime >= 0.0
        # Naive drive on a fresh deployment evaluates every query every
        # tick by construction.
        _c2, naive = build_stack(
            fresh_scenario(scenario_seed), targets, safe_region=False
        )
        naive_report = drive_trace(naive, ticks, naive_per_tick=True)
        assert naive_report.knn_evaluations == NUM_QUERIES * len(ticks)
        assert naive_report.requery_rate == 1.0
        assert report.knn_evaluations < naive_report.knn_evaluations

    def test_validity_region_exposed_and_contains_cloak(self, workload):
        scenario_seed, ticks, targets = workload
        casper, monitor = build_stack(fresh_scenario(scenario_seed), targets)
        for uid in range(NUM_QUERIES):
            validity = monitor.validity_of(f"q{uid}")
            assert validity is not None
            assert validity.contains_rect(casper.cloak_for(uid).region)
        # Oracle-mode queries expose no validity region.
        _c2, oracle = build_stack(
            fresh_scenario(scenario_seed), targets, safe_region=False
        )
        assert oracle.validity_of("q0") is None

    def test_telemetry_events_recorded(self, workload):
        scenario_seed, ticks, targets = workload
        with enabled() as session:
            _casper, monitor = build_stack(
                fresh_scenario(scenario_seed), targets
            )
            drive_trace(monitor, ticks)
            snapshot = session.metrics.snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        if monitor.counters["suppressed"]:
            assert "casper_monitor_safe_region_events_total" in names
        if monitor.counters["knn_evaluations"]:
            assert "casper_monitor_validity_lifetime_ticks" in names


class TestTargetChurn:
    def test_target_insert_inside_watch_dirties(self, workload):
        scenario_seed, _ticks, targets = workload
        casper, monitor = build_stack(fresh_scenario(scenario_seed), targets)
        u = casper.cloak_for(0).region.center
        monitor.on_target_update("hot", u)
        changes = {c.query_id for c in monitor.flush()}
        assert "q0" in changes
        refined = monitor.candidates_of("q0").refine_k_nearest(u, K)
        assert "hot" in {str(o) for o in refined} or "hot" in set(
            map(str, refined)
        )

    def test_target_delete_re_evaluates(self, workload):
        scenario_seed, _ticks, targets = workload
        casper, monitor = build_stack(fresh_scenario(scenario_seed), targets)
        # Delete a target the query currently has among its candidates.
        victim = next(iter(monitor.candidates_of("q0").oids()))
        monitor.on_target_update(
            victim, None, old_position=targets[str(victim)]
        )
        monitor.flush()
        assert victim not in set(monitor.candidates_of("q0").oids())
