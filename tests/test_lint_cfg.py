"""Structural properties of the casperlint CFG builder.

The dataflow rules (CSP010/CSP012) lean on three invariants of
:func:`repro.analysis.cfg.build_cfg`:

* the entry block has no predecessors,
* the exit block has no successors,
* every block reachable from the entry can reach the exit (there are
  no traps: ``raise`` edges, loop back-edges and ``try`` dispatch all
  terminate at the synthetic exit eventually).

A recursive statement grammar (hypothesis) generates arbitrary nested
function bodies — ``break``/``continue`` are only emitted inside loops
— and the invariants are asserted over every generated program.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg

# -- statement grammar --------------------------------------------------
# Abstract statement trees, rendered to source below.  ``break`` and
# ``continue`` nodes degrade to ``pass`` outside a loop so every
# generated program parses.

_SIMPLE = st.sampled_from(
    [
        ("assign",),
        ("call",),
        ("pass",),
        ("return",),
        ("raise",),
        ("break",),
        ("continue",),
    ]
)


def _compound(children: st.SearchStrategy) -> st.SearchStrategy:
    bodies = st.lists(children, min_size=1, max_size=3)
    return st.one_of(
        st.tuples(st.just("if"), bodies, bodies),
        st.tuples(st.just("while"), bodies),
        st.tuples(st.just("for"), bodies),
        st.tuples(st.just("with"), bodies),
        st.tuples(st.just("try"), bodies, bodies, st.booleans()),
    )


_STMT = st.recursive(_SIMPLE, _compound, max_leaves=12)
_BODY = st.lists(_STMT, min_size=1, max_size=4)

_RENDER_SIMPLE = {
    "assign": "x = helper()",
    "call": "helper()",
    "pass": "pass",
    "return": "return x",
    "raise": "raise ValueError('boom')",
    "break": "break",
    "continue": "continue",
}


def _render(stmts: list, indent: int, in_loop: bool) -> list[str]:
    pad = "    " * indent
    lines: list[str] = []
    for stmt in stmts:
        kind = stmt[0]
        if kind in ("break", "continue") and not in_loop:
            kind = "pass"
        if kind in _RENDER_SIMPLE:
            lines.append(pad + _RENDER_SIMPLE[kind])
        elif kind == "if":
            lines.append(pad + "if cond():")
            lines += _render(stmt[1], indent + 1, in_loop)
            lines.append(pad + "else:")
            lines += _render(stmt[2], indent + 1, in_loop)
        elif kind == "while":
            lines.append(pad + "while cond():")
            lines += _render(stmt[1], indent + 1, True)
        elif kind == "for":
            lines.append(pad + "for item in items():")
            lines += _render(stmt[1], indent + 1, True)
        elif kind == "with":
            lines.append(pad + "with resource() as handle:")
            lines += _render(stmt[1], indent + 1, in_loop)
        elif kind == "try":
            lines.append(pad + "try:")
            lines += _render(stmt[1], indent + 1, in_loop)
            lines.append(pad + "except ValueError:")
            lines += _render(stmt[2], indent + 1, in_loop)
            if stmt[3]:
                lines.append(pad + "finally:")
                lines.append(pad + "    cleanup()")
        else:  # pragma: no cover - grammar and renderer stay in sync
            raise AssertionError(f"unrenderable statement {stmt!r}")
    return lines


def _function_source(body: list) -> str:
    return "def f(x):\n" + "\n".join(_render(body, 1, False)) + "\n"


@settings(max_examples=200, deadline=None)
@given(_BODY)
def test_cfg_is_single_entry_single_exit(body: list) -> None:
    source = _function_source(body)
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    cfg = build_cfg(func)

    assert cfg.blocks[cfg.entry].predecessors == set(), source
    assert cfg.blocks[cfg.exit].successors == set(), source
    for index in cfg.reachable_from(cfg.entry):
        assert cfg.reaches(index, cfg.exit), (
            f"block {index} is reachable but trapped:\n{source}"
        )


def test_unreachable_tail_gets_no_block() -> None:
    """Statements after a terminator are pruned, not trapped."""
    func = ast.parse(
        "def f(x):\n"
        "    return x\n"
        "    helper()\n"
    ).body[0]
    cfg = build_cfg(func)
    assert cfg.block_of(func.body[0]) is not None
    assert cfg.block_of(func.body[1]) is None
