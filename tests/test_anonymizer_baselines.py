"""Tests for the IntervalCloak and CliqueCloak baseline anonymizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymizer.baselines import CliqueCloak, CliqueRequest, IntervalCloak
from repro.errors import ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect
from tests.conftest import UNIT, random_points


class TestIntervalCloak:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalCloak(UNIT, k=0)
        with pytest.raises(ValueError):
            IntervalCloak(Rect(0, 0, 0, 1), k=5)

    def test_cloak_satisfies_k(self, rng):
        ic = IntervalCloak(UNIT, k=15)
        for i, p in enumerate(random_points(rng, 200)):
            ic.register(i, p)
        for uid in range(0, 200, 19):
            region = ic.cloak(uid)
            assert region.achieved_k >= 15

    def test_cloak_contains_user(self, rng):
        ic = IntervalCloak(UNIT, k=10)
        points = random_points(rng, 120)
        for i, p in enumerate(points):
            ic.register(i, p)
        for uid in range(0, 120, 11):
            assert ic.cloak(uid).region.contains_point(points[uid])

    def test_population_below_k_raises(self):
        ic = IntervalCloak(UNIT, k=10)
        ic.register("only", Point(0.5, 0.5))
        with pytest.raises(ProfileUnsatisfiableError):
            ic.cloak("only")

    def test_unknown_user_raises(self):
        ic = IntervalCloak(UNIT, k=2)
        with pytest.raises(UnknownUserError):
            ic.cloak("ghost")
        with pytest.raises(UnknownUserError):
            ic.update("ghost", Point(0.5, 0.5))
        with pytest.raises(UnknownUserError):
            ic.deregister("ghost")

    def test_updates_are_free_maintenance(self, rng):
        ic = IntervalCloak(UNIT, k=5)
        for i, p in enumerate(random_points(rng, 50)):
            ic.register(i, p)
        assert ic.update(0, Point(0.9, 0.9)) == 0

    def test_dense_cluster_gets_small_region(self, rng):
        ic = IntervalCloak(UNIT, k=10)
        # 50 users packed into a corner, 10 scattered.
        for i in range(50):
            ic.register(i, Point(0.05 + 0.001 * i, 0.05))
        for i, p in enumerate(random_points(rng, 10)):
            ic.register(50 + i, p)
        region = ic.cloak(0)
        assert region.region.area < 0.1

    def test_min_side_stops_subdivision(self):
        ic = IntervalCloak(UNIT, k=1, min_side=0.4)
        ic.register("u", Point(0.1, 0.1))
        region = ic.cloak("u")
        assert min(region.region.width, region.region.height) >= 0.2


class TestCliqueCloak:
    def test_invalid_k_rejected(self):
        cc = CliqueCloak(UNIT)
        with pytest.raises(ValueError):
            cc.submit(CliqueRequest("u", Point(0.5, 0.5), k=0, tolerance=0.1))

    def test_single_user_k1_served_immediately(self):
        cc = CliqueCloak(UNIT)
        served = cc.submit(CliqueRequest("u", Point(0.5, 0.5), k=1, tolerance=0.1))
        assert served is not None and set(served) == {"u"}
        assert cc.num_pending == 0

    def test_clique_forms_when_enough_compatible_users(self):
        cc = CliqueCloak(UNIT)
        served = None
        for i in range(5):
            served = cc.submit(
                CliqueRequest(i, Point(0.5 + 0.01 * i, 0.5), k=5, tolerance=0.2)
            )
        assert served is not None
        assert len(served) == 5
        assert cc.num_pending == 0

    def test_incompatible_users_stay_pending(self):
        cc = CliqueCloak(UNIT)
        # Far apart with tiny tolerances: no edges, k=2 never met.
        assert cc.submit(CliqueRequest("a", Point(0.1, 0.1), 2, 0.01)) is None
        assert cc.submit(CliqueRequest("b", Point(0.9, 0.9), 2, 0.01)) is None
        assert cc.num_pending == 2

    def test_region_is_mbr_of_members(self):
        cc = CliqueCloak(UNIT)
        pts = [Point(0.50, 0.50), Point(0.52, 0.51), Point(0.51, 0.53)]
        served = None
        for i, p in enumerate(pts):
            served = cc.submit(CliqueRequest(i, p, k=3, tolerance=0.2))
        assert served is not None
        region = served[0].region
        # The MBR property (and its privacy weakness): members lie on
        # the boundary.
        assert region == Rect(0.50, 0.50, 0.52, 0.53)

    def test_mixed_k_requirements(self):
        cc = CliqueCloak(UNIT)
        # A waiting k=4 user cannot join a pair (including them raises
        # the required clique size to 4), so the k=2 users pair among
        # themselves and the strict user stays pending.
        assert cc.submit(CliqueRequest("strict", Point(0.5, 0.5), 4, 0.3)) is None
        assert cc.submit(CliqueRequest("a", Point(0.51, 0.5), 2, 0.3)) is None
        served = cc.submit(CliqueRequest("b", Point(0.52, 0.5), 2, 0.3))
        assert served is not None
        assert set(served) == {"a", "b"}
        assert cc.num_pending == 1  # strict still waiting

    def test_minimal_serving_clique_preferred(self):
        cc = CliqueCloak(UNIT)
        # With k = (4, 3, 2, 2) pending, the last submission completes a
        # minimal pair of the two k=2 users; the stricter users keep
        # waiting rather than inflating the group.
        served = None
        for i, k in enumerate((4, 3, 2, 2)):
            served = cc.submit(
                CliqueRequest(i, Point(0.5 + 0.005 * i, 0.5), k=k, tolerance=0.2)
            )
        assert served is not None
        assert set(served) == {2, 3}
        assert all(r.achieved_k == 2 for r in served.values())
        assert cc.num_pending == 2

    def test_clique_size_covers_max_member_k(self):
        cc = CliqueCloak(UNIT)
        # Uniform k=3: the third compatible request completes a triple.
        served = None
        for i in range(3):
            served = cc.submit(
                CliqueRequest(i, Point(0.5 + 0.005 * i, 0.5), k=3, tolerance=0.2)
            )
        assert served is not None
        assert len(served) == 3
        assert all(r.achieved_k == 3 for r in served.values())

    def test_drop_pending(self):
        cc = CliqueCloak(UNIT)
        cc.submit(CliqueRequest("a", Point(0.1, 0.1), 5, 0.1))
        cc.drop_pending("a")
        assert cc.num_pending == 0
        cc.drop_pending("missing")  # idempotent

    def test_tolerance_is_respected(self):
        cc = CliqueCloak(UNIT)
        # b is within a's tolerance, but a is outside b's: no edge.
        assert cc.submit(CliqueRequest("a", Point(0.5, 0.5), 2, 0.5)) is None
        assert cc.submit(CliqueRequest("b", Point(0.7, 0.5), 2, 0.05)) is None
        assert cc.num_pending == 2

    def test_scalability_limited_scale_still_works(self, rng):
        """The baseline is usable at the small scales of its original
        evaluation (k in [5, 10])."""
        cc = CliqueCloak(UNIT)
        served_total = 0
        for i, p in enumerate(random_points(rng, 300)):
            k = int(rng.integers(5, 11))
            served = cc.submit(CliqueRequest(i, p, k=k, tolerance=0.15))
            if served:
                served_total += len(served)
        assert served_total > 0


class TestTemporalCloak:
    def test_validation(self):
        from repro.anonymizer.baselines import TemporalCloak

        with pytest.raises(ValueError):
            TemporalCloak(UNIT, k=0)
        with pytest.raises(ValueError):
            TemporalCloak(UNIT, k=2, resolution=0)
        with pytest.raises(ValueError):
            TemporalCloak(Rect(0, 0, 0, 1), k=2)

    def test_delay_counts_back_to_kth_visitor(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=3, resolution=4)
        p = Point(0.1, 0.1)
        tc.observe("a", p, 0.0)
        tc.observe("b", p, 5.0)
        tc.observe("c", p, 9.0)
        result = tc.cloak(p, now=10.0)
        # Walking back from t=10: c (9), b (5), a (0) -> window age 10.
        assert result.delay == pytest.approx(10.0)
        assert result.visitors == 3

    def test_repeat_visits_do_not_count_twice(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=2, resolution=4)
        p = Point(0.1, 0.1)
        tc.observe("a", p, 0.0)
        tc.observe("a", p, 5.0)
        with pytest.raises(ProfileUnsatisfiableError):
            tc.cloak(p, now=6.0)
        tc.observe("b", p, 7.0)
        result = tc.cloak(p, now=8.0)
        assert result.delay == pytest.approx(3.0)

    def test_busy_cell_has_low_delay(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=5, resolution=4)
        p = Point(0.9, 0.9)
        for i in range(20):
            tc.observe(f"u{i}", p, float(i))
        result = tc.cloak(p, now=20.0)
        assert result.delay == pytest.approx(20.0 - 15.0)

    def test_history_horizon_expires_visits(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=2, resolution=4, history_horizon=5.0)
        p = Point(0.5, 0.5)
        tc.observe("a", p, 0.0)
        tc.observe("b", p, 10.0)  # expires a's visit
        with pytest.raises(ProfileUnsatisfiableError):
            tc.cloak(p, now=10.0)

    def test_out_of_order_observation_rejected(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=1)
        tc.observe("a", Point(0.5, 0.5), 5.0)
        with pytest.raises(ValueError):
            tc.observe("b", Point(0.5, 0.5), 4.0)

    def test_region_is_the_visit_cell(self):
        from repro.anonymizer.baselines import TemporalCloak

        tc = TemporalCloak(UNIT, k=1, resolution=4)
        p = Point(0.6, 0.3)
        tc.observe("a", p, 1.0)
        result = tc.cloak(p, now=1.0)
        assert result.region.contains_point(p)
        assert result.region.area == pytest.approx(1.0 / 16)
