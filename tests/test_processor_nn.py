"""Tests for private NN query processing (Algorithm 2, both data kinds).

The centrepiece is the paper's Theorem 1 / Theorem 3 *inclusiveness*
property, checked both on directed examples and with hypothesis over
random datasets, query regions, user positions and (for private data)
adversarial target placements inside their cloaked regions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.processor import (
    ContainmentOnly,
    FractionOverlap,
    compute_extension_public,
    naive_center_nn,
    naive_send_all,
    private_nn_over_private,
    private_nn_over_public,
    select_filters_public,
)
from repro.spatial import BruteForceIndex, GridIndex, QuadTreeIndex, RTreeIndex
from tests.conftest import UNIT, random_points, random_rects


def point_index(points, cls=BruteForceIndex, **kwargs):
    idx = cls(**kwargs) if cls is not GridIndex else cls(UNIT, 16)
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


def true_nn(points: list[Point], u: Point) -> int:
    return min(range(len(points)), key=lambda i: points[i].squared_distance_to(u))


class TestPublicNN:
    def test_candidate_list_nonempty_and_within_region(self, rng):
        points = random_points(rng, 300)
        idx = point_index(points)
        area = Rect(0.4, 0.4, 0.6, 0.6)
        cl = private_nn_over_public(idx, area, num_filters=4)
        assert len(cl) > 0
        assert cl.search_region.contains_rect(area)
        for oid, rect in cl.items:
            assert cl.search_region.contains_rect(rect)

    @pytest.mark.parametrize("num_filters", [1, 2, 4])
    def test_inclusiveness_directed(self, rng, num_filters):
        points = random_points(rng, 500)
        idx = point_index(points)
        for _ in range(30):
            w, h = rng.uniform(0.02, 0.2, 2)
            x = float(rng.uniform(0, 1 - w))
            y = float(rng.uniform(0, 1 - h))
            area = Rect(x, y, x + float(w), y + float(h))
            cl = private_nn_over_public(idx, area, num_filters=num_filters)
            # The user could be anywhere in the area, including corners.
            probes = list(area.vertices()) + [
                area.center,
                Point(
                    float(rng.uniform(area.x_min, area.x_max)),
                    float(rng.uniform(area.y_min, area.y_max)),
                ),
            ]
            for u in probes:
                assert true_nn(points, u) in cl.oids()

    def test_refinement_returns_exact_answer(self, rng):
        points = random_points(rng, 400)
        idx = point_index(points)
        area = Rect(0.3, 0.3, 0.45, 0.5)
        cl = private_nn_over_public(idx, area, num_filters=4)
        u = Point(0.41, 0.37)
        assert cl.refine_nearest(u) == true_nn(points, u)

    def test_four_filters_not_larger_than_one(self, rng):
        """Figure 13a's shape: more filters, smaller candidate list (on
        average; we assert the aggregate, not each instance)."""
        points = random_points(rng, 1000)
        idx = point_index(points)
        total = {1: 0, 4: 0}
        for _ in range(40):
            w, h = rng.uniform(0.05, 0.2, 2)
            x = float(rng.uniform(0, 1 - w))
            y = float(rng.uniform(0, 1 - h))
            area = Rect(x, y, x + float(w), y + float(h))
            for nf in (1, 4):
                total[nf] += len(private_nn_over_public(idx, area, num_filters=nf))
        assert total[4] < total[1]

    def test_index_independence(self, rng):
        """The same candidate set must come back regardless of the
        underlying spatial index (the paper's integration claim)."""
        points = random_points(rng, 300)
        area = Rect(0.25, 0.55, 0.45, 0.7)
        results = []
        for build in (
            lambda: point_index(points),
            lambda: point_index(points, cls=RTreeIndex),
            lambda: point_index(points, cls=GridIndex),
            lambda: QuadTreeIndex(UNIT, leaf_capacity=4),
        ):
            idx = build()
            if len(idx) == 0:  # quadtree branch built empty above
                for i, p in enumerate(points):
                    idx.insert_point(i, p)
            cl = private_nn_over_public(idx, area, num_filters=4)
            results.append(set(cl.oids()))
        assert all(r == results[0] for r in results)

    def test_degenerate_cloaked_area_is_point(self, rng):
        """A public (non-private) user degenerates to an exact point; the
        candidate list must collapse to the true NN only."""
        points = random_points(rng, 200)
        idx = point_index(points)
        u = Point(0.37, 0.61)
        cl = private_nn_over_public(idx, Rect.point(u), num_filters=4)
        assert cl.oids() == [true_nn(points, u)]

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            private_nn_over_public(BruteForceIndex(), Rect(0, 0, 0.1, 0.1))

    def test_single_target_dataset(self):
        idx = point_index([Point(0.9, 0.9)])
        cl = private_nn_over_public(idx, Rect(0.1, 0.1, 0.2, 0.2), num_filters=4)
        assert cl.oids() == [0]

    def test_extension_covers_all_vertex_distances(self, rng):
        points = random_points(rng, 300)
        idx = point_index(points)
        area = Rect(0.4, 0.4, 0.6, 0.6)
        filters = select_filters_public(idx, area, 4)
        a_ext, extensions = compute_extension_public(idx, area, filters)
        for ext in extensions:
            assert ext.max_d >= ext.d_i
            assert ext.max_d >= ext.d_j
            assert ext.max_d >= ext.d_m
        for vertex in area.vertices():
            t = idx.rect_of(filters.oid_for(vertex)).center
            # The filter itself is always a candidate.
            assert a_ext.contains_point(t)


class TestPrivateNN:
    def test_candidates_overlap_search_region(self, rng):
        rects = random_rects(rng, 200, max_side=0.05)
        idx = rect_index(rects)
        area = Rect(0.4, 0.4, 0.6, 0.6)
        cl = private_nn_over_private(idx, area, num_filters=4)
        assert len(cl) > 0
        for oid, rect in cl.items:
            assert rect.intersects(cl.search_region)

    @pytest.mark.parametrize("num_filters", [1, 2, 4])
    def test_inclusiveness_adversarial(self, rng, num_filters):
        """Theorem 3: for any actual user position and any actual target
        positions inside their cloaked regions, the true NN is in the
        candidate list."""
        rects = random_rects(rng, 300, max_side=0.06)
        idx = rect_index(rects)
        for _ in range(20):
            w, h = rng.uniform(0.03, 0.15, 2)
            x = float(rng.uniform(0, 1 - w))
            y = float(rng.uniform(0, 1 - h))
            area = Rect(x, y, x + float(w), y + float(h))
            cl = private_nn_over_private(idx, area, num_filters=num_filters)
            oids = set(cl.oids())
            for _ in range(8):
                u = Point(
                    float(rng.uniform(area.x_min, area.x_max)),
                    float(rng.uniform(area.y_min, area.y_max)),
                )
                actual = [
                    Point(
                        float(rng.uniform(r.x_min, r.x_max)),
                        float(rng.uniform(r.y_min, r.y_max)),
                    )
                    for r in rects
                ]
                winner = min(
                    range(len(rects)), key=lambda i: actual[i].squared_distance_to(u)
                )
                assert winner in oids

    def test_worst_case_corner_placements(self, rng):
        """Push every actual position to rect corners — the extremes the
        furthest-corner construction must absorb."""
        rects = random_rects(rng, 150, max_side=0.08)
        idx = rect_index(rects)
        area = Rect(0.45, 0.45, 0.55, 0.55)
        cl = private_nn_over_private(idx, area, num_filters=4)
        oids = set(cl.oids())
        for u in area.vertices():
            for corner_pick in range(4):
                actual = [r.corners()[corner_pick] for r in rects]
                winner = min(
                    range(len(rects)), key=lambda i: actual[i].squared_distance_to(u)
                )
                assert winner in oids

    def test_overlap_policy_thins_list(self, rng):
        rects = random_rects(rng, 300, max_side=0.1)
        idx = rect_index(rects)
        area = Rect(0.4, 0.4, 0.6, 0.6)
        full = private_nn_over_private(idx, area, num_filters=4)
        half = private_nn_over_private(
            idx, area, num_filters=4, policy=FractionOverlap(0.5)
        )
        contained = private_nn_over_private(
            idx, area, num_filters=4, policy=ContainmentOnly()
        )
        assert len(contained) <= len(half) <= len(full)
        assert set(contained.oids()) <= set(half.oids()) <= set(full.oids())

    def test_point_targets_match_public_semantics(self, rng):
        """Private processing over degenerate (point) target regions must
        reduce to the public result."""
        points = random_points(rng, 250)
        pub = point_index(points)
        priv = rect_index([Rect.point(p) for p in points])
        area = Rect(0.35, 0.5, 0.55, 0.65)
        cl_pub = private_nn_over_public(pub, area, num_filters=4)
        cl_priv = private_nn_over_private(priv, area, num_filters=4)
        assert set(cl_pub.oids()) == set(cl_priv.oids())


class TestNaiveBaselines:
    def test_center_nn_returns_one(self, rng):
        idx = point_index(random_points(rng, 100))
        cl = naive_center_nn(idx, Rect(0.2, 0.2, 0.6, 0.6))
        assert len(cl) == 1

    def test_center_nn_is_sometimes_wrong(self, rng):
        """Figure 4b's flaw: over many queries the center answer must
        disagree with the true NN for off-center users."""
        points = random_points(rng, 500)
        idx = point_index(points)
        wrong = 0
        for _ in range(50):
            x, y = rng.uniform(0.0, 0.7, 2)
            area = Rect(float(x), float(y), float(x) + 0.3, float(y) + 0.3)
            answer = naive_center_nn(idx, area).oids()[0]
            corner_user = area.vertices()[0]
            if answer != true_nn(points, corner_user):
                wrong += 1
        assert wrong > 10

    def test_send_all_is_everything(self, rng):
        points = random_points(rng, 123)
        idx = point_index(points)
        cl = naive_send_all(idx, Rect(0.4, 0.4, 0.5, 0.5))
        assert len(cl) == 123

    def test_candidate_list_between_extremes(self, rng):
        points = random_points(rng, 800)
        idx = point_index(points)
        area = Rect(0.3, 0.3, 0.5, 0.5)
        ours = private_nn_over_public(idx, area, num_filters=4)
        assert 1 <= len(ours) < 800


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_property_inclusiveness_public(data):
    """Hypothesis drives dataset size, target layout, cloaked area and
    user position; Theorem 1 must hold every time."""
    n = data.draw(st.integers(1, 60), label="n_targets")
    coords = st.floats(0, 1, allow_nan=False)
    points = [
        Point(data.draw(coords, label=f"tx{i}"), data.draw(coords, label=f"ty{i}"))
        for i in range(n)
    ]
    x0 = data.draw(st.floats(0, 0.8), label="x0")
    y0 = data.draw(st.floats(0, 0.8), label="y0")
    w = data.draw(st.floats(0.001, 0.2), label="w")
    h = data.draw(st.floats(0.001, 0.2), label="h")
    area = Rect(x0, y0, min(x0 + w, 1.0), min(y0 + h, 1.0))
    nf = data.draw(st.sampled_from([1, 2, 4]), label="filters")
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    cl = private_nn_over_public(idx, area, num_filters=nf)
    ux = data.draw(st.floats(0, 1), label="ux")
    uy = data.draw(st.floats(0, 1), label="uy")
    u = Point(
        area.x_min + ux * (area.x_max - area.x_min),
        area.y_min + uy * (area.y_max - area.y_min),
    )
    assert true_nn(points, u) in cl.oids()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_property_inclusiveness_private(data):
    """Theorem 3 under hypothesis: cloaked targets with adversarial
    actual positions."""
    n = data.draw(st.integers(1, 30), label="n_targets")
    coords = st.floats(0, 0.9, allow_nan=False)
    sides = st.floats(0, 0.1, allow_nan=False)
    rects = []
    for i in range(n):
        x = data.draw(coords, label=f"rx{i}")
        y = data.draw(coords, label=f"ry{i}")
        w = data.draw(sides, label=f"rw{i}")
        h = data.draw(sides, label=f"rh{i}")
        rects.append(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))
    x0 = data.draw(st.floats(0, 0.8), label="x0")
    y0 = data.draw(st.floats(0, 0.8), label="y0")
    w = data.draw(st.floats(0.001, 0.2), label="w")
    h = data.draw(st.floats(0.001, 0.2), label="h")
    area = Rect(x0, y0, min(x0 + w, 1.0), min(y0 + h, 1.0))
    nf = data.draw(st.sampled_from([1, 2, 4]), label="filters")
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    cl = private_nn_over_private(idx, area, num_filters=nf)
    oids = set(cl.oids())
    # Adversarial actual placements: corner picks per target.
    ux = data.draw(st.floats(0, 1), label="ux")
    uy = data.draw(st.floats(0, 1), label="uy")
    u = Point(
        area.x_min + ux * (area.x_max - area.x_min),
        area.y_min + uy * (area.y_max - area.y_min),
    )
    corner_choice = data.draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n), label="corners"
    )
    actual = [r.corners()[c] for r, c in zip(rects, corner_choice)]
    winner = min(range(n), key=lambda i: actual[i].squared_distance_to(u))
    assert winner in oids
