"""Large-N properties of the vectorized pyramid (nightly ``slow`` job).

The structure-of-arrays backend exists to push the population well past
the scalar implementation's ~10k-user ceiling; these tests drive it at
the scales the bench reports (100k users; a 1M-user tick) and assert
the things a representation change must not bend: pyramid invariants,
per-cloak k-satisfaction and inclusiveness, and a hard memory ceiling
on the array state.  Everything is seeded — a failure reproduces.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.anonymizer import BasicAnonymizer, PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

pytestmark = pytest.mark.slow


def populate(num_users: int, height: int, seed: int) -> BasicAnonymizer:
    rng = np.random.default_rng(seed)
    anonymizer = BasicAnonymizer(UNIT, height=height, vectorized=True)
    assert anonymizer.vectorized, "SoA backend required at this scale"
    xs = rng.uniform(0.001, 0.999, size=num_users)
    ys = rng.uniform(0.001, 0.999, size=num_users)
    ks = rng.integers(2, 50, size=num_users)
    for uid in range(num_users):
        anonymizer.register(
            uid,
            Point(float(xs[uid]), float(ys[uid])),
            PrivacyProfile(k=int(ks[uid])),
        )
    return anonymizer


def one_tick(anonymizer: BasicAnonymizer, rng) -> list[int]:
    n = anonymizer.num_users
    xs = np.clip(rng.uniform(-0.01, 0.01, size=n) + rng.uniform(0.001, 0.999, size=n), 0.001, 0.999)
    ys = np.clip(rng.uniform(-0.01, 0.01, size=n) + rng.uniform(0.001, 0.999, size=n), 0.001, 0.999)
    moves = [
        (uid, Point(float(xs[uid]), float(ys[uid]))) for uid in range(n)
    ]
    return anonymizer.update_batch(moves)


class TestHundredThousandUsers:
    NUM_USERS = 100_000

    def test_invariants_and_privacy_at_100k(self) -> None:
        anonymizer = populate(self.NUM_USERS, height=9, seed=41)
        rng = np.random.default_rng(42)
        costs = one_tick(anonymizer, rng)
        assert len(costs) == self.NUM_USERS
        anonymizer.check_invariants()
        # k-satisfaction + inclusiveness on a seeded sample of cloaks.
        for uid in rng.integers(0, self.NUM_USERS, size=300).tolist():
            profile = anonymizer.profile_of(uid)
            point = anonymizer.location_of(uid)
            try:
                region = anonymizer.cloak(uid)
            except ProfileUnsatisfiableError:
                continue
            assert region.achieved_k >= profile.k
            assert region.region.area >= profile.a_min - 1e-15
            assert region.region.contains_point(point), "not inclusive"

    def test_memory_ceiling_at_100k(self) -> None:
        anonymizer = populate(self.NUM_USERS, height=9, seed=43)
        soa_bytes = anonymizer._soa.nbytes() + anonymizer._table.nbytes()
        # Pyramid: two int64 arrays over sum(4**l) ≈ 350k cells ≈ 5.6 MB;
        # table: 6 parallel arrays over <= 2 * 100k slots ≈ 8 MB.  A
        # regression that densifies per-user state blows well past 32 MB.
        assert soa_bytes < 32 * 2**20, f"SoA state grew to {soa_bytes} bytes"


class TestMillionUsers:
    NUM_USERS = 1_000_000

    def test_one_tick_within_nightly_budget(self) -> None:
        anonymizer = populate(self.NUM_USERS, height=9, seed=47)
        rng = np.random.default_rng(48)
        start = time.perf_counter()
        costs = one_tick(anonymizer, rng)
        elapsed = time.perf_counter() - start
        assert len(costs) == self.NUM_USERS
        # The nightly job budgets minutes per step; a tick that cannot
        # clear two minutes signals the vectorized path fell off a
        # cliff (e.g. silently degrading to the scalar loop).
        assert elapsed < 120.0, f"1M-user tick took {elapsed:.1f}s"
        soa_bytes = anonymizer._soa.nbytes() + anonymizer._table.nbytes()
        assert soa_bytes < 256 * 2**20, f"SoA state grew to {soa_bytes} bytes"
        assert anonymizer.cell_count(anonymizer.grid.cell_of(
            Point(0.5, 0.5), 0
        )) == self.NUM_USERS
