"""Shared fixtures for the Casper reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.geometry import Point, Rect

# Wall-clock deadlines make property tests flaky on loaded CI machines
# (the benchmarks may be running concurrently); correctness is what we
# test, not per-example latency.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture(autouse=True)
def _telemetry_pollution_guard():
    """Fail any test that leaves the global observability session
    installed (or half-torn-down with telemetry still recorded).

    Telemetry is process-global by design (``repro.observability.
    runtime``), which makes it the one piece of state a test can leak
    into every later test.  The sanctioned pattern is the ``enabled()``
    context manager, which always restores the previous session.
    """
    from repro.observability import runtime as _telemetry

    yield
    session = _telemetry.active()
    if session is not None:
        _telemetry.disable()  # heal before failing so later tests run clean
        leaked = "" if session.is_empty else " with recorded telemetry"
        pytest.fail(
            "test left the global observability session "
            f"enabled{leaked}; use repro.observability.enabled() so "
            "teardown is automatic"
        )


@pytest.fixture(autouse=True)
def _worker_leak_guard():
    """Fail any test that leaves a shard worker process running.

    The parallel runtime promises exception-safe shutdown (``close`` is
    idempotent and the pool reaps every process it ever started); a
    worker surviving a test means some path skipped it.  Reap the
    orphans before failing so one leak doesn't cascade into every
    later test.
    """
    import multiprocessing

    yield
    leaked = multiprocessing.active_children()
    if leaked:
        names = [proc.name for proc in leaked]
        for proc in leaked:
            proc.terminate()
            proc.join(timeout=5)
        pytest.fail(
            f"test leaked {len(names)} worker process(es): {names}; "
            "close the parallel anonymizer (Casper.close or a with-block)"
        )


@pytest.fixture
def unit_square() -> Rect:
    """The canonical service area used throughout the experiments."""
    return UNIT


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; each test gets a fresh stream."""
    return np.random.default_rng(42)


def random_points(rng: np.random.Generator, n: int, bounds: Rect = UNIT) -> list[Point]:
    """``n`` uniform points inside ``bounds``."""
    xs = rng.uniform(bounds.x_min, bounds.x_max, n)
    ys = rng.uniform(bounds.y_min, bounds.y_max, n)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def random_rects(
    rng: np.random.Generator,
    n: int,
    bounds: Rect = UNIT,
    max_side: float = 0.1,
) -> list[Rect]:
    """``n`` random rectangles fully inside ``bounds``."""
    rects = []
    for _ in range(n):
        w = float(rng.uniform(0.0, max_side))
        h = float(rng.uniform(0.0, max_side))
        x = float(rng.uniform(bounds.x_min, bounds.x_max - w))
        y = float(rng.uniform(bounds.y_min, bounds.y_max - h))
        rects.append(Rect(x, y, x + w, y + h))
    return rects
