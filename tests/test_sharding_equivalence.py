"""The sharding contract: byte-for-byte equivalence with one pyramid.

The sharded anonymizers are *deployments*, not approximations — for any
shard count they must emit exactly the cloaks, candidate lists,
maintenance counters and SLO-relevant telemetry of the single-pyramid
implementations.  Every test here drives the single implementation and
sharded fleets of N ∈ {1, 2, 4} through identical operation sequences
and compares full fingerprints, including the regression that motivates
the spine: cloaks escalating across a shard seam.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymizer import AdaptiveAnonymizer, BasicAnonymizer, PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point, Rect
from repro.sharding import make_sharded
from tests.conftest import UNIT

HEIGHT = 5
SHARD_COUNTS = (1, 2, 4)

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
ks = st.integers(1, 12)
a_mins = st.sampled_from([0.0, 0.001, 0.01, 0.1])
uids = st.integers(0, 11)

register_ops = st.tuples(st.just("register"), uids, coords, coords, ks, a_mins)
move_ops = st.tuples(st.just("move"), uids, coords, coords)
profile_ops = st.tuples(st.just("profile"), uids, ks, a_mins)
cloak_ops = st.tuples(st.just("cloak"), uids)
deregister_ops = st.tuples(st.just("deregister"), uids)

op_lists = st.lists(
    st.one_of(register_ops, move_ops, cloak_ops, profile_ops, deregister_ops),
    min_size=1,
    max_size=60,
)


def _build(kind: str) -> list:
    single = (
        BasicAnonymizer(UNIT, height=HEIGHT)
        if kind == "basic"
        else AdaptiveAnonymizer(UNIT, height=HEIGHT)
    )
    fleets = [
        make_sharded(UNIT, height=HEIGHT, num_shards=n, kind=kind)
        for n in SHARD_COUNTS
    ]
    return [single, *fleets]


def _cloak_bytes(anonymizer, uid) -> object:
    try:
        region = anonymizer.cloak(uid)
    except ProfileUnsatisfiableError:
        return "unsatisfiable"
    return (region.region.as_tuple(), region.achieved_k, region.cells)


def _drive_lockstep(kind: str, ops) -> None:
    """Replay ``ops`` on every implementation, comparing as we go."""
    impls = _build(kind)
    alive: set[int] = set()
    for op in ops:
        uid = op[1]
        if op[0] == "register":
            if uid in alive:
                continue
            _, _, x, y, k, a_min = op
            for impl in impls:
                impl.register(uid, Point(x, y), PrivacyProfile(k, a_min))
            alive.add(uid)
        elif uid not in alive:
            continue
        elif op[0] == "move":
            _, _, x, y = op
            costs = {impl.update(uid, Point(x, y)) for impl in impls}
            assert len(costs) == 1, "update cost diverged"
        elif op[0] == "profile":
            _, _, k, a_min = op
            for impl in impls:
                impl.set_profile(uid, PrivacyProfile(k, a_min))
        elif op[0] == "cloak":
            cloaks = {_cloak_bytes(impl, uid) for impl in impls}
            assert len(cloaks) == 1, "cloak diverged"
        else:  # deregister
            for impl in impls:
                impl.deregister(uid)
            alive.discard(uid)
    single, *fleets = impls
    reference = dataclasses.asdict(single.stats)
    reference_cache = {
        "hits": single.cloak_cache.hits,
        "misses": single.cloak_cache.misses,
        "invalidations": single.cloak_cache.invalidations,
        "evictions": single.cloak_cache.evictions,
    }
    for fleet in fleets:
        fleet.check_invariants()
        assert dataclasses.asdict(fleet.stats) == reference
        assert fleet.cache_stats() == reference_cache
        assert fleet.num_users == single.num_users
        assert sum(fleet.shard_occupancy()) == single.num_users
        if kind == "adaptive":
            assert fleet.num_maintained_cells == single.num_maintained_cells


class TestLockstepEquivalence:
    @settings(max_examples=40)
    @given(ops=op_lists)
    def test_basic(self, ops) -> None:
        _drive_lockstep("basic", ops)

    @settings(max_examples=40)
    @given(ops=op_lists)
    def test_adaptive(self, ops) -> None:
        _drive_lockstep("adaptive", ops)


class TestCrossBoundaryEscalation:
    """Regression pinned at a shard seam.

    With N=4 shards at height 5 the spine level is 1, so the seam
    between blocks (1,0,0) and (1,1,0) is the x=0.5 line.  A cloak that
    starts next to the seam and must escalate to the spine reads counts
    contributed by *other* shards — the exact path a stale boundary
    cache or a missed spine update would corrupt.
    """

    WEST = [Point(0.46, 0.20), Point(0.48, 0.30), Point(0.49, 0.10)]
    EAST = [Point(0.51, 0.20), Point(0.53, 0.30)]

    def _populated(self, kind: str) -> list:
        impls = _build(kind)
        for impl in impls:
            for i, point in enumerate(self.WEST):
                impl.register(f"w{i}", point, PrivacyProfile(k=2))
            for i, point in enumerate(self.EAST):
                impl.register(f"e{i}", point, PrivacyProfile(k=2))
        return impls

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_escalating_cloak_crosses_the_seam_identically(self, kind) -> None:
        impls = self._populated(kind)
        # k=5 is satisfiable only above the block level: the cloak must
        # swallow users on both sides of the seam.
        for impl in impls:
            impl.set_profile("w0", PrivacyProfile(k=5))
        cloaks = {_cloak_bytes(impl, "w0") for impl in impls}
        assert len(cloaks) == 1
        (cloak,) = cloaks
        assert cloak != "unsatisfiable"
        region = Rect(*cloak[0])
        assert region.x_min < 0.5 < region.x_max, "cloak must span the seam"
        assert cloak[1] == 5

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_remote_shard_mutation_invalidates_the_spine_cloak(self, kind) -> None:
        impls = self._populated(kind)
        for impl in impls:
            impl.set_profile("w0", PrivacyProfile(k=5))
        before = {_cloak_bytes(impl, "w0") for impl in impls}
        assert len(before) == 1
        # A registration homed in the *eastern* shard changes the count
        # the cached western cloak depends on; every deployment must
        # notice (composite core/boundary epoch) and agree afresh.
        for impl in impls:
            impl.register("late", Point(0.52, 0.12), PrivacyProfile(k=2))
        after = {_cloak_bytes(impl, "w0") for impl in impls}
        assert len(after) == 1
        assert after != before  # achieved_k rose from 5 to 6

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_moving_across_the_seam_rehomes_and_stays_identical(self, kind) -> None:
        impls = self._populated(kind)
        for impl in impls:
            impl.set_profile("e0", PrivacyProfile(k=4))
            impl.update("e0", Point(0.47, 0.22))  # east -> west shard
        cloaks = {_cloak_bytes(impl, "e0") for impl in impls}
        assert len(cloaks) == 1
        single, *fleets = impls
        for fleet in fleets:
            fleet.check_invariants()
            if fleet.num_shards == 4:
                assert fleet.shard_of_user("e0") == fleet.shard_of_user("w0")
            assert dataclasses.asdict(fleet.stats) == dataclasses.asdict(
                single.stats
            )


class TestSloCountersMatch:
    """The SLO-relevant telemetry stream is deployment-independent.

    Wall-clock histograms differ between runs by construction; the
    deterministic instruments — request counters and the k-ratio
    histogram feeding the ``k_satisfaction`` SLO — must not.
    """

    @staticmethod
    def _deterministic_metrics(session) -> dict[tuple, object]:
        snapshot = session.metrics.snapshot()
        keep = {"casper_cloak_requests_total", "casper_cloak_k_ratio"}
        out: dict[tuple, object] = {}
        for entry in snapshot["metrics"]:
            if entry["name"] not in keep:
                continue
            key = (entry["name"], tuple(map(tuple, entry["labels"])))
            out[key] = {
                k: v
                for k, v in entry.items()
                if k in ("value", "counts", "sum", "boundaries", "kind")
            }
        return out

    @pytest.mark.parametrize("kind", ["basic", "adaptive"])
    def test_counters_identical_across_shard_counts(self, kind) -> None:
        from repro.observability import enabled

        streams = []
        for build in range(len(SHARD_COUNTS) + 1):
            impls = _build(kind)
            impl = impls[build]
            with enabled() as session:
                for i in range(12):
                    impl.register(
                        i,
                        Point((i % 4) / 4 + 0.1, (i // 4) / 3 + 0.05),
                        PrivacyProfile(k=2 + i % 3),
                    )
                for i in range(12):
                    _cloak_bytes(impl, i)
                    impl.update(i, Point((i % 3) / 3 + 0.05, (i % 4) / 4 + 0.1))
                    _cloak_bytes(impl, i)
                streams.append(self._deterministic_metrics(session))
        assert all(stream == streams[0] for stream in streams[1:])
