"""Tests for the density-map aggregate over private data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.processor import density_map_over_private
from repro.spatial import BruteForceIndex
from tests.conftest import UNIT, random_points, random_rects


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


class TestDensityMap:
    def test_validation(self):
        idx = BruteForceIndex()
        with pytest.raises(ValueError):
            density_map_over_private(idx, UNIT, resolution=0)
        with pytest.raises(ValueError):
            density_map_over_private(idx, Rect(0, 0, 0, 1))

    def test_mass_conservation(self, rng):
        """The expected layer sums to the number of users whose regions
        lie inside the bounds."""
        rects = random_rects(rng, 200, max_side=0.08)
        dmap = density_map_over_private(rect_index(rects), UNIT, resolution=8)
        assert dmap.total_expected == pytest.approx(200.0, abs=1e-6)

    def test_min_expected_max_ordering_per_cell(self, rng):
        rects = random_rects(rng, 150, max_side=0.15)
        dmap = density_map_over_private(rect_index(rects), UNIT, resolution=8)
        assert np.all(dmap.minimum <= dmap.expected + 1e-9)
        assert np.all(dmap.expected <= dmap.maximum + 1e-9)

    def test_point_data_counts_exactly_once(self, rng):
        points = random_points(rng, 300)
        idx = rect_index([Rect.point(p) for p in points])
        dmap = density_map_over_private(idx, UNIT, resolution=10)
        assert dmap.total_expected == pytest.approx(300.0)
        assert int(dmap.minimum.sum()) == 300
        assert int(dmap.maximum.sum()) == 300

    def test_point_on_cell_border_not_double_counted(self):
        idx = BruteForceIndex()
        idx.insert("border", Rect.point(Point(0.5, 0.5)))  # 4-cell corner at res 2
        dmap = density_map_over_private(idx, UNIT, resolution=2)
        assert dmap.total_expected == pytest.approx(1.0)
        assert int(dmap.maximum.sum()) == 1

    def test_expected_matches_monte_carlo(self, rng):
        """Per-cell expectations are unbiased under uniform placements."""
        rects = random_rects(rng, 100, max_side=0.2)
        dmap = density_map_over_private(rect_index(rects), UNIT, resolution=4)
        trials = 300
        counts = np.zeros((4, 4))
        for _ in range(trials):
            for r in rects:
                p = Point(
                    float(rng.uniform(r.x_min, r.x_max)),
                    float(rng.uniform(r.y_min, r.y_max)),
                )
                ix = min(int(p.x * 4), 3)
                iy = min(int(p.y * 4), 3)
                counts[ix, iy] += 1
        mc = counts / trials
        assert np.allclose(mc, dmap.expected, atol=0.5)

    def test_region_spanning_cells_splits_mass(self):
        idx = BruteForceIndex()
        # A region exactly covering the left half at resolution 2 spans
        # two cells, half mass each.
        idx.insert("half", Rect(0.0, 0.0, 0.5, 1.0))
        dmap = density_map_over_private(idx, UNIT, resolution=2)
        assert dmap.expected[0, 0] == pytest.approx(0.5)
        assert dmap.expected[0, 1] == pytest.approx(0.5)
        assert dmap.expected[1, 0] == 0.0
        assert int(dmap.minimum.sum()) == 0  # contained in no single cell
        assert int(dmap.maximum[0, 0]) == 1

    def test_expected_in_subregion(self, rng):
        rects = random_rects(rng, 200, max_side=0.05)
        dmap = density_map_over_private(rect_index(rects), UNIT, resolution=8)
        whole = dmap.expected_in(UNIT)
        assert whole == pytest.approx(dmap.total_expected, rel=1e-6)
        half = dmap.expected_in(Rect(0, 0, 1, 0.5))
        assert 0 < half < whole

    def test_hotspots_ordering(self, rng):
        # A deliberate cluster plus background noise.
        idx = BruteForceIndex()
        for i in range(50):
            idx.insert(f"c{i}", Rect(0.8, 0.8, 0.85, 0.85))
        for i, p in enumerate(random_points(rng, 20)):
            idx.insert(f"bg{i}", Rect.point(p))
        dmap = density_map_over_private(idx, UNIT, resolution=5)
        spots = dmap.hotspots(3)
        assert len(spots) == 3
        assert spots[0][1] >= spots[1][1] >= spots[2][1]
        assert spots[0][0].contains_point(Point(0.82, 0.82))
        with pytest.raises(ValueError):
            dmap.hotspots(0)

    def test_render_shape(self, rng):
        rects = random_rects(rng, 50, max_side=0.1)
        dmap = density_map_over_private(rect_index(rects), UNIT, resolution=6)
        art = dmap.render()
        lines = art.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 6 for line in lines)

    def test_cell_rect_tiles_bounds(self):
        dmap = density_map_over_private(BruteForceIndex(), UNIT, resolution=4)
        total = sum(
            dmap.cell_rect(ix, iy).area for ix in range(4) for iy in range(4)
        )
        assert total == pytest.approx(UNIT.area)

    def test_region_outside_bounds_ignored_for_points(self):
        idx = BruteForceIndex()
        idx.insert("out", Rect.point(Point(2.0, 2.0)))
        dmap = density_map_over_private(idx, UNIT, resolution=2)
        assert dmap.total_expected == 0.0
