"""Focused tests for the middle-point / extended-area step (both data
kinds), complementing the end-to-end inclusiveness suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.processor import (
    compute_extension_private,
    compute_extension_public,
    select_filters_private,
    select_filters_public,
)
from repro.spatial import BruteForceIndex
from tests.conftest import random_points, random_rects

AREA = Rect(0.4, 0.4, 0.6, 0.6)


def point_index(points):
    idx = BruteForceIndex()
    for i, p in enumerate(points):
        idx.insert_point(i, p)
    return idx


def rect_index(rects):
    idx = BruteForceIndex()
    for i, r in enumerate(rects):
        idx.insert(i, r)
    return idx


class TestPublicExtension:
    def test_four_edges_reported(self, rng):
        idx = point_index(random_points(rng, 100))
        filters = select_filters_public(idx, AREA, 4)
        _a_ext, extensions = compute_extension_public(idx, AREA, filters)
        assert {e.direction for e in extensions} == {
            "top", "bottom", "left", "right",
        }

    def test_d_values_match_definitions(self, rng):
        points = random_points(rng, 150)
        idx = point_index(points)
        filters = select_filters_public(idx, AREA, 4)
        _a_ext, extensions = compute_extension_public(idx, AREA, filters)
        for edge, ext in zip(AREA.edges(), extensions):
            ti = points[filters.oid_for(edge.vi)]
            tj = points[filters.oid_for(edge.vj)]
            assert ext.d_i == pytest.approx(edge.vi.distance_to(ti))
            assert ext.d_j == pytest.approx(edge.vj.distance_to(tj))
            if ext.middle_point is not None:
                # m is on the edge and equidistant from both filters.
                assert ext.d_m == pytest.approx(
                    ext.middle_point.distance_to(ti), abs=1e-9
                )
                assert ext.d_m == pytest.approx(
                    ext.middle_point.distance_to(tj), abs=1e-9
                )

    def test_same_filter_edge_has_no_middle_point(self):
        # A single target forces t_i == t_j on every edge.
        idx = point_index([Point(0.5, 0.9)])
        filters = select_filters_public(idx, AREA, 4)
        a_ext, extensions = compute_extension_public(idx, AREA, filters)
        assert all(e.middle_point is None for e in extensions)
        assert all(e.d_m == 0.0 for e in extensions)
        # A_EXT degenerates to the vertex-distance expansions and must
        # still contain the single target.
        assert a_ext.contains_point(Point(0.5, 0.9))

    def test_expansion_amounts_applied_per_side(self, rng):
        idx = point_index(random_points(rng, 200))
        filters = select_filters_public(idx, AREA, 4)
        a_ext, extensions = compute_extension_public(idx, AREA, filters)
        by_direction = {e.direction: e.max_d for e in extensions}
        assert a_ext.x_min == pytest.approx(AREA.x_min - by_direction["left"])
        assert a_ext.x_max == pytest.approx(AREA.x_max + by_direction["right"])
        assert a_ext.y_min == pytest.approx(AREA.y_min - by_direction["bottom"])
        assert a_ext.y_max == pytest.approx(AREA.y_max + by_direction["top"])

    def test_middle_point_lies_on_its_edge(self, rng):
        points = random_points(rng, 200)
        idx = point_index(points)
        filters = select_filters_public(idx, AREA, 4)
        _a_ext, extensions = compute_extension_public(idx, AREA, filters)
        for edge, ext in zip(AREA.edges(), extensions):
            if ext.middle_point is None:
                continue
            m = ext.middle_point
            assert (
                min(edge.vi.x, edge.vj.x) - 1e-9
                <= m.x
                <= max(edge.vi.x, edge.vj.x) + 1e-9
            )
            assert (
                min(edge.vi.y, edge.vj.y) - 1e-9
                <= m.y
                <= max(edge.vi.y, edge.vj.y) + 1e-9
            )


class TestPrivateExtension:
    def test_d_values_are_pessimistic(self, rng):
        rects = random_rects(rng, 150, max_side=0.08)
        idx = rect_index(rects)
        filters = select_filters_private(idx, AREA, 4)
        _a_ext, extensions = compute_extension_private(idx, AREA, filters)
        for edge, ext in zip(AREA.edges(), extensions):
            rect_i = rects[filters.oid_for(edge.vi)]
            rect_j = rects[filters.oid_for(edge.vj)]
            assert ext.d_i == pytest.approx(rect_i.max_distance_to_point(edge.vi))
            assert ext.d_j == pytest.approx(rect_j.max_distance_to_point(edge.vj))

    def test_strengthened_dm_dominates_paper_dm(self, rng):
        """Our d_m (max-distance from m to the whole rectangles) is
        never below the paper's endpoint-distance version."""
        rects = random_rects(rng, 100, max_side=0.15)
        idx = rect_index(rects)
        filters = select_filters_private(idx, AREA, 4)
        _a_ext, extensions = compute_extension_private(idx, AREA, filters)
        for edge, ext in zip(AREA.edges(), extensions):
            if ext.middle_point is None:
                continue
            rect_i = rects[filters.oid_for(edge.vi)]
            rect_j = rects[filters.oid_for(edge.vj)]
            end_i = rect_i.farthest_corner_from(edge.vj)
            end_j = rect_j.farthest_corner_from(edge.vi)
            paper_dm = max(
                ext.middle_point.distance_to(end_i),
                ext.middle_point.distance_to(end_j),
            )
            assert ext.d_m >= paper_dm - 1e-9

    def test_filters_always_candidates(self, rng):
        rects = random_rects(rng, 120, max_side=0.08)
        idx = rect_index(rects)
        filters = select_filters_private(idx, AREA, 4)
        a_ext, _extensions = compute_extension_private(idx, AREA, filters)
        for oid in filters.distinct_oids():
            assert rects[oid].intersects(a_ext)

    def test_degenerate_rect_targets_match_public(self, rng):
        points = random_points(rng, 150)
        pub = point_index(points)
        priv = rect_index([Rect.point(p) for p in points])
        f_pub = select_filters_public(pub, AREA, 4)
        f_priv = select_filters_private(priv, AREA, 4)
        ext_pub, _ = compute_extension_public(pub, AREA, f_pub)
        ext_priv, _ = compute_extension_private(priv, AREA, f_priv)
        assert ext_pub.x_min == pytest.approx(ext_priv.x_min, abs=1e-9)
        assert ext_pub.y_max == pytest.approx(ext_priv.y_max, abs=1e-9)
