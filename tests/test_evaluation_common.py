"""Tests for the experiment-harness helpers (evaluation.experiments.common)."""

from __future__ import annotations

import pytest

from repro.anonymizer import AdaptiveAnonymizer, BasicAnonymizer
from repro.evaluation.experiments.common import (
    UNIT,
    cloaked_query_regions,
    make_anonymizer,
    register_population,
    replay_updates,
    standard_trace,
    timed_cloaks,
)
from repro.workloads import uniform_profiles


class TestMakeAnonymizer:
    def test_kinds(self):
        assert isinstance(make_anonymizer("basic", 5), BasicAnonymizer)
        assert isinstance(make_anonymizer("adaptive", 5), AdaptiveAnonymizer)
        with pytest.raises(ValueError):
            make_anonymizer("quantum", 5)


class TestPopulationHelpers:
    def test_register_population_resets_stats(self):
        trace = standard_trace(100, 0, seed=0)
        profiles = uniform_profiles(100, UNIT, seed=0)
        anonymizer = make_anonymizer("basic", 6)
        register_population(anonymizer, trace, profiles)
        assert anonymizer.num_users == 100
        assert anonymizer.stats.counter_updates == 0  # reset after load
        assert anonymizer.stats.location_updates == 0

    def test_replay_updates_applies_all(self):
        trace = standard_trace(50, 3, seed=1)
        profiles = uniform_profiles(50, UNIT, seed=1)
        anonymizer = make_anonymizer("adaptive", 6)
        register_population(anonymizer, trace, profiles)
        elapsed = replay_updates(anonymizer, trace)
        assert elapsed > 0
        assert anonymizer.stats.location_updates == 150
        anonymizer.check_invariants()

    def test_timed_cloaks_counts_only_satisfiable(self):
        trace = standard_trace(30, 0, seed=2)
        # k far above the population: every cloak raises, timing is 0.
        from repro.anonymizer import PrivacyProfile

        profiles = [PrivacyProfile(k=1000)] * 30
        anonymizer = make_anonymizer("basic", 6)
        register_population(anonymizer, trace, profiles)
        assert timed_cloaks(anonymizer, range(30)) == 0.0

    def test_timed_cloaks_positive(self):
        trace = standard_trace(60, 0, seed=3)
        profiles = uniform_profiles(60, UNIT, k_range=(1, 5), seed=3)
        anonymizer = make_anonymizer("basic", 6)
        register_population(anonymizer, trace, profiles)
        assert timed_cloaks(anonymizer, range(60)) > 0.0


class TestQueryRegionHelper:
    def test_regions_are_valid_cloaks(self):
        regions = cloaked_query_regions(300, 20, height=6, seed=4)
        assert len(regions) == 20
        for region in regions:
            assert UNIT.contains_rect(region)
            assert region.area > 0

    def test_deterministic(self):
        a = cloaked_query_regions(200, 10, height=6, seed=5)
        b = cloaked_query_regions(200, 10, height=6, seed=5)
        assert a == b

    def test_k_range_affects_sizes(self):
        relaxed = cloaked_query_regions(400, 15, height=7, k_range=(1, 3), seed=6)
        strict = cloaked_query_regions(400, 15, height=7, k_range=(100, 150), seed=6)
        assert sum(r.area for r in strict) > sum(r.area for r in relaxed)
