"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (required by the PEP 660 editable path of older
setuptools) is unavailable.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
