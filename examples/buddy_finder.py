"""Buddy finder: private queries over private data.

A group of friends wants "who is my nearest buddy?" — but every friend
is also privacy-protected, so the server matches one cloaked region
against other cloaked regions (Section 5.2).  The example shows:

* the pessimistic furthest-corner filter step in action;
* how the probabilistic overlap policies trade answer size against the
  inclusiveness guarantee;
* that the true nearest buddy (verified against ground truth the server
  never sees) is always in the default candidate list.

Run:  python examples/buddy_finder.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.processor import ContainmentOnly, FractionOverlap
from repro.server import Casper

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
NUM_FRIENDS = 40
NUM_BACKGROUND = 1_500


def main() -> None:
    rng = np.random.default_rng(11)
    casper = Casper(BOUNDS, pyramid_height=8, anonymizer="adaptive")

    # Background population (provides anonymity but isn't in the club).
    for i, (x, y) in enumerate(rng.random((NUM_BACKGROUND, 2))):
        casper.register_user(
            f"bg-{i}", Point(float(x), float(y)),
            PrivacyProfile(k=int(rng.integers(1, 30))),
        )

    # The friends, clustered in one neighbourhood, various profiles.
    friends: dict[str, Point] = {}
    for i in range(NUM_FRIENDS):
        p = Point(
            float(np.clip(0.5 + rng.normal(0, 0.12), 0, 1)),
            float(np.clip(0.5 + rng.normal(0, 0.12), 0, 1)),
        )
        friends[f"friend-{i}"] = p
        casper.register_user(
            f"friend-{i}", p, PrivacyProfile(k=int(rng.integers(5, 60)))
        )

    me = "friend-0"
    my_location = friends[me]

    result = casper.query_nearest_private(me, num_filters=4)
    print(f"my cloaked region holds {result.cloak.achieved_k} users")
    print(f"server returned {result.candidate_count} candidate users "
          f"(cloaked regions only)\n")

    # Ground truth — known to nobody but us, the omniscient narrator.
    others = {uid: p for uid, p in friends.items() if uid != me}
    true_buddy = min(others, key=lambda uid: others[uid].distance_to(my_location))
    in_list = true_buddy in result.candidates.oids()
    print(f"true nearest buddy : {true_buddy} "
          f"(distance {others[true_buddy].distance_to(my_location):.4f})")
    print(f"in candidate list  : {in_list}   <- Theorem 3's inclusiveness")

    # Client-side rankings over cloaked candidates.
    for ranking in ("min", "center", "max"):
        pick = result.candidates.refine_nearest(my_location, by=ranking)
        print(f"local ranking by {ranking:>6}-distance picks: {pick}")

    # Probabilistic thinning (Section 5.2.1 step 4's x% policy).
    print("\noverlap-policy trade-off:")
    for label, policy in (
        ("any overlap (default, inclusive)", None),
        ("> 50% overlap", FractionOverlap(0.5)),
        ("fully contained only", ContainmentOnly()),
    ):
        thinned = casper.server.nn_private(
            result.cloak.region, num_filters=4, policy=policy, exclude=me
        )
        still_in = true_buddy in thinned.oids()
        print(f"  {label:<34} {len(thinned):>4} candidates, "
              f"true buddy included: {still_in}")
    print("\nThinner policies shrink the transmission but may drop the true "
          "answer — the paper leaves the choice to the application.")


if __name__ == "__main__":
    main()
