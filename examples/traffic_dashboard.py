"""Traffic dashboard: public queries over private data.

A city traffic administrator watches car density in four districts —
"how many cars in this area?" (the paper's second novel query type) —
while every car reports only cloaked regions.  The dashboard shows the
[min, max] certainty interval and the probabilistic expectation per
district per tick, and compares the expectation against the (hidden)
ground truth to demonstrate the estimator's quality.

Run:  python examples/traffic_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.server import Casper

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
NUM_CARS = 2_000
TICKS = 6

# Deliberately *not* aligned with pyramid cell boundaries, so cloaked
# regions straddle district borders and the count is genuinely uncertain.
DISTRICTS = {
    "downtown": Rect(0.33, 0.29, 0.68, 0.61),
    "uptown": Rect(0.13, 0.57, 0.47, 0.93),
    "riverside": Rect(0.55, 0.07, 0.94, 0.43),
    "old-town": Rect(0.58, 0.52, 0.88, 0.86),
}


def main() -> None:
    network = synthetic_county_map(seed=21)
    generator = NetworkGenerator(network, NUM_CARS, seed=22)
    rng = np.random.default_rng(23)
    casper = Casper(BOUNDS, pyramid_height=8, anonymizer="adaptive")

    for uid, point in generator.positions().items():
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(5, 40)))
        )

    print(f"{'tick':>4}  {'district':<12} {'min':>5} {'expected':>9} "
          f"{'max':>5} {'truth':>6} {'abs err':>8}")
    total_err = 0.0
    samples = 0
    for tick in range(TICKS):
        generator.step(1.0)
        positions = generator.positions()
        for uid, point in positions.items():
            casper.update_location(uid, point)
        for name, district in DISTRICTS.items():
            count = casper.count_users_in(district)
            truth = sum(
                1 for p in positions.values() if district.contains_point(p)
            )
            err = abs(count.expected - truth)
            total_err += err
            samples += 1
            assert count.minimum <= truth <= count.maximum
            print(f"{tick:>4}  {name:<12} {count.minimum:>5} "
                  f"{count.expected:>9.1f} {count.maximum:>5} {truth:>6} "
                  f"{err:>8.1f}")
        print()

    print(f"mean |expected - truth| over {samples} readings: "
          f"{total_err / samples:.2f} cars")
    print("The interval [min, max] always bracketed the truth, and the "
          "server never learned any car's exact position.")

    # The full-map generalization of the count query: a density heat map
    # built from cloaked regions only. The county's road skeleton is
    # clearly visible even though no exact location was ever stored.
    print("\ncity-wide expected density (cloaked data only):")
    density = casper.density_map(resolution=14)
    print(density.render())
    hotspot, load = density.hotspots(1)[0]
    print(f"\nbusiest cell: {hotspot.as_tuple()} with "
          f"~{load:.1f} expected cars")


if __name__ == "__main__":
    main()
