"""Privacy audit: what does Casper actually leak, and to whom?

Two lenses from ``repro.privacy`` applied to a live deployment:

1. **AnonymityAuditor** — replays every cloaked report against the true
   population (which only we, the omniscient narrator, can see) and
   verifies the promised k-anonymity is always delivered.
2. **RegionIntersectionAttack** — an adversary who can *link* a
   pseudonym's successive reports (e.g. a standing query) and knows a
   speed bound intersects them over time.  The audit shows single
   reports leak nothing (Section 4.3's uniformity guarantee) while
   linked streams narrow the feasible set — and how raising k buys
   headroom against that.

Run:  python examples/privacy_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.privacy import AnonymityAuditor, RegionIntersectionAttack
from repro.server import Casper

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
NUM_USERS = 1_200
TICKS = 10
MAX_SPEED = 0.05 * 1.3  # honest bound: highway speed x jitter headroom


def main() -> None:
    network = synthetic_county_map(seed=61)
    generator = NetworkGenerator(network, NUM_USERS, seed=62)
    rng = np.random.default_rng(63)
    casper = Casper(BOUNDS, pyramid_height=9, anonymizer="adaptive")
    promised = {}
    for uid, point in generator.positions().items():
        k = int(rng.integers(2, 60))
        promised[uid] = k
        casper.register_user(uid, point, PrivacyProfile(k=k))

    auditor = AnonymityAuditor()
    victims = {uid: RegionIntersectionAttack(MAX_SPEED) for uid in (0, 1, 2)}

    for tick in range(TICKS):
        for update in generator.step(1.0):
            casper.update_location(update.uid, update.point)
        positions = {
            uid: casper.anonymizer.location_of(uid) for uid in range(NUM_USERS)
        }
        # Audit a sample of fresh reports.
        for uid in rng.choice(NUM_USERS, size=40, replace=False):
            uid = int(uid)
            region = casper.anonymizer.cloak(uid).region
            auditor.audit(uid, region, promised[uid], positions)
        # The linkage adversary follows three pseudonyms.
        for uid, attack in victims.items():
            region = casper.anonymizer.cloak(uid).region
            attack.observe(region, float(tick))
            assert attack.contains(positions[uid])  # soundness

    print("=== k-anonymity audit (single reports) ===")
    print(auditor.summary())
    print("Every report delivered at least the promised k — the paper's "
          "accuracy requirement, verified against ground truth.\n")

    print("=== linkage adversary (continuous reports) ===")
    print(f"{'victim':>6} {'k':>4} {'last cloak':>11} {'feasible':>11} "
          f"{'narrowing':>10}")
    for uid, attack in victims.items():
        region = casper.anonymizer.cloak(uid).region
        factor = attack.narrowing_factor(region)
        print(f"{uid:>6} {promised[uid]:>4} {region.area:>11.6f} "
              f"{attack.feasible.area:>11.6f} {factor:>10.3f}")
    print("\nA factor below 1.0 means linked reports told the adversary "
          "more than any single cloak — the continuous-disclosure "
          "threat the post-Casper literature tackles. Raising k keeps "
          "the *absolute* feasible area large even under linkage "
          "(see benchmarks/test_ablation_privacy.py).")


if __name__ == "__main__":
    main()
