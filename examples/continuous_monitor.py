"""Continuous queries: "keep me posted on my nearest coffee shops".

Shows the incremental monitor from ``repro.continuous``: a handful of
commuters register standing private NN and range queries, the whole city
keeps moving, coffee shops open and close — and the monitor re-evaluates
only the queries each event can affect, reporting answer deltas.

Run:  python examples/continuous_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.geometry import Point, Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.server import Casper
from repro.workloads import uniform_points

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
NUM_COMMUTERS = 800
NUM_SHOPS = 250
TICKS = 8


def main() -> None:
    network = synthetic_county_map(seed=41)
    generator = NetworkGenerator(network, NUM_COMMUTERS, seed=42)
    rng = np.random.default_rng(43)

    casper = Casper(BOUNDS, pyramid_height=8, anonymizer="adaptive")
    casper.add_public_targets(uniform_points(NUM_SHOPS, BOUNDS, seed=44))
    for uid, point in generator.positions().items():
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(1, 35)))
        )

    monitor = ContinuousQueryMonitor(casper)
    watched = [0, 1, 2, 3, 4]
    for uid in watched:
        initial = monitor.register_nn(f"nn:{uid}", uid)
        print(f"commuter {uid}: watching nearest shop "
              f"({len(initial)} initial candidates)")
    monitor.register_range("rg:0", 0, radius=0.06)
    print("commuter 0: also watching shops within 0.06\n")

    next_shop = NUM_SHOPS
    for tick in range(TICKS):
        # The city moves.
        for update in generator.step(1.0):
            monitor.on_user_moved(update.uid, update.point)
        # Retail churn: one shop closes, one opens.
        closing = f"T{int(rng.integers(1, NUM_SHOPS))}"
        if closing in casper.server.public_index:
            monitor.on_target_update(closing, None)
        opening = f"T{next_shop + 1}"
        next_shop += 1
        monitor.on_target_update(
            opening, Point(float(rng.random()), float(rng.random()))
        )

        changes = monitor.flush()
        print(f"tick {tick}: {len(changes)} of {monitor.num_queries} standing "
              f"queries changed "
              f"(closed {closing}, opened {opening})")
        for change in changes:
            delta = []
            if change.added:
                delta.append(f"+{sorted(map(str, change.added))[:3]}")
            if change.removed:
                delta.append(f"-{sorted(map(str, change.removed))[:3]}")
            print(f"   {change.query_id}: {' '.join(delta)}")

    print("\nEvery re-evaluation touched only the queries whose extended "
          "search region the event intersected — the shared-execution "
          "integration Section 5 of the paper defers to.")


if __name__ == "__main__":
    main()
