"""Store finder: a driver asking for the nearest gas station while moving.

The workload the paper's introduction motivates: a car drives across the
county road network (Brinkhoff-style generator over the synthetic map),
periodically asking "where is my nearest gas station?" without ever
revealing its position.  The script contrasts Casper's candidate-list
answers with the two naive extremes of Figure 4 — the center-NN guess
(small but wrong) and ship-everything (right but huge) — and verifies
Casper's answer is always exact.

Run:  python examples/store_finder.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.server import Casper
from repro.workloads import uniform_points

PYRAMID_HEIGHT = 8
NUM_BACKGROUND_USERS = 2_000
NUM_STATIONS = 400
DRIVE_TICKS = 12


def main() -> None:
    network = synthetic_county_map(seed=3)
    # The map lives inside the unit square; use the square itself as the
    # service area so cloaks can use the full pyramid.
    bounds = Rect(0.0, 0.0, 1.0, 1.0)
    casper = Casper(bounds, pyramid_height=PYRAMID_HEIGHT, anonymizer="adaptive")

    stations = uniform_points(NUM_STATIONS, bounds, seed=4)
    casper.add_public_targets(stations)

    # Background traffic: other drivers that provide the anonymity set.
    generator = NetworkGenerator(network, NUM_BACKGROUND_USERS + 1, seed=5)
    rng = np.random.default_rng(6)
    for uid, point in generator.positions().items():
        if uid == 0:
            continue
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(1, 50)))
        )

    # Our driver is user 0 with a firm k=30 requirement.
    driver_profile = PrivacyProfile(k=30)
    casper.register_user(0, generator.position_of(0), driver_profile)

    print(f"{'tick':>4}  {'cloak area':>10}  {'k_R':>4}  "
          f"{'candidates':>10}  {'center-NN ok':>12}  {'exact answer':>14}")
    center_correct = 0
    for tick in range(DRIVE_TICKS):
        generator.step(1.0)
        for uid, point in generator.positions().items():
            casper.update_location(uid, point)

        result = casper.query_nearest_public(0, num_filters=4)
        driver_at = casper.anonymizer.location_of(0)

        # The naive center guess for comparison (Figure 4b).
        center_guess = casper.server.nn_public_naive_center(
            result.cloak.region
        ).oids()[0]
        truth = result.answer  # Casper's refined answer is exact (Theorem 1)
        true_d = stations[truth].distance_to(driver_at)
        guess_d = stations[center_guess].distance_to(driver_at)
        center_ok = abs(guess_d - true_d) < 1e-12
        center_correct += center_ok

        print(f"{tick:>4}  {result.cloak.area:>10.5f}  "
              f"{result.cloak.achieved_k:>4}  {result.candidate_count:>10}  "
              f"{str(center_ok):>12}  {truth:>14}")

    print(f"\nCasper answered exactly every tick by construction "
          f"(inclusive candidate lists + local refinement).")
    print(f"The naive center-NN guess was right {center_correct}/{DRIVE_TICKS} "
          f"times — the accuracy gap Figure 4 motivates.")
    print(f"Ship-everything would have sent {NUM_STATIONS} records per query; "
          f"Casper sent ~{result.candidate_count}.")


if __name__ == "__main__":
    main()
