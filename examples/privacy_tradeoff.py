"""The personal privacy / quality-of-service trade-off, quantified.

Section 3: "mobile users have the ability to adjust a personal trade-off
between the amount of information they would like to reveal about their
locations and the quality of service."  This example sweeps one user's
privacy profile — both the k dial and the A_min dial — and tabulates
what each setting costs: cloak size, candidate-list size, transmission
time, and end-to-end latency.

Run:  python examples/privacy_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.server import Casper, MobileClient
from repro.workloads import uniform_points

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)
NUM_USERS = 3_000
NUM_STATIONS = 1_000


def main() -> None:
    rng = np.random.default_rng(31)
    casper = Casper(BOUNDS, pyramid_height=9, anonymizer="adaptive")
    casper.add_public_targets(uniform_points(NUM_STATIONS, BOUNDS, seed=32))
    for i, (x, y) in enumerate(rng.random((NUM_USERS, 2))):
        casper.register_user(
            i, Point(float(x), float(y)), PrivacyProfile(k=int(rng.integers(1, 50)))
        )

    me = MobileClient(casper, "me", Point(0.37, 0.58), PrivacyProfile(k=1))

    print("--- the k dial (A_min = 0) ---")
    print(f"{'k':>5} {'cloak area':>11} {'users hidden':>13} "
          f"{'candidates':>11} {'transmit us':>12} {'total ms':>9}")
    for k in (1, 5, 10, 25, 50, 100, 250, 500):
        me.change_profile(PrivacyProfile(k=k))
        result = me.nearest_public()
        print(f"{k:>5} {result.cloak.area:>11.6f} "
              f"{result.cloak.achieved_k:>13} {result.candidate_count:>11} "
              f"{result.transmission_seconds * 1e6:>12.1f} "
              f"{result.total_seconds * 1e3:>9.3f}")

    print("\n--- the A_min dial (k = 1) ---")
    print(f"{'A_min %':>8} {'cloak area':>11} {'candidates':>11} "
          f"{'transmit us':>12}")
    for fraction in (0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
        me.change_profile(PrivacyProfile(k=1, a_min=fraction * BOUNDS.area))
        result = me.nearest_public()
        print(f"{fraction * 100:>8.4f} {result.cloak.area:>11.6f} "
              f"{result.candidate_count:>11} "
              f"{result.transmission_seconds * 1e6:>12.1f}")

    print("\nEvery answer above was exact — stricter profiles only cost "
          "bandwidth and latency, never correctness (Theorems 1-2).")


if __name__ == "__main__":
    main()
