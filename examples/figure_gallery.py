"""Figure gallery: render the paper's explanatory figures from live state.

Writes SVG files (to ``examples/output/`` by default) reproducing the
paper's illustrative figures with real data:

* ``query_scene.svg``   — Figure 5: cloaked area, A_EXT, candidates;
* ``deployment.svg``    — Figure 9-style county overview with a cloak;
* ``pyramid_cut.svg``   — the adaptive anonymizer's maintained cells.

Run:  python examples/figure_gallery.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.server import Casper
from repro.viz import draw_deployment, draw_pyramid_cut, draw_query_scene
from repro.workloads import uniform_points

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)


def main(output_dir: str | None = None) -> None:
    out = pathlib.Path(
        output_dir
        if output_dir is not None
        else pathlib.Path(__file__).parent / "output"
    )
    out.mkdir(parents=True, exist_ok=True)

    network = synthetic_county_map(seed=71)
    generator = NetworkGenerator(network, 1_000, seed=72)
    rng = np.random.default_rng(73)
    casper = Casper(BOUNDS, pyramid_height=7, anonymizer="adaptive")
    targets = uniform_points(250, BOUNDS, seed=74)
    casper.add_public_targets(targets)
    for uid, point in generator.positions().items():
        casper.register_user(
            uid, point, PrivacyProfile(k=int(rng.integers(2, 40)))
        )

    # Figure 5: one user's private NN query, dissected.
    result = casper.query_nearest_public(0, num_filters=4)
    scene = draw_query_scene(
        BOUNDS,
        result.cloak.region,
        result.candidates,
        all_targets=targets,
        user=casper.anonymizer.location_of(0),
    )
    scene.save(out / "query_scene.svg")

    # Figure 9-style deployment overview.
    deployment = draw_deployment(
        BOUNDS, network, generator.positions(), cloak=result.cloak
    )
    deployment.save(out / "deployment.svg")

    # The incomplete pyramid's current cut.
    cut = draw_pyramid_cut(casper.anonymizer)
    cut.save(out / "pyramid_cut.svg")

    for name in ("query_scene.svg", "deployment.svg", "pyramid_cut.svg"):
        print(f"wrote {out / name}")
    print(f"\ncandidate list drawn: {result.candidate_count} targets; "
          f"exact answer {result.answer} (marked inside A_EXT)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
