"""Quickstart: a complete Casper round trip in ~60 lines.

Builds the full stack (location anonymizer + privacy-aware database
server), registers a small city of mobile users, and runs one of each of
the paper's three novel query types:

* private query over public data  — "where is my nearest gas station?"
* private query over private data — "where is my nearest buddy?"
* public query over private data  — "how many users are downtown?"

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.server import Casper, MobileClient

SERVICE_AREA = Rect(0.0, 0.0, 1.0, 1.0)

# CASPER_SHARDS > 1 runs the identical pipeline on the sharded
# anonymizer runtime (`python -m repro metrics --shards N` sets this);
# every printed answer below is byte-for-byte unchanged by it.
# CASPER_PARALLEL=1 additionally runs each shard as its own worker
# process over the wire protocol (`--parallel`) — still byte-identical.
SHARDS = int(os.environ.get("CASPER_SHARDS", "1"))
PARALLEL = os.environ.get("CASPER_PARALLEL", "0") == "1"


def main() -> None:
    rng = np.random.default_rng(7)
    casper = Casper(
        SERVICE_AREA,
        pyramid_height=8,
        anonymizer="adaptive",
        shards=SHARDS,
        parallel=PARALLEL,
    )

    # Public data goes straight to the server: 300 gas stations.
    stations = {
        f"station-{i}": Point(float(x), float(y))
        for i, (x, y) in enumerate(rng.random((300, 2)))
    }
    casper.add_public_targets(stations)

    # 500 mobile users register through the trusted anonymizer; each
    # picks their own (k, A_min) privacy profile.
    for i, (x, y) in enumerate(rng.random((500, 2))):
        casper.register_user(
            i, Point(float(x), float(y)), PrivacyProfile(k=int(rng.integers(2, 40)))
        )

    # Alice wants k=25 anonymity: indistinguishable among 25 users.
    alice = MobileClient(
        casper, "alice", Point(0.42, 0.61), PrivacyProfile(k=25)
    )

    print("=== Private query over PUBLIC data ===")
    result = alice.nearest_public()
    print(f"cloaked region     : {result.cloak.region.as_tuple()}")
    print(f"  (hides alice among {result.cloak.achieved_k} users)")
    print(f"candidate list size: {result.candidate_count} of {len(stations)} stations")
    print(f"exact answer       : {result.answer} "
          f"(refined locally on alice's device)")
    print(f"end-to-end time    : {result.total_seconds * 1e3:.3f} ms "
          f"(anonymize {result.anonymizer_seconds * 1e6:.0f} us, "
          f"process {result.processing_seconds * 1e6:.0f} us, "
          f"transmit {result.transmission_seconds * 1e6:.0f} us)")

    print("\n=== Private query over PRIVATE data ===")
    buddy = alice.nearest_buddy()
    print(f"candidate buddies  : {buddy.candidate_count}")
    print(f"most likely nearest: user {buddy.answer}")

    print("\n=== Public query over PRIVATE data ===")
    downtown = Rect(0.3, 0.3, 0.7, 0.7)
    count = casper.count_users_in(downtown)
    print(f"users downtown     : between {count.minimum} and {count.maximum}, "
          f"expected {count.expected:.1f}")
    print("  (the server never saw a single exact user location)")

    print("\n=== The privacy dial ===")
    for k in (2, 25, 100):
        alice.change_profile(PrivacyProfile(k=k))
        result = alice.nearest_public()
        print(f"k={k:>3}: cloak area {result.cloak.area:.5f}, "
              f"{result.candidate_count:>3} candidates, "
              f"transmit {result.transmission_seconds * 1e6:7.1f} us")

    casper.close()  # reaps shard worker processes under CASPER_PARALLEL=1


if __name__ == "__main__":
    main()
