#!/usr/bin/env python
"""Chaos-harness runner that works without an installed package.

Equivalent to ``PYTHONPATH=src python -m repro chaos``; see
``docs/resilience.md`` for the failure model and the gate semantics.

Usage::

    python tools/chaos.py [--scenario NAME] [--seed N] [--check]
        [--users N --targets N --steps N] [--out PATH]

``--check`` is the CI resilience gate: exit 1 on any privacy violation,
an SLO bound breach, or a non-deterministic report.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["chaos", *sys.argv[1:]]))
