#!/usr/bin/env python
"""casperlint runner that works without an installed package.

Equivalent to ``PYTHONPATH=src python -m repro lint``; see
``docs/static-analysis.md`` for the rule catalogue.

Usage::

    python tools/lint.py [paths...] [--format json] [--write-baseline]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
