#!/usr/bin/env python
"""Duplication budget for the sharded anonymizer modules.

The PyramidEngine/CloakingPolicy refactor shrank ``sharding/basic.py``
and ``sharding/adaptive.py`` to routing and spine glue: everything the
two variants share now lives in ``sharding/fleet.py``, ``recovery.py``,
``invariants.py`` and the engine/policy layer.  The cheapest way for
that split to rot is for variant-specific modules to quietly re-absorb
shared mechanics, one pasted helper at a time.

This gate freezes each module's post-refactor line count and fails CI
when a file regrows past its baseline plus 10% — growth beyond that
band means either duplication creeping back (hoist it into the shared
layers) or a genuine new responsibility (then move the baseline in the
same PR, with the reasoning in the commit).

Usage::

    python tools/dup_budget.py [--root PATH]

Exit codes: 0 — every file within budget; 1 — a file over budget;
2 — a budgeted file is missing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: path (repo-relative) -> post-refactor baseline line count.
BASELINES = {
    "src/repro/sharding/basic.py": 297,
    "src/repro/sharding/adaptive.py": 292,
}

#: Allowed growth over baseline before the gate fails.
HEADROOM = 0.10


def budget_of(baseline: int) -> int:
    return int(baseline * (1 + HEADROOM))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT, help="repository root"
    )
    args = parser.parse_args(argv)

    failures = 0
    for rel, baseline in sorted(BASELINES.items()):
        path = args.root / rel
        if not path.is_file():
            print(f"dup-budget: {rel}: budgeted file is missing", file=sys.stderr)
            return 2
        lines = len(path.read_text().splitlines())
        budget = budget_of(baseline)
        status = "ok" if lines <= budget else "OVER BUDGET"
        print(f"dup-budget: {rel}: {lines} lines (budget {budget}) {status}")
        if lines > budget:
            failures += 1
            print(
                f"dup-budget: {rel} regrew past its post-refactor baseline "
                f"({baseline} + {HEADROOM:.0%}); hoist shared mechanics into "
                f"sharding/fleet.py / recovery.py / invariants.py or move the "
                f"baseline deliberately in this PR",
                file=sys.stderr,
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
