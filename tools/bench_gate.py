#!/usr/bin/env python
"""Bench-regression gate: compare a fresh report to the committed reference.

``tools/bench.py`` writes absolute timings, which vary with the host, so
this gate compares only the *dimensionless* speedup ratios the
engine-performance pass claims (cached-vs-uncached cloaking, pruned
kNN vs the full sort, batched vs sequential queries, the sharded
runtimes' 8-way cloak/update scaling quotients, and the safe-region
monitor's evaluation-suppression ratio over the naive per-tick
re-query baseline).  Each ratio is a
same-machine, same-run quotient, so it is stable across hardware — a
drop means the optimization itself regressed, not the runner.

The reference is auto-selected by the report's ``quick`` flag:
``BENCH_engine_quick.json`` for ``--quick`` CI smoke runs,
``BENCH_engine.json`` for full runs.

Usage::

    python tools/bench_gate.py [REPORT] [--reference PATH]
        [--max-slowdown 0.25]

Exit codes: 0 — every ratio within tolerance; 1 — a regression beyond
``--max-slowdown``; 2 — a malformed or missing report/reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (section, key) of every gated dimensionless ratio.
GATED_RATIOS = (
    ("cloak", "speedup"),
    ("knn_private", "speedup"),
    ("batch", "speedup"),
    ("shard_scaling", "cloak_scaling_8x"),
    ("shard_parallel", "cloak_scaling_8x"),
    ("shard_parallel", "update_scaling_8x"),
    ("pyramid_scale", "speedup"),
    ("continuous_mobility", "evaluation_suppression"),
)


def load_report(path: Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    if not isinstance(report, dict):
        raise SystemExit(f"{path}: expected a JSON object")
    return report


def pick_reference(report: dict) -> Path:
    name = "BENCH_engine_quick.json" if report.get("quick") else "BENCH_engine.json"
    return REPO_ROOT / name


def compare(
    report: dict, reference: dict, max_slowdown: float
) -> tuple[list[str], list[str]]:
    """Return (summary lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    for section, key in GATED_RATIOS:
        label = f"{section}.{key}"
        try:
            current = float(report[section][key])
            baseline = float(reference[section][key])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{label}: missing from report or reference")
            continue
        if baseline <= 0.0:
            failures.append(f"{label}: reference value {baseline} is not positive")
            continue
        floor = baseline * (1.0 - max_slowdown)
        verdict = "ok" if current >= floor else "REGRESSED"
        lines.append(
            f"{label}: {current:.2f}x vs reference {baseline:.2f}x "
            f"(floor {floor:.2f}x) -> {verdict}"
        )
        if current < floor:
            failures.append(
                f"{label} regressed: {current:.2f}x < {floor:.2f}x "
                f"({max_slowdown:.0%} below the reference {baseline:.2f}x)"
            )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", nargs="?", default="bench-ci.json",
        help="fresh bench report to check (default: bench-ci.json)",
    )
    parser.add_argument(
        "--reference", metavar="PATH", default=None,
        help="committed reference report (default: auto by the report's "
        "quick flag)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional drop per ratio (default: 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_slowdown < 1.0:
        print("--max-slowdown must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        report = load_report(Path(args.report))
        reference_path = (
            Path(args.reference) if args.reference else pick_reference(report)
        )
        reference = load_report(reference_path)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if bool(report.get("quick")) != bool(reference.get("quick")):
        print(
            f"workload mismatch: report quick={report.get('quick')} but "
            f"reference {reference_path.name} quick={reference.get('quick')}",
            file=sys.stderr,
        )
        return 2

    print(f"gating {args.report} against {reference_path.name}")
    lines, failures = compare(report, reference, args.max_slowdown)
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
