#!/usr/bin/env python
"""Hot-path engine benchmarks.

Times the four optimizations of the query-engine performance pass and
writes the measurements to ``BENCH_engine.json`` so future changes can
track the trajectory:

* **cloak** — anonymizer cloak throughput on a co-located workload
  (many users sharing cells and profiles), cached vs. the uncached
  seed path (``cloak_cache_size=0``);
* **knn_private** — ``private_knn_over_private`` latency with the
  pruned ``k_nearest_by_max_distance`` search vs. the seed's
  sort-every-target ``_kth_distance_private``;
* **nn_latency** — plain private-NN-over-public latency (context
  number, no baseline);
* **batch** — ``BatchQueryEngine`` over a duplicate-heavy request
  stream vs. the same stream issued one query at a time;
* **shard_scaling** — in-process sharded anonymizer throughput at
  N = 1/2/4/8 shards (invalidation-locality effect);
* **shard_parallel** — the multi-process shard runtime at
  N = 1/2/4/8 worker processes, paired-chunk ratios for cloak and
  update throughput;
* **pyramid_scale** — per-tick ``update_batch`` throughput of the
  vectorized structure-of-arrays pyramid vs the scalar oracle at
  100k users (10k under ``--quick``);
* **continuous_mobility** — re-query rate of the safe-region
  continuous-kNN monitor vs the naive re-issue-every-tick client on
  the commuter trajectory workload (identical recorded ticks, refined
  answers asserted equal at the end).

Usage::

    PYTHONPATH=src python tools/bench.py [--quick] [--out PATH]
        [--repeats N] [--telemetry [PATH]] [--only NAME ...]

``--quick`` shrinks every workload for CI smoke runs.  ``--repeats``
runs every benchmark N times and reports the run with the *median*
gated statistic — single-shot timings of the quick workloads are noisy
enough (2x run-to-run swings on the cloak ratio) to trip a 25%
regression gate on pure jitter.  ``--telemetry`` runs the benchmarks
with the observability layer *enabled* (the instrumented configuration
the speedup gates must also pass in) and writes the privacy-screened
telemetry snapshot next to the report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.anonymizer import BasicAnonymizer, PrivacyProfile  # noqa: E402
from repro.geometry import Point, Rect  # noqa: E402
from repro.processor import (  # noqa: E402
    BatchQueryEngine,
    BatchRequest,
    private_nn_over_private,
    private_nn_over_public,
    private_knn_over_private,
)
from repro.processor.knn import _extended_region  # noqa: E402
from repro.spatial import RTreeIndex  # noqa: E402
from repro.utils.rng import ensure_rng  # noqa: E402

BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


# ----------------------------------------------------------------------
# 1. Cloak throughput: co-located users, cached vs uncached
# ----------------------------------------------------------------------
def bench_cloak(quick: bool) -> dict:
    num_groups = 20 if quick else 50
    users_per_group = 20 if quick else 100
    rounds = 3 if quick else 5
    rng = ensure_rng(0)
    points = [
        Point(float(rng.random()), float(rng.random())) for _ in range(num_groups)
    ]
    # Strict profiles make Algorithm 1 climb several pyramid levels per
    # cloak (the realistic worst case the cache is for); relaxed
    # profiles stop at the first cell and leave nothing to save.
    profile = PrivacyProfile(k=50 if quick else 200)

    def populate(cache_size: int) -> BasicAnonymizer:
        anon = BasicAnonymizer(BOUNDS, height=8, cloak_cache_size=cache_size)
        uid = 0
        for point in points:
            for _ in range(users_per_group):
                anon.register(uid, point, profile)
                uid += 1
        return anon

    def drain(anon: BasicAnonymizer) -> float:
        uids = list(range(num_groups * users_per_group))
        start = time.perf_counter()
        for _ in range(rounds):
            for uid in uids:
                anon.cloak(uid)
        return time.perf_counter() - start

    cached = populate(8192)
    uncached = populate(0)
    cached_s = drain(cached)
    uncached_s = drain(uncached)
    cloaks = num_groups * users_per_group * rounds
    return {
        "num_users": num_groups * users_per_group,
        "co_located_groups": num_groups,
        "cloaks_timed": cloaks,
        "cached_seconds": cached_s,
        "uncached_seconds": uncached_s,
        "cached_cloaks_per_second": cloaks / cached_s,
        "uncached_cloaks_per_second": cloaks / uncached_s,
        "speedup": uncached_s / cached_s,
        "cache_hit_rate": cached.cloak_cache.hit_rate,
    }


# ----------------------------------------------------------------------
# 2. Pruned kNN vs the seed's full sort
# ----------------------------------------------------------------------
def _kth_distance_full_sort(index, anchor, k):
    """The seed implementation: sort every stored region by pessimistic
    distance and take the k-th."""
    dists = sorted(
        rect.max_distance_to_point(anchor) for rect in index._entries.values()
    )
    return dists[k - 1]


def _knn_private_full_sort(index, cloaked_area, k, num_filters=4):
    k = min(k, len(index))
    a_ext = _extended_region(
        cloaked_area,
        lambda v: _kth_distance_full_sort(index, v, k),
        num_filters,
        k,
    )
    candidates = [(oid, index.rect_of(oid)) for oid in index.range_search(a_ext)]
    return tuple(sorted(candidates, key=lambda item: str(item[0])))


def bench_knn(quick: bool) -> dict:
    num_targets = 2_000 if quick else 10_000
    num_queries = 10 if quick else 30
    k = 10
    rng = ensure_rng(1)
    index = RTreeIndex()
    entries = {}
    for oid in range(num_targets):
        x, y = float(rng.random()) * 0.95, float(rng.random()) * 0.95
        w, h = float(rng.uniform(0.001, 0.02)), float(rng.uniform(0.001, 0.02))
        entries[oid] = Rect(x, y, x + w, y + h)
    index.bulk_load(entries)
    areas = []
    for _ in range(num_queries):
        x, y = float(rng.random()) * 0.9, float(rng.random()) * 0.9
        areas.append(Rect(x, y, x + 0.05, y + 0.05))

    pruned_s, pruned_out = _timed(
        lambda: [private_knn_over_private(index, a, k).items for a in areas]
    )
    full_s, full_out = _timed(
        lambda: [_knn_private_full_sort(index, a, k) for a in areas]
    )
    assert pruned_out == full_out, "pruned kNN diverged from the full-sort oracle"
    return {
        "num_targets": num_targets,
        "num_queries": num_queries,
        "k": k,
        "pruned_seconds": pruned_s,
        "full_sort_seconds": full_s,
        "speedup": full_s / pruned_s,
    }


# ----------------------------------------------------------------------
# 3. NN latency context number
# ----------------------------------------------------------------------
def bench_nn_latency(quick: bool) -> dict:
    num_targets = 2_000 if quick else 10_000
    num_queries = 50 if quick else 200
    rng = ensure_rng(2)
    index = RTreeIndex()
    index.bulk_load(
        {
            oid: Rect.point(Point(float(rng.random()), float(rng.random())))
            for oid in range(num_targets)
        }
    )
    areas = []
    for _ in range(num_queries):
        x, y = float(rng.random()) * 0.9, float(rng.random()) * 0.9
        areas.append(Rect(x, y, x + 0.04, y + 0.04))
    total_s, _ = _timed(lambda: [private_nn_over_public(index, a) for a in areas])
    return {
        "num_targets": num_targets,
        "num_queries": num_queries,
        "mean_latency_ms": total_s / num_queries * 1e3,
    }


# ----------------------------------------------------------------------
# 4. Batch vs sequential on a duplicate-heavy stream
# ----------------------------------------------------------------------
# 5. Shard scaling: the sharded runtime vs its own single-shard case
# ----------------------------------------------------------------------
def bench_shard_scaling(quick: bool) -> dict:
    """Throughput of the sharded anonymizer at N = 1/2/4/8 shards.

    One identical workload per shard count: local (within-block) moves
    concentrated in a single spatial block, interleaved with cloak
    bursts spread over the whole population.  Sharding confines each
    move's epoch bump to the owning core, so cloaks homed in untouched
    shards revalidate their cache entries with an O(1) epoch compare
    instead of walking per-cell generation snapshots — the throughput
    gain is the point of the partition, and the gated ratios are
    same-run quotients (N-shard vs 1-shard) so they survive host
    changes.
    """
    from repro.sharding import make_sharded

    num_users = 2_000 if quick else 10_000
    height = 7
    chunks = 30 if quick else 50
    moves_per_chunk = 25 if quick else 50
    cloaks_per_chunk = 100 if quick else 200
    shard_counts = (1, 2, 4, 8)
    profile = PrivacyProfile(k=25)

    rng = ensure_rng(4)
    homes = [
        Point(float(rng.random()), float(rng.random())) for _ in range(num_users)
    ]
    # Movers live in one level-2 block ([0, 0.25)^2), so their updates
    # land on exactly one shard at every N here; tiny jitters keep each
    # move inside the block (and its epoch bump inside that core).
    movers = [uid for uid, p in enumerate(homes) if p.x < 0.25 and p.y < 0.25]
    move_script = []
    for _ in range(chunks * moves_per_chunk):
        uid = movers[int(rng.integers(len(movers)))]
        home = homes[uid]
        move_script.append(
            (
                uid,
                Point(
                    min(0.249, max(0.001, home.x + float(rng.uniform(-0.002, 0.002)))),
                    min(0.249, max(0.001, home.y + float(rng.uniform(-0.002, 0.002)))),
                ),
            )
        )
    # Cloak bursts sample a "hot" quarter of the population spread over
    # every shard: their cache entries stay resident, so the timed path
    # is dominated by revalidation cost — exactly what sharding changes.
    hot = [uid for uid in range(num_users) if uid % 4 == 0]
    cloak_script = [
        hot[int(rng.integers(len(hot)))] for _ in range(chunks * cloaks_per_chunk)
    ]

    per_shard: dict[str, dict] = {}
    cloaks_per_second: dict[int, float] = {}
    updates_per_second: dict[int, float] = {}
    for num_shards in shard_counts:
        fleet = make_sharded(
            BOUNDS, height=height, num_shards=num_shards, kind="basic"
        )
        for uid, point in enumerate(homes):
            fleet.register(uid, point, profile)
        for uid in cloak_script[:cloaks_per_chunk]:  # warm the caches
            fleet.cloak(uid)
        move_s = 0.0
        cloak_s = 0.0
        for chunk in range(chunks):
            start = time.perf_counter()
            for uid, point in move_script[
                chunk * moves_per_chunk : (chunk + 1) * moves_per_chunk
            ]:
                fleet.update(uid, point)
            move_s += time.perf_counter() - start
            start = time.perf_counter()
            for uid in cloak_script[
                chunk * cloaks_per_chunk : (chunk + 1) * cloaks_per_chunk
            ]:
                fleet.cloak(uid)
            cloak_s += time.perf_counter() - start
        fleet.check_invariants()
        # Per-core counters, not the blended aggregate: `cache_stats()`
        # sums every core, which reports the *same* hit rate at every
        # shard count and hides the effect being measured — the mover
        # shard absorbing all invalidations while the other cores
        # revalidate at ~100%.
        per_core = fleet.cache_stats_per_shard()

        def hit_rate(counters: dict[str, int]) -> float:
            lookups = counters["hits"] + counters["misses"]
            return counters["hits"] / lookups if lookups else 0.0

        total = {
            key: sum(c[key] for c in per_core.values())
            for key in ("hits", "misses")
        }
        cloaks_per_second[num_shards] = chunks * cloaks_per_chunk / cloak_s
        updates_per_second[num_shards] = chunks * moves_per_chunk / move_s
        per_shard[str(num_shards)] = {
            "spine_level": fleet.router.spine_level,
            "update_ops_per_second": updates_per_second[num_shards],
            "query_cloaks_per_second": cloaks_per_second[num_shards],
            "cache_hit_rate": hit_rate(total),
            "cache_hit_rate_per_shard": {
                name: hit_rate(counters)
                for name, counters in sorted(per_core.items())
            },
        }
    return {
        "num_users": num_users,
        "height": height,
        "kind": "basic",
        "moves_timed": chunks * moves_per_chunk,
        "cloaks_timed": chunks * cloaks_per_chunk,
        "shards": per_shard,
        "cloak_scaling_4x": cloaks_per_second[4] / cloaks_per_second[1],
        "cloak_scaling_8x": cloaks_per_second[8] / cloaks_per_second[1],
        "update_scaling_8x": updates_per_second[8] / updates_per_second[1],
    }


# ----------------------------------------------------------------------
# Pyramid scale: vectorized vs scalar per-tick update streams
# ----------------------------------------------------------------------
def bench_pyramid_scale(quick: bool) -> dict:
    """Update-tick throughput of the structure-of-arrays pyramid.

    One tick = the whole population moves once, applied through
    ``update_batch``: the scalar oracle walks ``path_to_root`` per move,
    the vectorized backend scatters the whole tick with ``np.add.at``
    over Morton ancestor chains.  Both backends see the identical move
    script; the first tick's per-move costs are asserted equal, so the
    measured speedup is for bit-identical work.
    """
    import numpy as np

    num_users = 10_000 if quick else 100_000
    ticks = 2 if quick else 3
    height = 9
    profile = PrivacyProfile(k=20)
    rng = ensure_rng(11)
    xs = rng.uniform(0.001, 0.999, size=num_users)
    ys = rng.uniform(0.001, 0.999, size=num_users)
    # Mostly local jitter (confined moves) with a long-jump tail, the
    # shape of a per-tick trace.
    scripts = []
    for _ in range(ticks):
        jump = rng.random(size=num_users) < 0.05
        xs = np.where(
            jump,
            rng.uniform(0.001, 0.999, size=num_users),
            np.clip(xs + rng.uniform(-0.01, 0.01, size=num_users), 0.001, 0.999),
        )
        ys = np.where(
            jump,
            rng.uniform(0.001, 0.999, size=num_users),
            np.clip(ys + rng.uniform(-0.01, 0.01, size=num_users), 0.001, 0.999),
        )
        scripts.append(
            [(uid, Point(float(xs[uid]), float(ys[uid]))) for uid in range(num_users)]
        )

    start_xs = rng.uniform(0.001, 0.999, size=num_users)
    start_ys = rng.uniform(0.001, 0.999, size=num_users)

    def build(vectorized: bool) -> BasicAnonymizer:
        anonymizer = BasicAnonymizer(BOUNDS, height=height, vectorized=vectorized)
        for uid in range(num_users):
            anonymizer.register(
                uid, Point(float(start_xs[uid]), float(start_ys[uid])), profile
            )
        return anonymizer

    scalar = build(vectorized=False)
    vectorized = build(vectorized=True)
    scalar_s = 0.0
    vectorized_s = 0.0
    for tick, script in enumerate(scripts):
        elapsed, scalar_costs = _timed(scalar.update_batch, script)
        scalar_s += elapsed
        elapsed, vectorized_costs = _timed(vectorized.update_batch, script)
        vectorized_s += elapsed
        if tick == 0:
            assert scalar_costs == vectorized_costs, "backends diverged"
    vectorized.check_invariants()
    moves = ticks * num_users
    soa_bytes = vectorized._soa.nbytes() + vectorized._table.nbytes()
    return {
        "num_users": num_users,
        "height": height,
        "ticks": ticks,
        "moves_timed": moves,
        "scalar_updates_per_second": moves / scalar_s,
        "vectorized_updates_per_second": moves / vectorized_s,
        "soa_mbytes": soa_bytes / 1e6,
        "speedup": scalar_s / vectorized_s,
    }


# ----------------------------------------------------------------------
# 6. Batch vs sequential on a duplicate-heavy stream
# ----------------------------------------------------------------------
def bench_batch(quick: bool) -> dict:
    num_targets = 1_000 if quick else 5_000
    num_requests = 100 if quick else 400
    num_distinct = 8 if quick else 16
    rng = ensure_rng(3)
    index = RTreeIndex()
    entries = {}
    for oid in range(num_targets):
        x, y = float(rng.random()) * 0.95, float(rng.random()) * 0.95
        entries[oid] = Rect(x, y, x + 0.01, y + 0.01)
    index.bulk_load(entries)
    distinct = []
    for _ in range(num_distinct):
        x, y = float(rng.random()) * 0.9, float(rng.random()) * 0.9
        distinct.append(Rect(x, y, x + 0.05, y + 0.05))
    areas = [distinct[int(rng.integers(num_distinct))] for _ in range(num_requests)]
    requests = [BatchRequest("nn_private", a) for a in areas]

    engine = BatchQueryEngine(private_index=index)
    batch_s, batch_out = _timed(engine.run, requests)
    seq_s, seq_out = _timed(
        lambda: [private_nn_over_private(index, a) for a in areas]
    )
    assert [c.items for c in batch_out] == [c.items for c in seq_out]
    return {
        "num_targets": num_targets,
        "num_requests": num_requests,
        "num_distinct_areas": num_distinct,
        "batch_seconds": batch_s,
        "sequential_seconds": seq_s,
        "speedup": seq_s / batch_s,
        "dedup_rate": engine.dedup_rate,
    }


# ----------------------------------------------------------------------
# 7. Process-pool scaling: parallel shard workers vs one worker
# ----------------------------------------------------------------------
def bench_shard_parallel(quick: bool) -> dict:
    """Throughput scaling of the multi-process shard runtime.

    Same workload shape as ``shard_scaling`` — block-confined movers
    plus cloak bursts over a hot set — but run through
    ``ParallelShardedAnonymizer`` (one OS process per shard, batched
    frames over the wire).  Cloak scaling comes from cache capacity and
    invalidation locality: every worker owns a full-size cloak cache,
    and the mover block's epoch churn stays inside one worker while the
    hot set (drawn from *non*-movers) revalidates everywhere else.
    Update scaling is a no-regression check: batched per-shard dispatch
    must keep an 8-worker tick at least as fast as a 1-worker tick.

    Every fleet stays open for the whole run and each scripted chunk is
    timed on every fleet back-to-back; the gated ratios are medians of
    *per-chunk paired quotients*, so host-load drift during the run
    cancels out instead of landing on one arm.
    """
    import statistics

    from repro.sharding import make_sharded

    num_users = 6_000 if quick else 16_000
    height = 8
    cache_size = 1_024
    shard_counts = (1, 8) if quick else (1, 2, 4, 8)
    update_chunks = 10 if quick else 20
    moves_per_chunk = 400 if quick else 500
    cloak_chunks = 8 if quick else 12
    cloaks_per_chunk = 800 if quick else 1_200
    churn_per_chunk = 50
    hot_size = 2_600 if quick else 4_000
    profile = PrivacyProfile(k=150 if quick else 300)

    rng = ensure_rng(5)
    homes = [
        Point(float(rng.random()), float(rng.random())) for _ in range(num_users)
    ]
    # Movers stay inside one level-2 block so every move is confined to
    # its owning worker; the hot cloak set avoids movers entirely, so
    # its cache entries only churn through LRU capacity pressure.
    movers = [uid for uid, p in enumerate(homes) if p.x < 0.25 and p.y < 0.25]
    mover_set = set(movers)
    non_movers = [uid for uid in range(num_users) if uid not in mover_set]
    hot = [
        non_movers[int(rng.integers(len(non_movers)))] for _ in range(hot_size)
    ]
    total_moves = (update_chunks + cloak_chunks) * max(
        moves_per_chunk, churn_per_chunk
    )
    move_script = []
    for _ in range(total_moves):
        uid = movers[int(rng.integers(len(movers)))]
        home = homes[uid]
        move_script.append(
            (
                uid,
                Point(
                    min(0.249, max(0.001, home.x + float(rng.uniform(-0.002, 0.002)))),
                    min(0.249, max(0.001, home.y + float(rng.uniform(-0.002, 0.002)))),
                ),
            )
        )
    cloak_script = [
        hot[int(rng.integers(len(hot)))]
        for _ in range(cloak_chunks * cloaks_per_chunk)
    ]

    fleets: dict[int, object] = {}
    update_times: dict[int, list[float]] = {n: [] for n in shard_counts}
    cloak_times: dict[int, list[float]] = {n: [] for n in shard_counts}
    per_shard: dict[str, dict] = {}
    try:
        for num_shards in shard_counts:
            fleet = make_sharded(
                BOUNDS,
                height=height,
                num_shards=num_shards,
                kind="basic",
                cloak_cache_size=cache_size,
                parallel=True,
            )
            fleets[num_shards] = fleet
            for uid, point in enumerate(homes):
                fleet.register(uid, point, profile)
            # Registrations broadcast; drain them before any timed phase
            # so the first chunk doesn't pay for setup.
            fleet.flush()

        # Phase 1: pure update ticks, every fleet timed on each chunk.
        for chunk in range(update_chunks):
            batch = move_script[
                chunk * moves_per_chunk : (chunk + 1) * moves_per_chunk
            ]
            for num_shards in shard_counts:
                start = time.perf_counter()
                fleets[num_shards].update_batch(batch)
                update_times[num_shards].append(time.perf_counter() - start)

        # Phase 2: cloak bursts under background churn.  One full warm
        # pass first — the hot set fits each 8-worker cache but
        # overflows the single 1-worker cache, which is the contrast
        # being measured, not first-touch misses.
        for num_shards in shard_counts:
            fleets[num_shards].cloak_many(hot)
        churn_base = update_chunks * moves_per_chunk
        for chunk in range(cloak_chunks):
            churn = move_script[
                churn_base
                + chunk * churn_per_chunk : churn_base
                + (chunk + 1) * churn_per_chunk
            ]
            batch = cloak_script[
                chunk * cloaks_per_chunk : (chunk + 1) * cloaks_per_chunk
            ]
            for num_shards in shard_counts:
                fleets[num_shards].update_batch(churn)  # untimed churn
                start = time.perf_counter()
                fleets[num_shards].cloak_many(batch)
                cloak_times[num_shards].append(time.perf_counter() - start)

        for num_shards in shard_counts:
            fleet = fleets[num_shards]
            fleet.check_invariants()
            per_core = fleet.cache_stats_per_shard()

            def hit_rate(counters: dict[str, int]) -> float:
                lookups = counters["hits"] + counters["misses"]
                return counters["hits"] / lookups if lookups else 0.0

            total = {
                key: sum(c[key] for c in per_core.values())
                for key in ("hits", "misses")
            }
            per_shard[str(num_shards)] = {
                "workers": num_shards,
                "spine_level": fleet.router.spine_level,
                "update_ops_per_second": moves_per_chunk
                / statistics.median(update_times[num_shards]),
                "query_cloaks_per_second": cloaks_per_chunk
                / statistics.median(cloak_times[num_shards]),
                "cache_hit_rate": hit_rate(total),
                "cache_hit_rate_per_shard": {
                    name: hit_rate(counters)
                    for name, counters in sorted(per_core.items())
                },
            }
    finally:
        for fleet in fleets.values():
            fleet.close()

    def paired_ratio(times: dict[int, list[float]]) -> float:
        return statistics.median(
            t1 / t8 for t1, t8 in zip(times[1], times[8])
        )

    return {
        "num_users": num_users,
        "height": height,
        "kind": "basic",
        "cloak_cache_size": cache_size,
        "moves_timed": update_chunks * moves_per_chunk,
        "cloaks_timed": cloak_chunks * cloaks_per_chunk,
        "hot_set": hot_size,
        "shards": per_shard,
        "cloak_scaling_8x": paired_ratio(cloak_times),
        "update_scaling_8x": paired_ratio(update_times),
    }


# ----------------------------------------------------------------------
# 8. Safe-region continuous kNN vs naive per-tick re-query
# ----------------------------------------------------------------------
def bench_continuous_mobility(quick: bool) -> dict:
    """Server evaluations per tick for moving-kNN clients.

    One commuter trace is recorded once and replayed against two
    identical Casper + monitor deployments: the **safe-region** arm
    re-queries only when a client's cloak exits its validity region,
    the **naive** arm models clients that re-issue the query every tick
    (``mark_all_dirty`` before each flush).  The gated
    ``evaluation_suppression`` ratio is kNN evaluations naive / safe —
    a same-run, dimensionless quotient of deterministic counters, so it
    is immune to host speed.  The honest costs of the trade are
    reported next to it: the safe arm's candidate lists are larger (the
    search region is inflated by twice the validity margin) and its
    wall-clock win is smaller than the evaluation win (every tick still
    pays the re-cloak scan).  Refined exact answers of both arms are
    asserted identical at the end of the replay.
    """
    from repro.continuous import ContinuousQueryMonitor
    from repro.server.casper import Casper
    from repro.workloads import build_commuter_scenario, drive_trace

    num_users = 240 if quick else 600
    num_targets = 300 if quick else 800
    ticks = 12 if quick else 40
    num_queries = 60 if quick else 150
    k = 5
    height = 8
    # Moderate margin: the monitor's 1.5 default maximises suppression but
    # at this density inflates candidate lists to nearly the whole target
    # set; 0.25 keeps the bandwidth cost visible in the report honest.
    margin_factor = 0.25

    scenario = build_commuter_scenario(num_users, seed=21, k_range=(10, 50))
    initial = dict(sorted(scenario.positions().items()))
    tick_batches = [scenario.step() for _ in range(ticks)]
    rng = ensure_rng(6)
    targets = {
        f"t{i:04d}": Point(float(rng.random()), float(rng.random()))
        for i in range(num_targets)
    }

    def build(safe: bool):
        casper = Casper(BOUNDS, pyramid_height=height, anonymizer="adaptive")
        for uid, point in initial.items():
            casper.register_user(uid, point, scenario.profiles[uid])
        casper.add_public_targets(targets)
        monitor = ContinuousQueryMonitor(
            casper, validity_margin_factor=margin_factor
        )
        for uid in range(num_queries):
            monitor.register_knn(f"q{uid:04d}", uid, k=k, safe_region=safe)
        return monitor

    safe_monitor = build(safe=True)
    naive_monitor = build(safe=False)
    safe_s, safe_report = _timed(drive_trace, safe_monitor, tick_batches)
    naive_s, naive_report = _timed(
        drive_trace, naive_monitor, tick_batches, naive_per_tick=True
    )

    final_positions = {u.uid: u.point for u in tick_batches[-1]}
    for uid in range(num_queries):
        query_id = f"q{uid:04d}"
        safe_answer = safe_monitor.candidates_of(query_id).refine_k_nearest(
            final_positions[uid], k
        )
        naive_answer = naive_monitor.candidates_of(query_id).refine_k_nearest(
            final_positions[uid], k
        )
        assert safe_answer == naive_answer, (
            "safe-region refinement diverged from the per-tick oracle"
        )

    def mean_candidates(monitor) -> float:
        sizes = [
            len(monitor.candidates_of(f"q{uid:04d}"))
            for uid in range(num_queries)
        ]
        return sum(sizes) / len(sizes)

    return {
        "num_users": num_users,
        "num_targets": num_targets,
        "ticks": ticks,
        "queries": num_queries,
        "k": k,
        "validity_margin_factor": margin_factor,
        "naive_evaluations_per_tick": naive_report.knn_evaluations / ticks,
        "safe_evaluations_per_tick": safe_report.knn_evaluations / ticks,
        "evaluation_suppression": naive_report.knn_evaluations
        / max(1, safe_report.knn_evaluations),
        "requery_rate": safe_report.requery_rate,
        "suppressed_cloak_changes": safe_report.suppressed,
        "validity_exits": safe_report.validity_exits,
        "mean_validity_lifetime_ticks": safe_report.mean_validity_lifetime,
        "mean_candidates_safe": mean_candidates(safe_monitor),
        "mean_candidates_naive": mean_candidates(naive_monitor),
        "safe_seconds": safe_s,
        "naive_seconds": naive_s,
        "wall_clock_speedup": naive_s / safe_s,
    }


def _median_run(results: list[dict]) -> dict:
    """Pick the run with the median gated statistic.

    Keeps a single internally-consistent measurement (never mixes the
    numerator of one run with the denominator of another).  Benchmarks
    without a speedup ratio are selected by their latency instead.
    """
    key = next(
        k
        for k in (
            "speedup",
            "cloak_scaling_8x",
            "evaluation_suppression",
            "mean_latency_ms",
        )
        if k in results[0]
    )
    ordered = sorted(results, key=lambda r: r[key])
    return ordered[len(ordered) // 2]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke run)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="output JSON path (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="run each benchmark N times, report the median-speedup run "
        "(default: 3; use 1 for a fast uncontrolled reading)",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const="BENCH_telemetry.json",
        default=None,
        metavar="PATH",
        help="run instrumented (observability enabled) and write the "
        "telemetry snapshot here (default: BENCH_telemetry.json)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        default=None,
        help="run only the named benchmark section (repeatable); the "
        "final threshold check covers only the sections that ran",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    from contextlib import nullcontext

    from repro.observability import TelemetryExport, enabled

    session_scope = enabled() if args.telemetry else nullcontext(None)
    report = {
        "quick": args.quick,
        "instrumented": bool(args.telemetry),
        "repeats": args.repeats,
    }
    benches = (
        ("cloak", bench_cloak),
        ("knn_private", bench_knn),
        ("nn_latency", bench_nn_latency),
        ("batch", bench_batch),
        ("shard_scaling", bench_shard_scaling),
        ("shard_parallel", bench_shard_parallel),
        ("pyramid_scale", bench_pyramid_scale),
        ("continuous_mobility", bench_continuous_mobility),
    )
    if args.only:
        known = {name for name, _ in benches}
        unknown = sorted(set(args.only) - known)
        if unknown:
            parser.error(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}"
            )
        benches = tuple(
            (name, bench) for name, bench in benches if name in args.only
        )

    with session_scope as session:
        for name, bench in benches:
            print(f"benchmarking {name} ...", flush=True)
            report[name] = _median_run(
                [bench(args.quick) for _ in range(args.repeats)]
            )
        if session is not None:
            export = TelemetryExport.from_observability(session)
            Path(args.telemetry).write_text(export.to_json() + "\n")
            print(f"wrote telemetry snapshot {args.telemetry}")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    checks = (
        ("cloak", "speedup", 5.0),
        ("knn_private", "speedup", 2.0),
        ("shard_scaling", "cloak_scaling_8x", 1.0),
        ("shard_parallel", "cloak_scaling_8x", 3.0),
        ("pyramid_scale", "speedup", 10.0),
        ("continuous_mobility", "evaluation_suppression", 5.0),
    )
    ok = True
    summary = []
    for section, key, floor in checks:
        if section not in report:
            continue
        value = report[section][key]
        ok = ok and value >= floor
        summary.append(f"{section}.{key} {value:.2f}x (>= {floor:g})")
    print(", ".join(summary) + f" -> {'OK' if ok else 'BELOW TARGET'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
